//! Multi-app scenarios: app switching, the §3.5 immediate-release rule,
//! and per-app isolation of crashes and state.

use droidsim_device::{Device, DeviceError, HandlingMode};
use droidsim_kernel::SimDuration;
use droidsim_view::ViewOp;
use rch_workloads::GenericAppSpec;

fn two_apps(mode: HandlingMode) -> (Device, String, String) {
    let mut d = Device::new(mode);
    let mail = GenericAppSpec::sized("MailClient", "10M+", false);
    let maps = GenericAppSpec::sized("MapsViewer", "10M+", false);
    let mail_c = d
        .install_and_launch(
            Box::new(mail.build()),
            mail.base_memory_bytes,
            mail.complexity,
        )
        .unwrap();
    let maps_c = d
        .install_and_launch(
            Box::new(maps.build()),
            maps.base_memory_bytes,
            maps.complexity,
        )
        .unwrap();
    (d, mail_c, maps_c)
}

#[test]
fn second_launch_takes_the_foreground() {
    let (d, mail, maps) = two_apps(HandlingMode::rchdroid_default());
    assert_eq!(d.foreground_component(), Some(maps.clone()));
    assert!(d.process(&mail).is_ok());
    assert_eq!(d.atms().stack().len(), 2, "two tasks");
}

#[test]
fn switch_to_app_round_trips() {
    let (mut d, mail, maps) = two_apps(HandlingMode::rchdroid_default());
    d.switch_to_app(&mail).unwrap();
    assert_eq!(d.foreground_component(), Some(mail.clone()));
    d.switch_to_app(&maps).unwrap();
    assert_eq!(d.foreground_component(), Some(maps));
    assert_eq!(
        d.switch_to_app("com.nope/.Main"),
        Err(DeviceError::UnknownApp("com.nope/.Main".to_owned()))
    );
}

#[test]
fn app_switch_releases_the_shadow_immediately() {
    let (mut d, mail, maps) = two_apps(HandlingMode::rchdroid_default());
    // maps is in the foreground; rotate to create its shadow coupling.
    d.rotate().unwrap();
    assert_eq!(
        d.process(&maps).unwrap().thread().alive_instances().len(),
        2
    );

    // §3.5: switching away releases the shadow at once — no waiting for
    // the threshold GC.
    d.switch_to_app(&mail).unwrap();
    assert_eq!(
        d.process(&maps).unwrap().thread().alive_instances().len(),
        1
    );
    assert_eq!(d.process(&maps).unwrap().thread().current_shadow(), None);
    // (Mail may now hold a shadow of its own: it resumed with a stale
    // configuration and RCHDroid handled that via the shadow/sunny path.)
    for record in d.atms().shadow_records() {
        assert_eq!(d.atms().record(record).unwrap().component(), mail);
    }
}

#[test]
fn at_most_one_shadow_across_the_whole_system() {
    let (mut d, mail, maps) = two_apps(HandlingMode::rchdroid_default());
    // Rotate maps (foreground), switch to mail, rotate mail.
    d.rotate().unwrap();
    d.switch_to_app(&mail).unwrap();
    d.rotate().unwrap();
    // The paper: "we maintain at most one shadow-state activity instance
    // for the whole Android system at any time."
    assert_eq!(d.atms().shadow_records().len(), 1);
    assert_eq!(
        d.process(&mail).unwrap().thread().alive_instances().len(),
        2
    );
    assert_eq!(
        d.process(&maps).unwrap().thread().alive_instances().len(),
        1
    );
}

#[test]
fn background_app_state_survives_the_switch() {
    let (mut d, mail, maps) = two_apps(HandlingMode::rchdroid_default());
    d.switch_to_app(&mail).unwrap();
    d.with_foreground_activity_mut(|a| {
        let root = a.tree.find_by_id_name("root").unwrap();
        a.tree.apply(root, ViewOp::ScrollTo(321)).unwrap();
    })
    .unwrap();
    d.switch_to_app(&maps).unwrap();
    d.switch_to_app(&mail).unwrap();
    let scroll = d
        .with_foreground_activity_mut(|a| {
            let root = a.tree.find_by_id_name("root").unwrap();
            a.tree.view(root).unwrap().attrs.scroll_y
        })
        .unwrap();
    assert_eq!(scroll, 321, "backgrounded instances keep their live state");
}

#[test]
fn a_crash_in_one_app_does_not_touch_the_other() {
    let mut d = Device::new(HandlingMode::Android10);
    let safe = GenericAppSpec::sized("SafeApp", "1M+", false);
    let mut risky = GenericAppSpec::sized("RiskyApp", "1M+", false);
    risky.uses_async_task = true;
    let safe_c = d
        .install_and_launch(
            Box::new(safe.build()),
            safe.base_memory_bytes,
            safe.complexity,
        )
        .unwrap();
    let risky_c = d
        .install_and_launch(
            Box::new(risky.build()),
            risky.base_memory_bytes,
            risky.complexity,
        )
        .unwrap();

    // risky starts its task, rotates (restart), task returns → crash.
    d.start_async_on_foreground(risky.async_task()).unwrap();
    d.rotate().unwrap();
    d.advance(SimDuration::from_secs(8));
    assert!(d.is_crashed(&risky_c));
    assert!(!d.is_crashed(&safe_c));
    assert!(d.memory_snapshot(&safe_c).unwrap().total_bytes() > 0);

    // The crashed task is gone; safe can come to the foreground.
    d.switch_to_app(&safe_c).unwrap();
    assert_eq!(d.foreground_component(), Some(safe_c));
}

#[test]
fn back_press_releases_shadow_and_yields_the_foreground() {
    let (mut d, mail, maps) = two_apps(HandlingMode::rchdroid_default());
    d.rotate().unwrap(); // maps holds a shadow
    assert_eq!(
        d.process(&maps).unwrap().thread().alive_instances().len(),
        2
    );

    d.press_back().unwrap();
    // §3.5 "terminated": both maps instances are gone…
    assert!(d
        .process(&maps)
        .unwrap()
        .thread()
        .alive_instances()
        .is_empty());
    assert!(d.atms().shadow_records().is_empty());
    // …and mail's task is now on top.
    assert_eq!(d.foreground_component(), Some(mail));
}

#[test]
fn back_press_on_the_last_app_empties_the_stack() {
    let mut d = Device::new(HandlingMode::rchdroid_default());
    let spec = GenericAppSpec::sized("OnlyApp", "1K+", false);
    d.install_and_launch(
        Box::new(spec.build()),
        spec.base_memory_bytes,
        spec.complexity,
    )
    .unwrap();
    d.press_back().unwrap();
    assert_eq!(d.foreground_component(), None);
    assert_eq!(d.press_back(), Err(DeviceError::NoForegroundApp));
}

#[test]
fn rotation_after_switch_targets_the_new_foreground() {
    let (mut d, mail, maps) = two_apps(HandlingMode::rchdroid_default());
    d.switch_to_app(&mail).unwrap();
    let report = d.rotate().unwrap();
    assert_eq!(report.component, mail);
    assert_eq!(d.process(&maps).unwrap().latencies_ms().len(), 0);
    assert_eq!(d.process(&mail).unwrap().latencies_ms().len(), 1);
}
