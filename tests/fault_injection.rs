//! Fault injection: buggy app callbacks beyond the paper's async-return
//! scenario, and how each system contains (or doesn't contain) them.

use droidsim_app::{AsyncResult, AsyncSpec, SimpleApp};
use droidsim_device::{Device, DeviceEvent, HandlingMode};
use droidsim_kernel::{SimDuration, SimTime};
use droidsim_view::ViewOp;

fn device(mode: HandlingMode) -> (Device, String) {
    let mut d = Device::new(mode);
    let c = d
        .install_and_launch(Box::new(SimpleApp::with_views(2)), 40 << 20, 1.0)
        .unwrap();
    (d, c)
}

/// A callback that applies a type-inappropriate operation (a logic bug in
/// the app, not a lifecycle bug).
fn buggy_task() -> AsyncSpec {
    AsyncSpec {
        duration: SimDuration::from_secs(1),
        result: AsyncResult {
            // SetProgress on an ImageView: InapplicableOp → uncaught
            // exception on the UI thread.
            ops: vec![("image_0".to_owned(), ViewOp::SetProgress(50))],
            shows_dialog: false,
        },
    }
}

/// A callback that shows a dialog (window-scoped resource).
fn dialog_task() -> AsyncSpec {
    AsyncSpec {
        duration: SimDuration::from_secs(5),
        result: AsyncResult {
            ops: vec![],
            shows_dialog: true,
        },
    }
}

#[test]
fn app_logic_bugs_crash_under_every_system() {
    // RCHDroid is transparent: it fixes lifecycle-induced crashes, not
    // app logic bugs. An uncaught exception still kills the process.
    for mode in [HandlingMode::Android10, HandlingMode::rchdroid_default()] {
        let (mut d, c) = device(mode);
        d.start_async_on_foreground(buggy_task()).unwrap();
        d.advance(SimDuration::from_secs(2));
        assert!(d.is_crashed(&c), "{mode:?}");
    }
}

#[test]
fn dialog_after_restart_leaks_window_under_stock() {
    let (mut d, c) = device(HandlingMode::Android10);
    d.start_async_on_foreground(dialog_task()).unwrap();
    d.rotate().unwrap();
    d.advance(SimDuration::from_secs(6));
    assert!(d.is_crashed(&c));
    let has_leak = d.events().iter().any(
        |e| matches!(e, DeviceEvent::Crash { exception, .. } if exception.contains("WindowLeaked")),
    );
    assert!(has_leak, "events: {:?}", d.events());
}

#[test]
fn dialog_after_change_is_safe_under_rchdroid() {
    // The shadow instance's window is still alive (invisible), so the
    // dialog attaches without leaking.
    let (mut d, c) = device(HandlingMode::rchdroid_default());
    d.start_async_on_foreground(dialog_task()).unwrap();
    d.rotate().unwrap();
    d.advance(SimDuration::from_secs(6));
    assert!(!d.is_crashed(&c));
}

#[test]
fn crash_cleans_up_every_instance_and_record() {
    let (mut d, c) = device(HandlingMode::rchdroid_default());
    d.rotate().unwrap(); // two instances alive
    d.start_async_on_foreground(buggy_task()).unwrap();
    d.advance(SimDuration::from_secs(2));
    assert!(d.is_crashed(&c));
    assert!(d.process(&c).unwrap().thread().alive_instances().is_empty());
    assert!(d.atms().shadow_records().is_empty());
    assert_eq!(d.memory_snapshot(&c).unwrap().total_bytes(), 0);
}

#[test]
fn crash_time_matches_the_task_deadline() {
    let (mut d, c) = device(HandlingMode::Android10);
    d.start_async_on_foreground(SimpleApp::with_views(2).button_task())
        .unwrap();
    let change_at = d.now();
    d.rotate().unwrap();
    d.advance(SimDuration::from_secs(10));
    let crash_at = d
        .events()
        .iter()
        .find_map(|e| match e {
            DeviceEvent::Crash { at, .. } => Some(*at),
            _ => None,
        })
        .expect("crashed");
    // The 5 s task was started just before the change.
    let expected = change_at + SimDuration::from_secs(5);
    assert!(crash_at >= expected && crash_at < expected + SimDuration::from_secs(1));
    assert!(crash_at > SimTime::ZERO);
    let _ = c;
}
