//! Property test for the data-loss lint family: over randomly
//! generated persistence descriptors — any class, any owner/persistence
//! combination the class admits, any field count, with and without
//! `configChanges` self-handling — the static [`predict`] verdict must
//! equal the dynamic class-specific oracle schedule **field by field**
//! under all three runtimes, and the `RCH007`–`RCH012` diagnostics must
//! fire **iff** some runtime loses (or hides, or crashes on) a field.
//! This is the corpus differential gate extended to the whole
//! descriptor space the generators can reach.

use droidsim_analysis::{analyze_app, predict, AnalysisMode, AppShape};
use droidsim_device::HandlingMode;
use proptest::prelude::*;
use rch_experiments::detector;
use rch_workloads::{
    DataLossClass, DataLossField, DataLossScenario, FieldPersistence, GenericAppSpec,
};

/// Alphabetical like the corpus generator's pool, so sorted oracle
/// lists line up with descriptor field order.
const KEYS: [&str; 3] = ["alpha_field", "beta_field", "gamma_field"];

fn arb_class() -> impl Strategy<Value = DataLossClass> {
    prop_oneof![
        Just(DataLossClass::StopRestart),
        Just(DataLossClass::SubStateOwner),
        Just(DataLossClass::AsyncRace),
        Just(DataLossClass::ProcessDeath),
        Just(DataLossClass::InputInFlight),
    ]
}

/// A spec carrying a random scenario of 1–3 fields drawn from the
/// class's own owner × persistence space, plus a free self-handling
/// flag. `saves_instance_state` follows the bundle fields, exactly as
/// the corpus generator sets it.
fn arb_dataloss_spec() -> impl Strategy<Value = GenericAppSpec> {
    (
        arb_class(),
        proptest::collection::vec((0usize..8, 0usize..8), 1..4),
        any::<bool>(),
    )
        .prop_map(|(class, picks, handles)| {
            let fields: Vec<DataLossField> = picks
                .into_iter()
                .enumerate()
                .map(|(i, (o, p))| {
                    let owner = class.owners()[o % class.owners().len()];
                    let persistence = class.persistences()[p % class.persistences().len()];
                    DataLossField::new(KEYS[i], owner, persistence)
                })
                .collect();
            let mut spec = GenericAppSpec::sized("PropDlApp", "1K+", false);
            spec.handles_changes = handles && class.is_rotation_based();
            spec.saves_instance_state = fields
                .iter()
                .any(|f| f.persistence == FieldPersistence::BundleSaved);
            spec.dataloss = Some(DataLossScenario::new(class, fields));
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn static_dataloss_verdict_equals_dynamic_oracle(spec in arb_dataloss_spec()) {
        for (mode, dynamic) in [
            (AnalysisMode::Stock, HandlingMode::Android10),
            (AnalysisMode::RchDroid, HandlingMode::rchdroid_default()),
            (AnalysisMode::RuntimeDroid, HandlingMode::RuntimeDroid),
        ] {
            let verdict = predict(&spec, mode);
            let observed = detector::check_dataloss(&spec, dynamic);
            prop_assert_eq!(
                verdict.crashed, observed.crashed,
                "crash verdict diverged under {} for {:?}", mode.label(), spec
            );
            prop_assert_eq!(
                &verdict.lost_after_one, &observed.lost_after_one,
                "lost-after-one diverged under {} for {:?}", mode.label(), spec
            );
            prop_assert_eq!(
                &verdict.lost_after_two, &observed.lost_after_two,
                "lost-after-two diverged under {} for {:?}", mode.label(), spec
            );
            prop_assert_eq!(
                &verdict.latent_after_two, &observed.latent_after_two,
                "latent-after-two diverged under {} for {:?}", mode.label(), spec
            );
        }
    }

    #[test]
    fn dataloss_diagnostics_fire_iff_some_runtime_loses(spec in arb_dataloss_spec()) {
        let shape = AppShape::from_spec(&spec);
        let diagnostics = analyze_app(&shape, Some(&spec));
        let scenario = spec.dataloss.as_ref().unwrap();
        let hazardous = scenario.hazardous(spec.handles_changes);
        prop_assert_eq!(
            !diagnostics.is_empty(),
            hazardous,
            "diagnostics {:?} vs hazard predicate for {:?}",
            diagnostics,
            spec
        );
        // When hazardous, the summary lint and at least one field lint
        // must both be present; when clean, the verdicts agree.
        if hazardous {
            prop_assert!(diagnostics.iter().any(|d| d.code.code() == "RCH012"));
            prop_assert!(diagnostics
                .iter()
                .any(|d| ("RCH007".."RCH012").contains(&d.code.code())));
        } else {
            for mode in AnalysisMode::ALL {
                prop_assert!(!predict(&spec, mode).has_issue());
            }
        }
    }
}
