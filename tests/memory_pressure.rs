//! The Shadow state's system-kill exemption (§3.2) under memory pressure.

use droidsim_device::{Device, HandlingMode};
use droidsim_kernel::SimDuration;
use rch_workloads::GenericAppSpec;

fn two_apps(mode: HandlingMode) -> (Device, String, String) {
    let mut d = Device::new(mode);
    let a = GenericAppSpec::sized("PressureA", "1M+", false);
    let b = GenericAppSpec::sized("PressureB", "1M+", false);
    let ac = d
        .install_and_launch(Box::new(a.build()), a.base_memory_bytes, a.complexity)
        .unwrap();
    let bc = d
        .install_and_launch(Box::new(b.build()), b.base_memory_bytes, b.complexity)
        .unwrap();
    (d, ac, bc)
}

#[test]
fn pressure_reclaims_stopped_background_activities() {
    let (mut d, a, b) = two_apps(HandlingMode::rchdroid_default());
    // `a` was backgrounded by `b`'s launch → its activity is Stopped.
    let reclaimed = d.trigger_memory_pressure();
    assert_eq!(reclaimed, 1);
    assert!(d.process(&a).unwrap().thread().alive_instances().is_empty());
    // The foreground app is untouched.
    assert_eq!(d.process(&b).unwrap().thread().alive_instances().len(), 1);
}

#[test]
fn shadow_instances_are_exempt() {
    let (mut d, _a, b) = two_apps(HandlingMode::rchdroid_default());
    // Create the shadow coupling on the foreground app.
    d.rotate().unwrap();
    assert_eq!(d.process(&b).unwrap().thread().alive_instances().len(), 2);

    let before_shadow = d.process(&b).unwrap().thread().current_shadow();
    assert!(before_shadow.is_some());
    d.trigger_memory_pressure();
    // §3.2: the shadow survives system reclamation; only the GC policy
    // may release it.
    assert_eq!(
        d.process(&b).unwrap().thread().current_shadow(),
        before_shadow
    );
    assert_eq!(d.process(&b).unwrap().thread().alive_instances().len(), 2);
}

#[test]
fn gc_still_reclaims_the_exempted_shadow_later() {
    let (mut d, _a, b) = two_apps(HandlingMode::rchdroid_default());
    d.rotate().unwrap();
    d.trigger_memory_pressure();
    assert_eq!(d.process(&b).unwrap().thread().alive_instances().len(), 2);
    // The threshold GC is the one legitimate path.
    d.advance(SimDuration::from_secs(120));
    assert_eq!(d.process(&b).unwrap().thread().alive_instances().len(), 1);
}

#[test]
fn pressure_is_idempotent() {
    let (mut d, ..) = two_apps(HandlingMode::rchdroid_default());
    assert_eq!(d.trigger_memory_pressure(), 1);
    assert_eq!(d.trigger_memory_pressure(), 0, "nothing left to reclaim");
}

#[test]
fn reclaimed_activity_restores_from_the_retained_bundle() {
    // Android keeps onSaveInstanceState's bundle in the system server:
    // the user can return to a reclaimed background activity and find
    // their (view-held) state back.
    use droidsim_view::ViewOp;
    let (mut d, a, b) = two_apps(HandlingMode::rchdroid_default());
    d.switch_to_app(&a).unwrap();
    d.with_foreground_activity_mut(|act| {
        let root = act.tree.find_by_id_name("root").unwrap();
        act.tree.apply(root, ViewOp::ScrollTo(987)).unwrap();
    })
    .unwrap();
    d.switch_to_app(&b).unwrap();
    assert_eq!(d.trigger_memory_pressure(), 1, "a's instance reclaimed");
    assert!(d.process(&a).unwrap().thread().alive_instances().is_empty());

    // Coming back relaunches from the retained bundle.
    d.switch_to_app(&a).unwrap();
    let scroll = d
        .with_foreground_activity_mut(|act| {
            let root = act.tree.find_by_id_name("root").unwrap();
            act.tree.view(root).unwrap().attrs.scroll_y
        })
        .unwrap();
    assert_eq!(scroll, 987);
}

#[test]
fn async_task_to_a_reclaimed_background_activity_crashes_like_stock() {
    // The exemption matters: a background activity WITHOUT shadow status
    // that is reclaimed while a task is in flight still produces the
    // classic crash — RCHDroid only protects the runtime-change path.
    let (mut d, a, _b) = two_apps(HandlingMode::rchdroid_default());
    d.switch_to_app(&a).unwrap();
    let spec = GenericAppSpec::sized("PressureA", "1M+", false);
    d.start_async_on_foreground(spec.async_task()).unwrap();
    // Background it again, then reclaim it.
    d.switch_to_app("com.pressureb/.Main").unwrap();
    d.trigger_memory_pressure();
    d.advance(SimDuration::from_secs(8));
    assert!(
        d.is_crashed(&a),
        "the stopped instance was reclaimed under the task"
    );
}
