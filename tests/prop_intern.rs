//! Property tests for the essence-key interning layer: symbol
//! round-trips through the global table, and the `ViewTree`'s cached
//! `id_name_index` stays equal to a from-scratch rebuild under
//! arbitrary structural operation sequences — including duplicate id
//! names, where the contract is lowest-id-wins.

use droidsim_kernel::Symbol;
use droidsim_view::{ViewKind, ViewOp, ViewTree};
use proptest::prelude::*;

/// A deliberately small name pool so scripts collide on id names and
/// exercise the duplicate-name fallback paths of the cached index.
const NAME_POOL: [&str; 6] = ["pool_a", "pool_b", "pool_c", "pool_d", "pool_e", "pool_f"];

#[derive(Debug, Clone)]
enum Step {
    Add {
        parent_choice: usize,
        name_choice: Option<usize>,
    },
    Remove {
        choice: usize,
    },
    Mutate {
        choice: usize,
    },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<usize>(), any::<usize>(), any::<bool>()).prop_map(
            |(parent_choice, name, anonymous)| Step::Add {
                parent_choice,
                name_choice: (!anonymous).then_some(name),
            }
        ),
        (any::<usize>(), any::<usize>(), any::<bool>()).prop_map(
            |(parent_choice, name, anonymous)| Step::Add {
                parent_choice,
                name_choice: (!anonymous).then_some(name),
            }
        ),
        any::<usize>().prop_map(|choice| Step::Remove { choice }),
        any::<usize>().prop_map(|choice| Step::Mutate { choice }),
    ]
}

fn run_script(steps: &[Step]) -> ViewTree {
    let mut tree = ViewTree::new();
    for step in steps {
        let ids = tree.iter_ids();
        match step {
            Step::Add {
                parent_choice,
                name_choice,
            } => {
                let parent = ids[parent_choice % ids.len()];
                let name = name_choice.map(|n| NAME_POOL[n % NAME_POOL.len()]);
                let _ = tree.add_view(parent, ViewKind::TextView, name);
            }
            Step::Remove { choice } => {
                let _ = tree.remove_view(ids[choice % ids.len()]);
            }
            Step::Mutate { choice } => {
                let _ = tree.apply(ids[choice % ids.len()], ViewOp::SetText("x".into()));
            }
        }
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interning_round_trips(name in "[a-zA-Z0-9_/]{1,24}") {
        let sym = Symbol::intern(&name);
        // Same string, same symbol — and the string survives verbatim.
        prop_assert_eq!(Symbol::intern(&name), sym);
        prop_assert_eq!(sym.as_str(), name.as_str());
        prop_assert_eq!(Symbol::lookup(&name), Some(sym));
        // The precomputed hierarchy key matches the formatted form the
        // bundle layer used before interning.
        let formatted = format!("view:{name}");
        prop_assert_eq!(sym.hierarchy_key(), formatted.as_str());
    }

    #[test]
    fn cached_index_matches_rebuild(steps in proptest::collection::vec(arb_step(), 0..80)) {
        let tree = run_script(&steps);
        // The incrementally maintained index equals a from-scratch
        // arena scan after any operation sequence.
        prop_assert_eq!(tree.id_name_index(), &tree.rebuild_id_name_index());
        // Every entry points at a live view that actually bears the
        // name, and it is the *lowest-id* bearer (duplicate contract).
        for (&name, &id) in tree.id_name_index() {
            let node = tree.view(id).expect("index points at a live view");
            prop_assert_eq!(node.id_name, Some(name));
            let lowest = tree
                .iter_ids()
                .into_iter()
                .filter(|&v| tree.view(v).unwrap().id_name == Some(name))
                .min()
                .unwrap();
            prop_assert_eq!(id, lowest);
        }
        // The shadowed-duplicate side index (which makes removal
        // O(depth) instead of a full arena rescan) accounts for exactly
        // the live named bearers that lost the lowest-id race.
        let named_bearers = tree
            .iter_ids()
            .into_iter()
            .filter(|&v| tree.view(v).unwrap().id_name.is_some())
            .count();
        prop_assert_eq!(
            tree.shadowed_duplicate_count(),
            named_bearers - tree.id_name_index().len()
        );
        // And the public lookup agrees with the index for every pool
        // name, present or not.
        for name in NAME_POOL {
            let via_index = Symbol::lookup(name)
                .and_then(|s| tree.id_name_index().get(&s).copied());
            prop_assert_eq!(tree.find_by_id_name(name), via_index);
        }
    }
}
