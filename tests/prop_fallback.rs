//! Property tests on the degradation ladder's rung-2 fallback: the
//! restart path must be indistinguishable from a stock fresh launch, and
//! the ATMS stack must come out of the rollback with its invariants
//! intact.

use droidsim_app::{ActivityInstanceId, ActivityThread, AppModel, SimpleApp};
use droidsim_atms::{ActivityRecordId, Atms, Intent, RecordState};
use droidsim_config::Configuration;
use droidsim_faults::{FaultPlan, FaultSite};
use droidsim_kernel::SimTime;
use droidsim_view::ViewOp;
use proptest::prelude::*;
use rchdroid::{ChangeKind, RchDroid};

struct Rig {
    model: SimpleApp,
    atms: Atms,
    thread: ActivityThread,
    rch: RchDroid,
    instance: ActivityInstanceId,
}

fn boot(views: usize) -> Rig {
    let model = SimpleApp::with_views(views);
    let mut atms = Atms::new(Configuration::phone_portrait());
    let mut thread = ActivityThread::new();
    let start = atms.start_activity(&Intent::new(model.component_name()));
    let instance =
        thread.perform_launch_activity(&model, start.record, Configuration::phone_portrait(), None);
    thread.resume_sequence(instance, false).unwrap();
    Rig {
        model,
        atms,
        thread,
        rch: RchDroid::new(),
        instance,
    }
}

fn rotate(rig: &mut Rig, now: SimTime) -> rchdroid::ChangeOutcome {
    let next = rig.atms.global_config().rotated();
    rig.atms.update_global_config(next);
    rig.rch
        .handle_configuration_change(&mut rig.thread, &mut rig.atms, &rig.model, now)
        .unwrap()
}

/// The site to force for a given protocol phase: allocation failure only
/// probes on the create path (a flip allocates nothing), so steady-state
/// changes get a corrupted parcel instead.
fn site_for(prior_changes: usize, pick_allocation: bool) -> FaultSite {
    if pick_allocation && prior_changes == 0 {
        FaultSite::AllocationFailure
    } else {
        FaultSite::BundleCorruption
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After a rung-2 fallback, the surviving tree is *identical* to a
    /// fresh stock launch initialised from the same saved bundle — the
    /// fallback is the stock restart path, not an approximation of it.
    #[test]
    fn fallback_tree_matches_a_fresh_launch_from_the_saved_bundle(
        views in 1usize..8,
        scroll in 0i32..2000,
        prior_changes in 0usize..3,
        pick_allocation in any::<bool>(),
    ) {
        let mut rig = boot(views);
        for i in 0..prior_changes {
            rotate(&mut rig, SimTime::from_secs(i as u64 + 1));
        }
        // Genuine user state on the current foreground instance.
        let foreground = rig.thread.current_sunny().unwrap_or(rig.instance);
        {
            let a = rig.thread.instance_mut(foreground).unwrap();
            let root = a.tree.find_by_id_name("root").unwrap();
            a.tree.apply(root, ViewOp::ScrollTo(scroll)).unwrap();
        }
        let saved = rig
            .thread
            .instance(foreground)
            .unwrap()
            .save_instance_state(&rig.model);

        let site = site_for(prior_changes, pick_allocation);
        rig.rch
            .arm_faults(FaultPlan::seeded(42).on_nth_probe(site, 1));
        let outcome = rotate(&mut rig, SimTime::from_secs(60));
        prop_assert_eq!(outcome.kind, ChangeKind::FallbackRestart);

        // Reference: a stock launch under the post-change configuration,
        // from the bundle the fallback had available — none when the
        // parcel was corrupted.
        let bundle = (site != FaultSite::BundleCorruption).then_some(&saved);
        let mut reference = ActivityThread::new();
        let ref_instance = reference.perform_launch_activity(
            &rig.model,
            ActivityRecordId::new(9_999),
            rig.atms.global_config().clone(),
            bundle,
        );
        reference.resume_sequence(ref_instance, false).unwrap();

        let got = &rig.thread.instance(outcome.sunny_instance).unwrap().tree;
        let want = &reference.instance(ref_instance).unwrap().tree;
        prop_assert_eq!(got, want);
    }

    /// After any fallback — including the allocation-failure rollback of
    /// the coin-flip record swap — the ATMS stack holds its invariants:
    /// exactly one alive record, resumed, in the foreground, with no
    /// shadow record leaked. And the protocol restarts cleanly.
    #[test]
    fn atms_stack_invariants_hold_after_rollback(
        views in 1usize..6,
        prior_changes in 0usize..4,
        pick_allocation in any::<bool>(),
    ) {
        let mut rig = boot(views);
        for i in 0..prior_changes {
            rotate(&mut rig, SimTime::from_secs(i as u64 + 1));
        }
        let site = site_for(prior_changes, pick_allocation);
        rig.rch
            .arm_faults(FaultPlan::seeded(7).on_nth_probe(site, 1));
        let outcome = rotate(&mut rig, SimTime::from_secs(60));
        prop_assert_eq!(outcome.kind, ChangeKind::FallbackRestart);

        // Single top, no shadow-record leak, nothing dangling.
        prop_assert_eq!(rig.atms.alive_record_count(), 1);
        prop_assert!(rig.atms.shadow_records().is_empty());
        let token = rig
            .thread
            .instance(outcome.sunny_instance)
            .unwrap()
            .token();
        prop_assert_eq!(rig.atms.foreground_record(), Some(token));
        prop_assert_eq!(
            rig.atms.record(token).unwrap().state,
            RecordState::Resumed
        );
        prop_assert_eq!(rig.thread.alive_instances(), vec![outcome.sunny_instance]);

        // The ladder recovers: the next change is a clean init with one
        // shadow record, and the one after flips.
        let next = rotate(&mut rig, SimTime::from_secs(61));
        prop_assert_eq!(next.kind, ChangeKind::Init);
        prop_assert_eq!(rig.atms.shadow_records().len(), 1);
        let after = rotate(&mut rig, SimTime::from_secs(62));
        prop_assert_eq!(after.kind, ChangeKind::Flip);
    }
}
