//! Deep-tree stress: RCHDroid's behaviour must be independent of tree
//! *shape*. These tests run the full protocol on trees nested hundreds of
//! levels deep.

use droidsim_device::{Device, HandlingMode, HandlingPath};
use droidsim_view::{layout, ViewOp};
use rch_workloads::DeepApp;

fn deep_device(depth: usize) -> (Device, String) {
    let mut d = Device::new(HandlingMode::rchdroid_default());
    let c = d
        .install_and_launch(Box::new(DeepApp::new(depth)), 40 << 20, 1.0)
        .unwrap();
    (d, c)
}

#[test]
fn deeply_nested_tree_inflates_completely() {
    let (d, c) = deep_device(300);
    let p = d.process(&c).unwrap();
    let fg = p.foreground_activity().unwrap();
    // decor + 300 levels + leaf
    assert_eq!(fg.tree.view_count(), 302);
    assert!(fg.tree.find_by_id_name("leaf").is_some());
    assert!(fg.tree.find_by_id_name("level_299").is_some());
}

#[test]
fn state_survives_the_change_at_depth() {
    let (mut d, _) = deep_device(300);
    d.with_foreground_activity_mut(|a| {
        let leaf = a.tree.find_by_id_name("leaf").unwrap();
        a.tree
            .apply(leaf, ViewOp::SetText("bottom of the world".into()))
            .unwrap();
    })
    .unwrap();
    let first = d.rotate().unwrap();
    assert_eq!(first.path, HandlingPath::RchInit);
    let text = d
        .with_foreground_activity_mut(|a| {
            let leaf = a.tree.find_by_id_name("leaf").unwrap();
            a.tree.view(leaf).unwrap().attrs.text.clone()
        })
        .unwrap();
    assert_eq!(text.as_deref(), Some("bottom of the world"));
}

#[test]
fn flip_still_constant_cost_at_depth() {
    let (mut d, _) = deep_device(300);
    d.rotate().unwrap();
    let flip = d.rotate().unwrap();
    assert_eq!(flip.path, HandlingPath::RchFlip);
    // The flip is O(1): same 89.2 ms regardless of 302 views of depth 301.
    assert!((flip.latency.as_millis_f64() - 89.2).abs() < 0.5);
}

#[test]
fn layout_pass_handles_depth() {
    let (d, c) = deep_device(300);
    let p = d.process(&c).unwrap();
    let fg = p.foreground_activity().unwrap();
    let result = layout(&fg.tree, d.configuration().screen);
    assert_eq!(result.len(), 302, "every level positioned");
    // A single-child chain: every level keeps the full screen box.
    let leaf = fg.tree.find_by_id_name("leaf").unwrap();
    assert!(result.rect(leaf).is_some());
}

#[test]
fn hierarchy_bundle_scales_with_depth_not_blowups() {
    let (mut d, _) = deep_device(500);
    d.with_foreground_activity_mut(|a| {
        let leaf = a.tree.find_by_id_name("leaf").unwrap();
        a.tree.apply(leaf, ViewOp::SetText("x".into())).unwrap();
        let bundle = a.tree.save_hierarchy_state();
        // Only the leaf holds user state: the bundle is tiny despite the
        // 500-level structure.
        assert_eq!(bundle.len(), 1);
    })
    .unwrap();
}
