//! Property tests on RCHDroid's essence-based mapping and lazy migration.

use droidsim_kernel::{SimDuration, SimTime};
use droidsim_view::{ViewKind, ViewOp, ViewTree};
use proptest::prelude::*;
use rchdroid::{FlushPolicy, MigrationEngine};

/// Builds two trees with the same id names (as two inflations of one
/// layout would) containing `n` views of assorted migratable kinds.
fn coupled_trees(n: usize) -> (ViewTree, ViewTree, MigrationEngine) {
    let kinds = [
        ViewKind::EditText,
        ViewKind::ImageView,
        ViewKind::ListView,
        ViewKind::VideoView,
        ViewKind::ProgressBar,
        ViewKind::TextView,
    ];
    let build = |container: ViewKind| {
        let mut t = ViewTree::new();
        let root = t.add_view(t.root(), container, Some("root")).unwrap();
        for i in 0..n {
            let kind = kinds[i % kinds.len()].clone();
            t.add_view(root, kind, Some(&format!("v{i}"))).unwrap();
        }
        t
    };
    let mut shadow = build(ViewKind::LinearLayout);
    let mut sunny = build(ViewKind::GridLayout);
    let mut engine = MigrationEngine::new();
    engine.build_mapping(&mut shadow, &mut sunny);
    (shadow, sunny, engine)
}

/// An op applicable to the view kind at index `i`.
fn op_for(i: usize, payload: i32) -> ViewOp {
    match i % 6 {
        0 => ViewOp::SetText(format!("text-{payload}")),
        1 => ViewOp::SetDrawable(format!("img-{payload}.png"), payload.unsigned_abs() as u64),
        2 => ViewOp::SetSelection(payload),
        3 => ViewOp::SetVideoUri(format!("clip-{payload}.mp4")),
        4 => ViewOp::SetProgress(payload.rem_euclid(100)),
        _ => ViewOp::SetText(format!("label-{payload}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lazy_migration_reflects_every_invalidated_essence(
        n in 1usize..24,
        updates in proptest::collection::vec((any::<usize>(), any::<i32>()), 0..40),
    ) {
        let (mut shadow, mut sunny, mut engine) = coupled_trees(n);
        for (which, payload) in &updates {
            let i = which % n;
            let view = shadow.find_by_id_name(&format!("v{i}")).unwrap();
            shadow.apply(view, op_for(i, *payload)).unwrap();
        }
        engine.migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO).unwrap();

        // Every updated view's migratable essence matches on the peer.
        for i in 0..n {
            let s = shadow.view(shadow.find_by_id_name(&format!("v{i}")).unwrap()).unwrap();
            let u = sunny.view(sunny.find_by_id_name(&format!("v{i}")).unwrap()).unwrap();
            match i % 6 {
                0 | 5 => {
                    let (st, ut) = (s.attrs.text.clone(), u.attrs.text.clone());
                    prop_assert_eq!(st, ut);
                }
                1 => prop_assert_eq!(&s.attrs.drawable, &u.attrs.drawable),
                2 => prop_assert_eq!(s.attrs.selector_position, u.attrs.selector_position),
                3 => prop_assert_eq!(&s.attrs.video_uri, &u.attrs.video_uri),
                4 => prop_assert_eq!(s.attrs.progress, u.attrs.progress),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn migration_is_idempotent(
        n in 1usize..16,
        updates in proptest::collection::vec((any::<usize>(), any::<i32>()), 1..20),
    ) {
        let (mut shadow, mut sunny, mut engine) = coupled_trees(n);
        for (which, payload) in &updates {
            let i = which % n;
            let view = shadow.find_by_id_name(&format!("v{i}")).unwrap();
            shadow.apply(view, op_for(i, *payload)).unwrap();
        }
        engine.migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO).unwrap();
        let snapshot = sunny.clone();
        // A second pass with no new invalidations changes nothing.
        let report = engine.migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO).unwrap();
        prop_assert_eq!(report.examined, 0);
        prop_assert_eq!(format!("{:?}", sunny), format!("{:?}", snapshot));
    }

    #[test]
    fn mapping_is_a_bijection_on_shared_id_names(n in 0usize..32) {
        let (shadow, sunny, engine) = coupled_trees(n);
        // root + decor + n views all have ids.
        prop_assert_eq!(engine.mapped_views(), n + 2);
        for id in shadow.iter_ids() {
            let node = shadow.view(id).unwrap();
            let peer = node.sunny_peer.expect("all views have ids here");
            let back = sunny.view(peer).unwrap().sunny_peer.expect("reverse mapped");
            prop_assert_eq!(back, id);
        }
    }

    #[test]
    fn seed_copies_user_state_but_never_content(
        n in 1usize..16,
        scroll in -2_000i32..2_000,
        text in "[a-z]{1,12}",
    ) {
        let (mut shadow, mut sunny, engine) = coupled_trees(n);
        // User state: scroll on root + typed text in the EditText (v0).
        let root = shadow.find_by_id_name("root").unwrap();
        shadow.apply(root, ViewOp::ScrollTo(scroll)).unwrap();
        let edit = shadow.find_by_id_name("v0").unwrap();
        shadow.apply(edit, ViewOp::SetText(text.clone())).unwrap();
        // Content: a label (TextView at v5, if present) and a drawable.
        if n > 5 {
            let label = shadow.find_by_id_name("v5").unwrap();
            shadow.apply(label, ViewOp::SetText("old-config label".into())).unwrap();
        }
        if n > 1 {
            let img = shadow.find_by_id_name("v1").unwrap();
            shadow.apply(img, ViewOp::SetDrawable("old.png".into(), 10)).unwrap();
        }

        engine.seed_user_state(&shadow, &mut sunny).unwrap();

        let s_root = sunny.find_by_id_name("root").unwrap();
        prop_assert_eq!(sunny.view(s_root).unwrap().attrs.scroll_y, scroll);
        let s_edit = sunny.find_by_id_name("v0").unwrap();
        prop_assert_eq!(sunny.view(s_edit).unwrap().attrs.text.as_deref(), Some(text.as_str()));
        if n > 5 {
            let s_label = sunny.find_by_id_name("v5").unwrap();
            prop_assert_ne!(
                sunny.view(s_label).unwrap().attrs.text.as_deref(),
                Some("old-config label"),
                "label content must not be seeded"
            );
        }
        if n > 1 {
            let s_img = sunny.find_by_id_name("v1").unwrap();
            prop_assert!(
                sunny.view(s_img).unwrap().attrs.drawable.is_none(),
                "drawable content must not be seeded"
            );
        }
    }
}

/// One step of a shadow-instance lifetime: an app update to some view, an
/// async delivery draining invalidations into the engine, or a runtime
/// configuration change (which swaps the shadow/sunny roles — and, like
/// the handler, flushes any batched queue *before* the swap).
#[derive(Debug, Clone)]
enum Step {
    Update { which: usize, payload: i32 },
    Deliver,
    ConfigChange,
}

/// A coupled pair plus the engine driving it, with roles that can swap.
struct System {
    trees: [ViewTree; 2],
    shadow: usize,
    engine: MigrationEngine,
    clock: SimTime,
}

impl System {
    fn new(n: usize, policy: FlushPolicy) -> System {
        let (shadow, sunny, mut engine) = coupled_trees(n);
        engine.set_flush_policy(policy);
        System {
            trees: [shadow, sunny],
            shadow: 0,
            engine,
            clock: SimTime::ZERO,
        }
    }

    fn run(&mut self, n: usize, script: &[Step]) {
        for step in script {
            self.clock += SimDuration::from_millis(1);
            match step {
                Step::Update { which, payload } => {
                    let i = which % n;
                    let t = &mut self.trees[self.shadow];
                    let view = t.find_by_id_name(&format!("v{i}")).unwrap();
                    t.apply(view, op_for(i, *payload)).unwrap();
                }
                Step::Deliver => {
                    let [a, b] = &mut self.trees;
                    let (shadow, sunny) = if self.shadow == 0 { (a, b) } else { (b, a) };
                    self.engine
                        .migrate_invalidations(shadow, sunny, self.clock)
                        .unwrap();
                }
                Step::ConfigChange => {
                    let [a, b] = &mut self.trees;
                    let (shadow, sunny) = if self.shadow == 0 { (a, b) } else { (b, a) };
                    // The handler delivers outstanding callbacks and flushes
                    // the engine queue before any role change, so no applied
                    // update is ever stranded across a swap.
                    self.engine
                        .migrate_invalidations(shadow, sunny, self.clock)
                        .unwrap();
                    self.engine.flush(shadow, sunny).unwrap();
                    self.shadow = 1 - self.shadow;
                }
            }
        }
        // End of scenario: drain whatever is still queued.
        let [a, b] = &mut self.trees;
        let (shadow, sunny) = if self.shadow == 0 { (a, b) } else { (b, a) };
        let raw = shadow.pending_invalidation_count();
        if raw > 0 {
            self.engine
                .migrate_invalidations(shadow, sunny, self.clock)
                .unwrap();
        }
        self.engine.flush(shadow, sunny).unwrap();
    }
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<usize>(), any::<i32>()).prop_map(|(which, payload)| Step::Update { which, payload }),
        Just(Step::Deliver),
        Just(Step::ConfigChange),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: for ANY interleaving of view updates,
    /// async deliveries and configuration changes, a batched engine ends
    /// with bit-identical trees to an eager engine fed the same script.
    /// (Each batched flush additionally self-checks against an eager
    /// replay via the engine's debug-mode equivalence checker.)
    #[test]
    fn batched_flush_is_equivalent_to_eager_migration(
        n in 1usize..16,
        script in proptest::collection::vec(step_strategy(), 0..48),
        max_pending in 1usize..10,
        max_delay_ms in 0u64..32,
    ) {
        let mut eager = System::new(n, FlushPolicy::Eager);
        let mut batched = System::new(
            n,
            FlushPolicy::batched(max_pending, SimDuration::from_millis(max_delay_ms)),
        );
        eager.run(n, &script);
        batched.run(n, &script);

        for side in 0..2 {
            for id in eager.trees[side].iter_ids() {
                let want = eager.trees[side].view(id).unwrap();
                let got = batched.trees[side].view(id).unwrap();
                prop_assert_eq!(
                    &want.attrs,
                    &got.attrs,
                    "side {} view {} diverged", side, id
                );
            }
        }
    }
}
