//! The fleet determinism contract: a parallel fleet run produces
//! **bit-identical** per-device digests — and therefore an identical
//! reduced digest — to the `DROIDSIM_JOBS=1` inline run, for any worker
//! count. Each device here runs a faulty workload (5 % injection rate at
//! every probe site) so the comparison covers the full degradation
//! ladder, the logcat stream, and the mergeable metrics sinks, not just
//! the happy path.

use droidsim_app::SimpleApp;
use droidsim_device::{Device, HandlingMode};
use droidsim_faults::FaultPlan;
use droidsim_fleet::{combine_ordered, run_fleet, Digest, FleetConfig};
use droidsim_kernel::SimDuration;

/// Devices per fleet; enough that every worker count partitions
/// differently.
const DEVICES: usize = 8;
/// Injection probability at every probe site.
const FAULT_RATE: f64 = 0.05;

/// One simulated device: install, inject at 5 %, drive two changes with
/// an async task in flight, then digest everything observable — logcat,
/// migration + fault metrics, crash status, foreground component.
fn device_digest(fault_seed: u64, jitter_seed: u64) -> u64 {
    let mut d = Device::new(HandlingMode::rchdroid_default()).with_jitter(jitter_seed, 0.1);
    let c = d
        .install_and_launch(Box::new(SimpleApp::with_views(4)), 40 << 20, 1.0)
        .unwrap();
    d.arm_faults(
        &c,
        FaultPlan::seeded(fault_seed).with_rate_everywhere(FAULT_RATE),
    )
    .unwrap();
    d.start_async_on_foreground(SimpleApp::with_views(4).button_task())
        .unwrap();
    let _ = d.rotate();
    d.advance(SimDuration::from_secs(6));
    if !d.is_crashed(&c) {
        let _ = d.rotate();
        d.advance(SimDuration::from_secs(1));
    }

    let mut digest = Digest::new();
    for line in d.logcat(None) {
        digest.write_str(&line);
    }
    digest.write_str(&d.device_metrics(&c).unwrap().deterministic_fingerprint());
    digest.write_u64(u64::from(d.is_crashed(&c)));
    digest.write_str(d.foreground_component().as_deref().unwrap_or("<none>"));
    digest.finish()
}

/// Runs a whole fleet of [`DEVICES`] faulty devices and returns the
/// per-device digests in item order. Each task derives its fault seed
/// from its private RNG stream, so the value depends only on the fleet
/// seed and the task index — never on which worker ran it.
fn fleet_digests(cfg: &FleetConfig) -> Vec<u64> {
    run_fleet(cfg, (0..DEVICES).collect(), |mut ctx, _i| {
        let fault_seed = ctx.rng.next_u64();
        let jitter_seed = ctx.rng.next_u64();
        device_digest(fault_seed, jitter_seed)
    })
}

#[test]
fn parallel_fleet_is_bit_identical_to_serial() {
    for seed in [1u64, 2, 3] {
        let serial = fleet_digests(&FleetConfig::new(1, seed));
        assert_eq!(serial.len(), DEVICES);
        for jobs in [2usize, 4, 8] {
            let parallel = fleet_digests(&FleetConfig::new(jobs, seed));
            assert_eq!(
                parallel, serial,
                "seed {seed}: jobs={jobs} diverged from the inline run"
            );
            assert_eq!(
                combine_ordered(parallel),
                combine_ordered(serial.iter().copied()),
                "seed {seed}: reduced digest diverged at jobs={jobs}"
            );
        }
    }
}

#[test]
fn distinct_seeds_give_distinct_fleets() {
    // Sanity check that the digest actually captures behaviour: three
    // root seeds must not collapse to one digest stream.
    let a = combine_ordered(fleet_digests(&FleetConfig::new(1, 1)));
    let b = combine_ordered(fleet_digests(&FleetConfig::new(1, 2)));
    let c = combine_ordered(fleet_digests(&FleetConfig::new(1, 3)));
    assert!(a != b || b != c, "fleet digests are seed-insensitive");
}

#[test]
fn repeated_runs_are_stable() {
    // The same configuration twice in the same process: interning order
    // may differ (other tests intern first), so this also guards against
    // raw symbol values leaking into observable output.
    let cfg = FleetConfig::new(4, 7);
    assert_eq!(fleet_digests(&cfg), fleet_digests(&cfg));
}
