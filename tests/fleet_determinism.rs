//! The fleet determinism contract: a parallel fleet run produces
//! **bit-identical** per-device digests — and therefore an identical
//! reduced digest — to the `DROIDSIM_JOBS=1` inline run, for any worker
//! count. Each device here runs a faulty workload (5 % injection rate at
//! every probe site) so the comparison covers the full degradation
//! ladder, the logcat stream, and the mergeable metrics sinks, not just
//! the happy path.

use droidsim_app::SimpleApp;
use droidsim_device::{Device, HandlingMode};
use droidsim_faults::{FaultPlan, FaultSite};
use droidsim_fleet::{
    combine_indexed, combine_ordered, run_fleet, run_fleet_reduce, run_fleet_supervised, Digest,
    FleetConfig, FleetOptions, TaskCtx, TaskOutcome,
};
use droidsim_kernel::SimDuration;

/// Devices per fleet; enough that every worker count partitions
/// differently.
const DEVICES: usize = 8;
/// Injection probability at every probe site.
const FAULT_RATE: f64 = 0.05;

/// One simulated device: install, inject at 5 %, drive two changes with
/// an async task in flight, then digest everything observable — logcat,
/// migration + fault metrics, crash status, foreground component.
fn device_digest(fault_seed: u64, jitter_seed: u64) -> u64 {
    let mut d = Device::new(HandlingMode::rchdroid_default()).with_jitter(jitter_seed, 0.1);
    let c = d
        .install_and_launch(Box::new(SimpleApp::with_views(4)), 40 << 20, 1.0)
        .unwrap();
    d.arm_faults(
        &c,
        FaultPlan::seeded(fault_seed).with_rate_everywhere(FAULT_RATE),
    )
    .unwrap();
    d.start_async_on_foreground(SimpleApp::with_views(4).button_task())
        .unwrap();
    let _ = d.rotate();
    d.advance(SimDuration::from_secs(6));
    if !d.is_crashed(&c) {
        let _ = d.rotate();
        d.advance(SimDuration::from_secs(1));
    }

    let mut digest = Digest::new();
    d.for_each_logcat_line(None, |line| digest.write_str(line));
    digest.write_str(&d.device_metrics(&c).unwrap().deterministic_fingerprint());
    digest.write_u64(u64::from(d.is_crashed(&c)));
    digest.write_str(d.foreground_component().as_deref().unwrap_or("<none>"));
    digest.finish()
}

/// Runs a whole fleet of [`DEVICES`] faulty devices and returns the
/// per-device digests in item order. Each task derives its fault seed
/// from its private RNG stream, so the value depends only on the fleet
/// seed and the task index — never on which worker ran it.
fn fleet_digests(cfg: &FleetConfig) -> Vec<u64> {
    run_fleet(cfg, (0..DEVICES).collect(), device_task)
}

/// The per-task body shared by the plain and supervised runs: seeds come
/// from the task's private stream, so the digest depends only on the
/// fleet seed and the task index.
fn device_task(mut ctx: TaskCtx, _i: usize) -> u64 {
    let fault_seed = ctx.rng.next_u64();
    let jitter_seed = ctx.rng.next_u64();
    device_digest(fault_seed, jitter_seed)
}

/// Runs the same fleet under supervision.
fn supervised(cfg: &FleetConfig, opts: &FleetOptions) -> droidsim_fleet::FleetRun<u64> {
    run_fleet_supervised(cfg, opts, (0..DEVICES).collect(), device_task, |d| *d).unwrap()
}

#[test]
fn parallel_fleet_is_bit_identical_to_serial() {
    for seed in [1u64, 2, 3] {
        let serial = fleet_digests(&FleetConfig::new(1, seed));
        assert_eq!(serial.len(), DEVICES);
        for jobs in [2usize, 4, 8] {
            let parallel = fleet_digests(&FleetConfig::new(jobs, seed));
            assert_eq!(
                parallel, serial,
                "seed {seed}: jobs={jobs} diverged from the inline run"
            );
            assert_eq!(
                combine_ordered(parallel),
                combine_ordered(serial.iter().copied()),
                "seed {seed}: reduced digest diverged at jobs={jobs}"
            );
        }
    }
}

/// Wide enough that `claim_chunk` actually batches: at `jobs=2` the
/// first claim takes `24 / (4*2) = 3` tasks per cursor bump, so this
/// fleet exercises the K>1 chunked-claiming path the 8-device fleets
/// never reach.
const WIDE: usize = 24;

#[test]
fn chunked_claiming_and_streaming_reduce_match_inline() {
    for seed in [1u64, 2, 3] {
        let items: Vec<usize> = (0..WIDE).collect();
        let serial = run_fleet(&FleetConfig::new(1, seed), items.clone(), device_task);
        let reduce_serial = run_fleet_reduce(&FleetConfig::new(1, seed), &items, |ctx, &i| {
            device_task(ctx, i)
        });
        // The streaming reduction is by definition the indexed fold of
        // the per-task digests.
        let tagged: Vec<(u64, u64)> = serial
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as u64, d))
            .collect();
        assert_eq!(reduce_serial, combine_indexed(tagged), "seed {seed}");
        for jobs in [2usize, 4] {
            assert_eq!(
                run_fleet(&FleetConfig::new(jobs, seed), items.clone(), device_task),
                serial,
                "seed {seed}: chunked claiming at jobs={jobs} diverged"
            );
            assert_eq!(
                run_fleet_reduce(
                    &FleetConfig::new(jobs, seed),
                    &items,
                    |ctx, &i| device_task(ctx, i)
                ),
                reduce_serial,
                "seed {seed}: streaming reduce at jobs={jobs} diverged"
            );
        }
    }
}

#[test]
fn chunked_supervised_run_with_retries_matches_inline_unordered() {
    // The supervised driver claims the same K>1 chunks; a forced
    // transient fault (first attempt of task 3 panics, the retry
    // re-derives the identical stream) must leave both the ordered and
    // the unordered study digests bit-identical to the inline run.
    let items: Vec<usize> = (0..WIDE).collect();
    let plan = FaultPlan::seeded(5).on_nth_probe(FaultSite::FleetTask, 4);
    let opts = FleetOptions::new().with_retries(2).with_faults(plan);
    let inline = run_fleet_supervised(
        &FleetConfig::new(1, 5),
        &opts,
        items.clone(),
        device_task,
        |d| *d,
    )
    .unwrap();
    assert!(inline.report.is_clean(), "{}", inline.report.render());
    for jobs in [2usize, 4] {
        let run = run_fleet_supervised(
            &FleetConfig::new(jobs, 5),
            &opts,
            items.clone(),
            device_task,
            |d| *d,
        )
        .unwrap();
        assert!(
            run.report.is_clean(),
            "jobs={jobs}: {}",
            run.report.render()
        );
        assert_eq!(run.report.ledger.retries, 1, "jobs={jobs}");
        assert_eq!(
            run.combined_digest(),
            inline.combined_digest(),
            "jobs={jobs}: ordered study digest diverged"
        );
        assert_eq!(
            run.combined_digest_unordered(),
            inline.combined_digest_unordered(),
            "jobs={jobs}: unordered study digest diverged"
        );
    }
}

#[test]
fn distinct_seeds_give_distinct_fleets() {
    // Sanity check that the digest actually captures behaviour: three
    // root seeds must not collapse to one digest stream.
    let a = combine_ordered(fleet_digests(&FleetConfig::new(1, 1)));
    let b = combine_ordered(fleet_digests(&FleetConfig::new(1, 2)));
    let c = combine_ordered(fleet_digests(&FleetConfig::new(1, 3)));
    assert!(a != b || b != c, "fleet digests are seed-insensitive");
}

#[test]
fn repeated_runs_are_stable() {
    // The same configuration twice in the same process: interning order
    // may differ (other tests intern first), so this also guards against
    // raw symbol values leaking into observable output.
    let cfg = FleetConfig::new(4, 7);
    assert_eq!(fleet_digests(&cfg), fleet_digests(&cfg));
}

#[test]
fn a_panicking_device_costs_only_its_own_slot() {
    // Crash isolation: device 3 of 8 panics on every attempt; the other
    // seven results survive, in item order, bit-identical to the clean
    // inline run.
    let clean = fleet_digests(&FleetConfig::new(1, 1));
    let run = supervised(
        &FleetConfig::new(4, 1),
        &FleetOptions::new().with_hard_fail(vec![3]),
    );
    assert_eq!(run.outcomes.len(), DEVICES);
    assert!(matches!(
        run.outcomes[3],
        TaskOutcome::Panicked { index: 3, .. }
    ));
    for (i, o) in run.outcomes.iter().enumerate() {
        if i == 3 {
            continue;
        }
        assert_eq!(o.ok().copied(), Some(clean[i]), "slot {i} diverged");
    }
    assert_eq!(run.report.quarantined.len(), 1);
    assert_eq!(run.report.quarantined[0].index, 3);
    // A partial run has no comparable study digest.
    assert!(run.combined_digest().is_none());
}

#[test]
fn a_retried_transient_fault_reproduces_the_clean_digest() {
    // Deterministic retries: a forced `fleet-task` fault panics device
    // 3's first attempt. The retry reruns on the *same*
    // `Xoshiro256::stream(seed, 3)`, so for every worker count the run
    // converges to the clean run's digests, bit for bit.
    let clean = fleet_digests(&FleetConfig::new(1, 5));
    let plan = FaultPlan::seeded(5).on_nth_probe(FaultSite::FleetTask, 4);
    let opts = FleetOptions::new().with_retries(2).with_faults(plan);
    for jobs in [1usize, 2, 4, 8] {
        let run = supervised(&FleetConfig::new(jobs, 5), &opts);
        assert!(
            run.report.is_clean(),
            "jobs={jobs}: {}",
            run.report.render()
        );
        assert_eq!(run.report.ledger.retries, 1, "jobs={jobs}");
        assert_eq!(run.report.ledger.injected_faults, 1, "jobs={jobs}");
        let digests: Vec<u64> = run.digests.iter().map(|d| d.unwrap()).collect();
        assert_eq!(digests, clean, "jobs={jobs} diverged after the retry");
        assert_eq!(
            run.combined_digest().unwrap(),
            combine_ordered(clean.iter().copied()),
            "jobs={jobs}"
        );
    }
}

#[test]
fn resuming_a_half_finished_journal_matches_the_uninterrupted_run() {
    // Checkpoint/resume: journal a full run, cut the journal back to its
    // header plus half the task lines (simulating a mid-run crash), then
    // resume. The resumed run re-executes only the missing half and its
    // combined digest equals the uninterrupted run's.
    let dir = std::env::temp_dir().join(format!("droidsim-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fleet.journal");
    let _ = std::fs::remove_file(&path);

    let cfg = FleetConfig::new(2, 9);
    let full = supervised(&cfg, &FleetOptions::new().with_journal(&path));
    let uninterrupted = full.combined_digest().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + DEVICES, "header + one line per device");
    let keep = 1 + DEVICES / 2;
    std::fs::write(&path, format!("{}\n", lines[..keep].join("\n"))).unwrap();

    let resumed = supervised(&cfg, &FleetOptions::new().resuming(&path));
    assert_eq!(resumed.report.ledger.skipped, (DEVICES / 2) as u64);
    assert_eq!(resumed.report.ledger.ok, (DEVICES - DEVICES / 2) as u64);
    assert_eq!(
        resumed.combined_digest().unwrap(),
        uninterrupted,
        "resumed digest diverged from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
