//! Property tests: Bundle/Parcel flattening is lossless and sizes are
//! monotone.

use droidsim_bundle::{Bundle, Parcel, Value};
use proptest::prelude::*;

fn arb_leaf_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(Value::I32),
        any::<i64>().prop_map(Value::I64),
        // Finite doubles only: NaN breaks PartialEq-based round-trip checks.
        (-1.0e12f64..1.0e12).prop_map(Value::F64),
        "[a-zA-Z0-9 ]{0,32}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Blob),
        proptest::collection::vec(any::<i32>(), 0..16).prop_map(Value::I32List),
        proptest::collection::vec("[a-z]{0,8}".prop_map(String::from), 0..8)
            .prop_map(Value::StrList),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    arb_leaf_value().prop_recursive(3, 64, 8, |inner| {
        proptest::collection::btree_map("[a-z_]{1,12}", inner, 0..8)
            .prop_map(|m| Value::Nested(m.into_iter().collect()))
    })
}

fn arb_bundle() -> impl Strategy<Value = Bundle> {
    proptest::collection::btree_map("[a-z_:.]{1,16}", arb_value(), 0..12)
        .prop_map(|m| m.into_iter().collect())
}

proptest! {
    #[test]
    fn parcel_round_trip_is_lossless(bundle in arb_bundle()) {
        let mut parcel = Parcel::new();
        parcel.write_bundle(&bundle);
        let mut reader = parcel.into_reader();
        let restored = reader.read_bundle().expect("well-formed parcel parses");
        prop_assert_eq!(restored, bundle);
        prop_assert_eq!(reader.remaining(), 0);
    }

    #[test]
    fn parcel_size_is_monotone_under_insertion(
        bundle in arb_bundle(),
        key in "[a-z]{1,8}",
        value in arb_leaf_value(),
    ) {
        let before = bundle.parcel_size();
        let mut grown = bundle.clone();
        let replaced = grown.put(&key, value);
        // Inserting a NEW key can only grow the flattened size.
        if replaced.is_none() {
            prop_assert!(grown.parcel_size() > before);
        }
    }

    #[test]
    fn merge_is_idempotent(bundle in arb_bundle()) {
        let mut merged = bundle.clone();
        merged.merge(bundle.clone());
        prop_assert_eq!(merged, bundle);
    }

    #[test]
    fn truncation_never_panics_and_never_misparses(
        bundle in arb_bundle(),
        cut_fraction in 0.0f64..1.0,
    ) {
        // A parcel cut at ANY byte boundary must either fail to parse or
        // parse to the ORIGINAL bundle (a cut in trailing slack) — never
        // panic, hang, or yield corrupt data silently accepted as equal.
        let mut parcel = Parcel::new();
        parcel.write_bundle(&bundle);
        let bytes = parcel.into_bytes();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let truncated = bytes[..cut].to_vec();
        let mut reader = droidsim_bundle::parcel::ParcelReader::from_bytes(truncated);
        match reader.read_bundle() {
            Err(_) => {} // expected for almost every cut
            Ok(parsed) => {
                // Only possible when the cut removed nothing semantic —
                // i.e. the parse consumed exactly the cut prefix AND the
                // result round-trips to the same bytes.
                prop_assert_eq!(&parsed, &bundle, "silent corruption at cut {}", cut);
            }
        }
    }

    #[test]
    fn wire_round_trip_via_bytes(bundle in arb_bundle()) {
        let mut parcel = Parcel::new();
        parcel.write_bundle(&bundle);
        let bytes = parcel.into_bytes();
        let mut reader = droidsim_bundle::parcel::ParcelReader::from_bytes(bytes);
        prop_assert_eq!(reader.read_bundle().unwrap(), bundle);
    }

    #[test]
    fn iteration_order_is_sorted(bundle in arb_bundle()) {
        let keys: Vec<&str> = bundle.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(keys, sorted);
    }
}
