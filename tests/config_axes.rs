//! Every runtime-change axis end-to-end: rotation is the motivating
//! example, but the paper's problem statement covers screen resizing,
//! language switching, keyboard attachment, font scale and UI mode. Each
//! axis must flow through diffing → handling → resource re-selection.

use droidsim_app::SimpleApp;
use droidsim_config::{KeyboardState, Locale, UiMode};
use droidsim_device::{Device, HandlingMode, HandlingPath};
use droidsim_view::ViewOp;

fn device() -> Device {
    let mut d = Device::new(HandlingMode::rchdroid_default());
    d.install_and_launch(Box::new(SimpleApp::with_views(4)), 40 << 20, 1.0)
        .unwrap();
    // User state to carry across every change.
    d.with_foreground_activity_mut(|a| {
        let root = a.tree.find_by_id_name("root").unwrap();
        a.tree.apply(root, ViewOp::ScrollTo(555)).unwrap();
    })
    .unwrap();
    d
}

fn foreground_scroll(d: &mut Device) -> i32 {
    d.with_foreground_activity_mut(|a| {
        let root = a.tree.find_by_id_name("root").unwrap();
        a.tree.view(root).unwrap().attrs.scroll_y
    })
    .unwrap()
}

#[test]
fn wm_size_commands_follow_the_artifact_workflow() {
    let mut d = device();
    // §A.5: wm size 1080x1920 … wm size reset.
    let first = d.wm_size(1920, 1080).unwrap();
    assert_eq!(first.path, HandlingPath::RchInit);
    let reset = d.wm_size_reset().unwrap();
    assert_eq!(reset.path, HandlingPath::RchFlip);
    assert_eq!(foreground_scroll(&mut d), 555);
    assert_eq!(d.configuration().screen.to_string(), "1080x1920");
}

#[test]
fn resize_without_rotation_is_still_a_runtime_change() {
    let mut d = device();
    // Same orientation, different height (multi-window style).
    let report = d.wm_size(1080, 1600).unwrap();
    assert_ne!(report.path, HandlingPath::NoChange);
    assert_eq!(foreground_scroll(&mut d), 555);
}

#[test]
fn language_switch_axis() {
    let mut d = device();
    let zh = d.configuration().with_locale(Locale::zh_cn());
    let report = d.change_configuration(zh).unwrap();
    assert_eq!(report.path, HandlingPath::RchInit);
    assert_eq!(foreground_scroll(&mut d), 555);
    assert_eq!(d.configuration().locale, Locale::zh_cn());
}

#[test]
fn keyboard_attachment_axis() {
    let mut d = device();
    let with_kb = d.configuration().with_keyboard(KeyboardState::Attached);
    let report = d.change_configuration(with_kb).unwrap();
    assert_eq!(report.path, HandlingPath::RchInit);
    // Detach: the coin flip reuses the pre-attachment instance.
    let without = d.configuration().with_keyboard(KeyboardState::None);
    let second = d.change_configuration(without).unwrap();
    assert_eq!(second.path, HandlingPath::RchFlip);
    assert_eq!(foreground_scroll(&mut d), 555);
}

#[test]
fn font_scale_axis() {
    let mut d = device();
    let large_text = d.configuration().with_font_scale_milli(1300);
    let report = d.change_configuration(large_text).unwrap();
    assert_eq!(report.path, HandlingPath::RchInit);
    assert!((d.configuration().font_scale() - 1.3).abs() < 1e-9);
    assert_eq!(foreground_scroll(&mut d), 555);
}

#[test]
fn dark_mode_axis() {
    let mut d = device();
    let night = d.configuration().with_ui_mode(UiMode::Night);
    let report = d.change_configuration(night).unwrap();
    assert_eq!(report.path, HandlingPath::RchInit);
    assert_eq!(foreground_scroll(&mut d), 555);
}

#[test]
fn compound_change_is_handled_once() {
    let mut d = device();
    // Rotation + language + dark mode in one configuration update (e.g.
    // a profile switch): one change, one handling pass.
    let compound = d
        .configuration()
        .rotated()
        .with_locale(Locale::zh_cn())
        .with_ui_mode(UiMode::Night);
    let before = d.process("com.bench/.Main").unwrap().latencies_ms().len();
    let report = d.change_configuration(compound).unwrap();
    assert_eq!(report.path, HandlingPath::RchInit);
    let after = d.process("com.bench/.Main").unwrap().latencies_ms().len();
    assert_eq!(after, before + 1);
    assert_eq!(foreground_scroll(&mut d), 555);
}

#[test]
fn flip_requires_matching_configuration_history() {
    // A→B→C (three distinct configurations): the second change still
    // flips — the shadow is reused and re-dressed — and state survives.
    let mut d = device();
    d.wm_size(1920, 1080).unwrap();
    let third = d
        .change_configuration(d.configuration().with_locale(Locale::zh_cn()))
        .unwrap();
    assert_eq!(third.path, HandlingPath::RchFlip);
    assert_eq!(foreground_scroll(&mut d), 555);
}
