//! Display integrity: after any handling path, the foreground tree must
//! lay out cleanly for the *current* screen — the paper's "mess up the
//! display" failure is geometry computed for the wrong configuration.

use droidsim_app::SimpleApp;
use droidsim_device::{Device, HandlingMode};
use droidsim_view::layout;

fn assert_foreground_fits(device: &Device, component: &str, context: &str) {
    let p = device.process(component).unwrap();
    let fg = p.foreground_activity().expect("foreground alive");
    let screen = device.configuration().screen;
    let result = layout(&fg.tree, screen);
    assert!(result.len() > 1, "{context}: something laid out");
    assert!(
        result.out_of_bounds().is_empty(),
        "{context}: views out of the {screen} screen: {:?}",
        result.out_of_bounds()
    );
}

#[test]
fn every_mode_relayouts_correctly_after_rotation() {
    for mode in [
        HandlingMode::Android10,
        HandlingMode::rchdroid_default(),
        HandlingMode::RuntimeDroid,
    ] {
        let mut d = Device::new(mode);
        let c = d
            .install_and_launch(Box::new(SimpleApp::with_views(6)), 40 << 20, 1.0)
            .unwrap();
        assert_foreground_fits(&d, &c, "before any change");
        for i in 0..4 {
            d.rotate().unwrap();
            assert_foreground_fits(&d, &c, &format!("{mode:?} after rotation {i}"));
        }
    }
}

#[test]
fn coin_flip_reuses_geometry_that_matches_the_flipped_config() {
    // The flip's O(1) cost rests on the reused instance having been built
    // for the configuration being flipped back to — verify the geometry
    // really matches.
    let mut d = Device::new(HandlingMode::rchdroid_default());
    let c = d
        .install_and_launch(Box::new(SimpleApp::with_views(4)), 40 << 20, 1.0)
        .unwrap();
    d.rotate().unwrap(); // portrait → landscape (init)
    d.rotate().unwrap(); // landscape → portrait (flip: original instance)
    assert_foreground_fits(&d, &c, "after flip back to portrait");

    // The flipped-in tree uses the portrait container (LinearLayout), not
    // the landscape one — it IS the original instance.
    let p = d.process(&c).unwrap();
    let fg = p.foreground_activity().unwrap();
    let root = fg.tree.find_by_id_name("root").unwrap();
    assert_eq!(
        fg.tree.view(root).unwrap().kind.class_name(),
        "LinearLayout"
    );
}

#[test]
fn shadow_tree_geometry_is_stale_by_design() {
    // The shadow instance keeps its old-configuration tree; it is
    // invisible, so the staleness is harmless — but it is real, and it is
    // why a flip to a *third* configuration would need a relayout pass.
    let mut d = Device::new(HandlingMode::rchdroid_default());
    let c = d
        .install_and_launch(Box::new(SimpleApp::with_views(4)), 40 << 20, 1.0)
        .unwrap();
    d.rotate().unwrap();
    let p = d.process(&c).unwrap();
    let shadow_activity = p
        .thread()
        .instance(p.thread().current_shadow().unwrap())
        .unwrap();
    // The shadow instance still carries its creation-time configuration…
    let shadow_screen = shadow_activity.config().screen;
    let current_screen = d.configuration().screen;
    assert_ne!(
        shadow_screen, current_screen,
        "shadow config predates the change"
    );
    // …so its natural geometry is for the old screen: its decor rect does
    // not match the current screen's dimensions.
    let natural = layout(&shadow_activity.tree, shadow_screen);
    let decor = natural.rect(shadow_activity.tree.root()).unwrap();
    assert_eq!(
        (decor.width, decor.height),
        (shadow_screen.width_dp, shadow_screen.height_dp)
    );
    assert_ne!(
        (decor.width, decor.height),
        (current_screen.width_dp, current_screen.height_dp)
    );
}
