//! Fragment activities end-to-end (§2.2 of the paper): dynamically
//! attached fragments are where app-level static approaches fail and
//! where RCHDroid's system-level migration still works.

use droidsim_app::{Activity, AppModel, FragmentSpec};
use droidsim_bundle::Bundle;
use droidsim_device::{Device, HandlingMode};
use droidsim_resources::{LayoutNode, LayoutTemplate, Qualifiers, ResourceTable, ResourceValue};
use droidsim_view::ViewOp;

/// An app whose login form lives in a dynamically attached fragment (the
/// framework-managed pattern: `onCreate` re-attaches it).
#[derive(Debug)]
struct FragmentApp {
    resources: ResourceTable,
}

impl FragmentApp {
    fn new() -> Self {
        let mut resources = ResourceTable::new();
        for (qualifiers, container) in [
            (Qualifiers::any(), "LinearLayout"),
            (
                Qualifiers::any().with_orientation(droidsim_config::Orientation::Landscape),
                "GridLayout",
            ),
        ] {
            resources.put(
                "activity_main",
                qualifiers,
                ResourceValue::Layout(LayoutTemplate::new(
                    "activity_main",
                    LayoutNode::new(container)
                        .with_id("root")
                        .with_child(LayoutNode::new("FrameLayout").with_id("fragment_host")),
                )),
            );
        }
        resources.put(
            "fragment_login",
            Qualifiers::any(),
            ResourceValue::Layout(LayoutTemplate::new(
                "fragment_login",
                LayoutNode::new("LinearLayout")
                    .with_id("login_root")
                    .with_child(LayoutNode::new("EditText").with_id("username"))
                    .with_child(LayoutNode::new("EditText").with_id("password"))
                    .with_child(LayoutNode::new("Button").with_id("submit")),
            )),
        );
        FragmentApp { resources }
    }
}

impl AppModel for FragmentApp {
    fn component_name(&self) -> &str {
        "com.fragmented/.Main"
    }

    fn resources(&self) -> &ResourceTable {
        &self.resources
    }

    fn main_layout(&self) -> &str {
        "activity_main"
    }

    fn on_create(&self, activity: &mut Activity) {
        activity
            .attach_fragment(
                &self.resources,
                &FragmentSpec::new("login", "fragment_login", "fragment_host"),
            )
            .expect("container exists in every configuration");
    }

    fn on_save_instance_state(&self, _activity: &Activity, _out: &mut Bundle) {}
}

fn launch(mode: HandlingMode) -> (Device, String) {
    let mut device = Device::new(mode);
    let component = device
        .install_and_launch(Box::new(FragmentApp::new()), 50 << 20, 1.0)
        .expect("launch");
    device
        .with_foreground_activity_mut(|a| {
            let username = a.tree.find_by_id_name("username").unwrap();
            a.tree
                .apply(username, ViewOp::SetText("alice@example.com".into()))
                .unwrap();
        })
        .unwrap();
    (device, component)
}

fn username_after_rotation(device: &mut Device) -> Option<String> {
    device.rotate().expect("handled");
    device
        .with_foreground_activity_mut(|a| {
            let username = a.tree.find_by_id_name("username")?;
            a.tree.view(username).ok()?.attrs.text.clone()
        })
        .ok()
        .flatten()
}

#[test]
fn fragment_views_exist_in_every_configuration() {
    let (device, component) = launch(HandlingMode::rchdroid_default());
    let p = device.process(&component).unwrap();
    let fg = p.foreground_activity().unwrap();
    assert!(fg.tree.find_by_id_name("username").is_some());
    assert_eq!(fg.fragments().len(), 1);
}

#[test]
fn rchdroid_preserves_fragment_state() {
    let (mut device, _) = launch(HandlingMode::rchdroid_default());
    // The sunny instance re-runs onCreate (re-attaching the fragment);
    // the essence mapping then links fragment views by id and the typed
    // username migrates.
    assert_eq!(
        username_after_rotation(&mut device).as_deref(),
        Some("alice@example.com")
    );
}

#[test]
fn stock_restart_preserves_framework_fragment_state() {
    // The fragment's EditText has an id and is re-attached by onCreate,
    // so the hierarchy bundle restores it: the framework-managed fragment
    // pattern is safe under stock Android too.
    let (mut device, _) = launch(HandlingMode::Android10);
    assert_eq!(
        username_after_rotation(&mut device).as_deref(),
        Some("alice@example.com")
    );
}

#[test]
fn runtimedroid_drops_the_whole_fragment() {
    // §2.2: "the views are distributed and assigned in different
    // fragments … the assignment insertion of RuntimeDroid cannot handle
    // these situations." Static reconstruction re-inflates the layout
    // resource, which contains only the empty fragment host.
    let (mut device, component) = launch(HandlingMode::RuntimeDroid);
    assert_eq!(
        username_after_rotation(&mut device),
        None,
        "fragment subtree is gone"
    );
    let p = device.process(&component).unwrap();
    let fg = p.foreground_activity().unwrap();
    assert!(
        fg.tree.find_by_id_name("fragment_host").is_some(),
        "host survives"
    );
    assert!(
        fg.tree.find_by_id_name("login_root").is_none(),
        "fragment does not"
    );
}

#[test]
fn rchdroid_keeps_fragment_state_across_many_flips() {
    let (mut device, _) = launch(HandlingMode::rchdroid_default());
    for i in 0..6 {
        let text = username_after_rotation(&mut device);
        assert_eq!(text.as_deref(), Some("alice@example.com"), "rotation {i}");
    }
}
