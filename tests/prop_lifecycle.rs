//! Property tests on the activity lifecycle state machine (Fig. 4) and
//! the deterministic simulation kernel.

use droidsim_app::ActivityState;
use droidsim_kernel::{EventQueue, SimTime, Xoshiro256};
use proptest::prelude::*;

const ALL_STATES: [ActivityState; 8] = [
    ActivityState::Created,
    ActivityState::Started,
    ActivityState::Resumed,
    ActivityState::Paused,
    ActivityState::Stopped,
    ActivityState::Destroyed,
    ActivityState::Shadow,
    ActivityState::Sunny,
];

proptest! {
    #[test]
    fn destroyed_is_absorbing(target in 0usize..8) {
        let to = ALL_STATES[target];
        prop_assert!(!ActivityState::Destroyed.can_transition_to(to));
    }

    #[test]
    fn random_walks_stay_on_legal_edges(choices in proptest::collection::vec(any::<usize>(), 0..50)) {
        let mut state = ActivityState::Created;
        for choice in choices {
            let to = ALL_STATES[choice % 8];
            match state.transition_to(to) {
                Ok(next) => {
                    prop_assert!(state.can_transition_to(to));
                    state = next;
                }
                Err(e) => {
                    prop_assert_eq!(e.from, state);
                    prop_assert_eq!(e.to, to);
                }
            }
        }
    }

    #[test]
    fn shadow_is_alive_and_invisible_everywhere(choices in proptest::collection::vec(any::<usize>(), 0..50)) {
        let mut state = ActivityState::Created;
        for choice in choices {
            if let Ok(next) = state.transition_to(ALL_STATES[choice % 8]) {
                state = next;
            }
            if state == ActivityState::Shadow {
                prop_assert!(state.is_alive());
                prop_assert!(!state.is_visible());
                prop_assert!(!state.is_foreground());
            }
            if state == ActivityState::Sunny {
                prop_assert!(state.is_foreground());
            }
        }
    }

    #[test]
    fn event_queue_pops_sorted_and_stable(times in proptest::collection::vec(0u64..1_000, 0..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.at, e.payload));
        }
        // Sorted by time…
        prop_assert!(popped.windows(2).all(|w| w[0].0 <= w[1].0));
        // …and FIFO within equal times.
        prop_assert!(popped
            .windows(2)
            .all(|w| w[0].0 < w[1].0 || w[0].1 < w[1].1));
        // Nothing lost.
        prop_assert_eq!(popped.len(), times.len());
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = Xoshiro256::seed_from(seed);
        let mut b = Xoshiro256::seed_from(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_range_is_inclusive_and_bounded(seed in any::<u64>(), lo in 0u64..100, span in 0u64..100) {
        let hi = lo + span;
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..100 {
            let v = rng.next_range(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }
}
