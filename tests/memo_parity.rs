//! The memo ≡ cold contract: the warm-path caches (`kernel::memo` —
//! resolved resource views, inflated templates, mapping plans) are pure
//! memoization. Disabling them with the kill switch, evicting them
//! under pressure, or invalidating them mid-workload must never change
//! a single observable digest — at any worker count, with faults
//! injected, for arbitrary app specs.
//!
//! The tests toggle the process-global memo switch, so every test in
//! this binary serialises on [`FLAG_LOCK`] and restores the enabled
//! state on exit (panic included) via [`MemoGuard`].

use droidsim_analysis::{AppAnalysis, Suppressions};
use droidsim_app::SimpleApp;
use droidsim_device::{Device, HandlingMode};
use droidsim_faults::FaultPlan;
use droidsim_fleet::{run_fleet, Digest, FleetConfig, TaskCtx};
use droidsim_kernel::{memo, SimDuration};
use proptest::prelude::*;
use rch_experiments::{run_app, RunConfig, RunOutcome};
use rch_workloads::{GenericAppSpec, StateItem, StateMechanism};
use std::sync::Mutex;

/// Serialises the tests of this binary around the process-global memo
/// switch.
static FLAG_LOCK: Mutex<()> = Mutex::new(());

/// RAII: sets the memo switch for a scope and restores `enabled` on
/// drop, so a failing assertion cannot leak a disabled cache into the
/// next test.
struct MemoGuard;

impl MemoGuard {
    fn set(on: bool) -> MemoGuard {
        memo::set_enabled(on);
        MemoGuard
    }
}

impl Drop for MemoGuard {
    fn drop(&mut self) {
        memo::set_enabled(true);
    }
}

/// Devices per fleet (enough that 1/4/8 workers partition differently).
const DEVICES: usize = 8;
/// Fault injection probability at every probe site.
const FAULT_RATE: f64 = 0.05;

/// One faulty device workload, digesting everything observable — the
/// same shape as the fleet determinism suite, so the memo caches see
/// the full resolve → inflate → build_mapping path under degradation.
fn device_digest(fault_seed: u64, jitter_seed: u64) -> u64 {
    let mut d = Device::new(HandlingMode::rchdroid_default()).with_jitter(jitter_seed, 0.1);
    let c = d
        .install_and_launch(Box::new(SimpleApp::with_views(4)), 40 << 20, 1.0)
        .unwrap();
    d.arm_faults(
        &c,
        FaultPlan::seeded(fault_seed).with_rate_everywhere(FAULT_RATE),
    )
    .unwrap();
    d.start_async_on_foreground(SimpleApp::with_views(4).button_task())
        .unwrap();
    let _ = d.rotate();
    d.advance(SimDuration::from_secs(6));
    if !d.is_crashed(&c) {
        let _ = d.rotate();
        d.advance(SimDuration::from_secs(1));
    }

    let mut digest = Digest::new();
    d.for_each_logcat_line(None, |line| digest.write_str(line));
    digest.write_str(&d.device_metrics(&c).unwrap().deterministic_fingerprint());
    digest.write_u64(u64::from(d.is_crashed(&c)));
    digest.write_str(d.foreground_component().as_deref().unwrap_or("<none>"));
    digest.finish()
}

fn device_task(mut ctx: TaskCtx, _i: usize) -> u64 {
    let fault_seed = ctx.rng.next_u64();
    let jitter_seed = ctx.rng.next_u64();
    device_digest(fault_seed, jitter_seed)
}

fn fleet_digests(jobs: usize, seed: u64) -> Vec<u64> {
    run_fleet(
        &FleetConfig::new(jobs, seed),
        (0..DEVICES).collect(),
        device_task,
    )
}

#[test]
fn memo_equals_cold_at_every_worker_count_under_faults() {
    let _serial = FLAG_LOCK.lock().unwrap();
    for seed in [1u64, 11] {
        let cold = {
            let _off = MemoGuard::set(false);
            fleet_digests(1, seed)
        };
        let _on = MemoGuard::set(true);
        for jobs in [1usize, 4, 8] {
            assert_eq!(
                fleet_digests(jobs, seed),
                cold,
                "seed {seed}: memoized fleet at jobs={jobs} diverged from the cold run"
            );
        }
    }
}

/// Digests everything a scenario run observes.
fn outcome_digest(o: &RunOutcome) -> u64 {
    let mut d = Digest::new();
    for l in &o.latencies_ms {
        d.write_u64(l.to_bits());
    }
    d.write_u64(u64::from(o.crashed));
    d.write_u64(u64::from(o.state_ok));
    d.write_u64(o.memory_mib.to_bits());
    d.write_u64(o.busy_ms.to_bits());
    d.finish()
}

/// A random app spec: derived quantitative parameters from the name,
/// every behaviour flag free, optionally a state item of any mechanism
/// (the table5 study's spec space).
fn spec_strategy() -> impl Strategy<Value = GenericAppSpec> {
    // flags is a bitmask: large / handles-changes / saves-state / async.
    // mechanism 0..5 selects a state mechanism; 5 means "no state item".
    (0u32..1000, 0u32..16, 0usize..6).prop_map(|(n, flags, mechanism)| {
        let (large, handles, saves, with_async) = (
            flags & 1 != 0,
            flags & 2 != 0,
            flags & 4 != 0,
            flags & 8 != 0,
        );
        let mut spec = GenericAppSpec::sized(&format!("prop-app-{n}"), "10M+", large);
        if handles {
            spec = spec.self_handling();
        }
        if saves {
            spec = spec.saving_state();
        }
        if with_async {
            spec = spec.with_async_task();
        }
        if mechanism < 5 {
            let mechanism = [
                StateMechanism::FrameworkView,
                StateMechanism::CustomViewNoSave,
                StateMechanism::DynamicViewNoSave,
                StateMechanism::MemberSaved,
                StateMechanism::MemberUnsaved,
            ][mechanism];
            spec = spec.with_issue(
                "state loss on change",
                StateItem::new("prop-state", mechanism, "prop-value"),
            );
        }
        spec
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any app spec, driven through the table5-style handling scenario
    /// under both systems, produces bit-identical outcomes with the
    /// caches on and off — including the warm re-run that actually
    /// hits the caches.
    #[test]
    fn any_app_spec_runs_identically_with_and_without_memo(spec in spec_strategy()) {
        let _serial = FLAG_LOCK.lock().unwrap();
        let run = |mode: HandlingMode| run_app(&spec, &RunConfig::new(mode));
        let cold: Vec<u64> = {
            let _off = MemoGuard::set(false);
            [HandlingMode::Android10, HandlingMode::rchdroid_default()]
                .map(|m| outcome_digest(&run(m)))
                .to_vec()
        };
        let _on = MemoGuard::set(true);
        for pass in 0..2 {
            let warm: Vec<u64> = [HandlingMode::Android10, HandlingMode::rchdroid_default()]
                .map(|m| outcome_digest(&run(m)))
                .to_vec();
            prop_assert_eq!(
                &warm, &cold,
                "{}: warm pass {} diverged from the cold run", spec.name, pass
            );
        }
    }
}

/// The analyzer's `AppShape` extraction is memoized through the same
/// `kernel::memo` registry as the runtime caches. Cold (memo off),
/// first-warm (fills), second-warm (hits), and post-reclaim /
/// post-invalidate analyses of the same corpus must produce identical
/// per-app digests — diagnostics, verdicts and suppression counts.
#[test]
fn shape_memoization_never_changes_analysis_results() {
    let _serial = FLAG_LOCK.lock().unwrap();
    let specs: Vec<GenericAppSpec> = rch_workloads::tp27_specs()
        .into_iter()
        .chain(rch_workloads::dataloss_specs().into_iter().step_by(23))
        .collect();
    let digest_all = || -> Vec<u64> {
        specs
            .iter()
            .map(|s| AppAnalysis::of(s, &Suppressions::none()).digest())
            .collect()
    };
    let cold = {
        let _off = MemoGuard::set(false);
        digest_all()
    };
    let _on = MemoGuard::set(true);
    assert_eq!(digest_all(), cold, "first warm pass fills the shape cache");
    assert_eq!(digest_all(), cold, "second warm pass hits the shape cache");
    memo::reclaim_all();
    assert_eq!(digest_all(), cold, "reclaim never changes analysis results");
    memo::invalidate_all();
    assert_eq!(digest_all(), cold, "invalidation never changes results");
}

#[test]
fn eviction_and_invalidation_under_pressure_never_change_results() {
    let _serial = FLAG_LOCK.lock().unwrap();
    let cold = {
        let _off = MemoGuard::set(false);
        device_digest(42, 7)
    };
    let _on = MemoGuard::set(true);
    // Warm the caches, then interleave the daemon's pressure responses
    // (reclaim halves every shard; invalidate buries every generation)
    // between and with repeated runs: every single run must still
    // reproduce the cold digest.
    for round in 0..4 {
        assert_eq!(
            device_digest(42, 7),
            cold,
            "round {round}: warm run diverged before reclaim"
        );
        match round % 3 {
            0 => {
                memo::reclaim_all();
            }
            1 => memo::invalidate_all(),
            _ => {
                memo::reclaim_all();
                memo::invalidate_all();
            }
        }
        assert_eq!(
            device_digest(42, 7),
            cold,
            "round {round}: warm run diverged after reclaim/invalidate"
        );
    }
}
