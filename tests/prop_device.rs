//! Device-level property tests: random interaction scripts against the
//! whole stack, checking the invariants the paper's design promises.

use droidsim_app::SimpleApp;
use droidsim_config::{Locale, UiMode};
use droidsim_device::{Device, HandlingMode};
use droidsim_kernel::SimDuration;
use droidsim_view::ViewOp;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Rotate,
    WmSize(u32, u32),
    SwitchLocale(bool),
    ToggleDarkMode,
    PressButton,
    Scroll(i32),
    Advance(u64),
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Rotate),
        (600u32..2200, 600u32..2200).prop_map(|(w, h)| Action::WmSize(w, h)),
        any::<bool>().prop_map(Action::SwitchLocale),
        Just(Action::ToggleDarkMode),
        Just(Action::PressButton),
        (-3000i32..3000).prop_map(Action::Scroll),
        (1u64..20).prop_map(Action::Advance),
    ]
}

fn run_script(mode: HandlingMode, script: &[Action]) -> Device {
    let mut d = Device::new(mode);
    let c = d
        .install_and_launch(Box::new(SimpleApp::with_views(4)), 40 << 20, 1.0)
        .expect("launch");
    for action in script {
        if d.is_crashed(&c) {
            break;
        }
        match action {
            Action::Rotate => {
                let _ = d.rotate();
            }
            Action::WmSize(w, h) => {
                let _ = d.wm_size(*w, *h);
            }
            Action::SwitchLocale(zh) => {
                let locale = if *zh {
                    Locale::zh_cn()
                } else {
                    Locale::en_us()
                };
                let next = d.configuration().with_locale(locale);
                let _ = d.change_configuration(next);
            }
            Action::ToggleDarkMode => {
                let mode = match d.configuration().ui_mode {
                    UiMode::Day => UiMode::Night,
                    UiMode::Night => UiMode::Day,
                };
                let next = d.configuration().with_ui_mode(mode);
                let _ = d.change_configuration(next);
            }
            Action::PressButton => {
                let _ = d.start_async_on_foreground(SimpleApp::with_views(4).button_task());
            }
            Action::Scroll(y) => {
                let _ = d.with_foreground_activity_mut(|a| {
                    let root = a.tree.find_by_id_name("root").unwrap();
                    let _ = a.tree.apply(root, ViewOp::ScrollTo(*y));
                });
            }
            Action::Advance(secs) => d.advance(SimDuration::from_secs(*secs)),
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rchdroid_never_crashes_under_any_script(
        script in proptest::collection::vec(arb_action(), 0..30)
    ) {
        let d = run_script(HandlingMode::rchdroid_default(), &script);
        prop_assert!(!d.is_crashed("com.bench/.Main"), "events: {:?}", d.events());
    }

    #[test]
    fn rchdroid_instance_bound_holds_under_any_script(
        script in proptest::collection::vec(arb_action(), 0..30)
    ) {
        let d = run_script(HandlingMode::rchdroid_default(), &script);
        let p = d.process("com.bench/.Main").unwrap();
        prop_assert!(p.thread().alive_instances().len() <= 2);
        prop_assert!(d.atms().shadow_records().len() <= 1);
        // Exactly one foreground instance, always.
        prop_assert!(p.foreground_activity().is_some());
    }

    #[test]
    fn memory_decomposes_exactly(
        script in proptest::collection::vec(arb_action(), 0..20)
    ) {
        let d = run_script(HandlingMode::rchdroid_default(), &script);
        let snapshot = d.memory_snapshot("com.bench/.Main").unwrap();
        let p = d.process("com.bench/.Main").unwrap();
        let heaps: u64 = p
            .thread()
            .alive_instances()
            .into_iter()
            .map(|id| p.thread().instance(id).unwrap().heap_bytes())
            .sum();
        prop_assert_eq!(snapshot.activities_bytes, heaps);
        prop_assert_eq!(snapshot.base_bytes, 40 << 20);
    }

    #[test]
    fn clock_is_monotone_and_events_ordered(
        script in proptest::collection::vec(arb_action(), 0..30)
    ) {
        let d = run_script(HandlingMode::rchdroid_default(), &script);
        let events = d.events();
        prop_assert!(events.windows(2).all(|w| w[0].at() <= w[1].at()));
        if let Some(last) = events.last() {
            prop_assert!(last.at() <= d.now());
        }
    }

    #[test]
    fn stock_mode_never_exceeds_one_instance(
        script in proptest::collection::vec(arb_action(), 0..30)
    ) {
        let d = run_script(HandlingMode::Android10, &script);
        if !d.is_crashed("com.bench/.Main") {
            let p = d.process("com.bench/.Main").unwrap();
            prop_assert!(p.thread().alive_instances().len() <= 1);
        }
    }

    #[test]
    fn same_script_same_outcome(
        script in proptest::collection::vec(arb_action(), 0..20)
    ) {
        let a = run_script(HandlingMode::rchdroid_default(), &script);
        let b = run_script(HandlingMode::rchdroid_default(), &script);
        prop_assert_eq!(a.now(), b.now());
        prop_assert_eq!(a.events().len(), b.events().len());
        prop_assert_eq!(
            a.memory_snapshot("com.bench/.Main").unwrap(),
            b.memory_snapshot("com.bench/.Main").unwrap()
        );
    }
}
