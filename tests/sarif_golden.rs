//! SARIF golden-file gate: `rchlint --format sarif` output over the
//! tp27 corpus is byte-for-byte stable. The golden file pins the exact
//! rendering — rule table, result ordering, message text, logical
//! locations — so any drift in the SARIF emitter, the diagnostic
//! renderers, or the corpus itself shows up as a one-line diff here
//! instead of silently breaking downstream code-review ingestion.
//!
//! Regenerate (after an *intentional* change) with:
//!
//! ```text
//! cargo run -q -p rch-experiments --bin rchlint -- \
//!     --corpus tp27 --format sarif --output tests/golden/rchlint_tp27.sarif
//! ```

use droidsim_analysis::{analyze_specs, Suppressions};
use droidsim_fleet::FleetConfig;
use rch_workloads::tp27_specs;

const GOLDEN: &str = include_str!("golden/rchlint_tp27.sarif");

#[test]
fn sarif_rendering_matches_the_golden_bytes_at_any_worker_count() {
    let specs = tp27_specs();
    for jobs in [1usize, 4] {
        let report = analyze_specs(&specs, &FleetConfig::new(jobs, 0), &Suppressions::none());
        assert_eq!(
            report.render_sarif(),
            GOLDEN,
            "SARIF drifted from tests/golden/rchlint_tp27.sarif at jobs={jobs}; \
             regenerate if the change is intentional"
        );
    }
}

#[test]
fn golden_file_is_wellformed_sarif() {
    assert!(
        GOLDEN.starts_with("{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\"")
    );
    assert!(GOLDEN.contains("\"version\": \"2.1.0\""));
    // All twelve rules are declared exactly once.
    for i in 1..=12 {
        let id = format!("{{\"id\":\"RCH{i:03}\"");
        assert_eq!(GOLDEN.matches(&id).count(), 1, "rule RCH{i:03}");
    }
    // Every result points into the rule table.
    assert_eq!(
        GOLDEN.matches("\"ruleId\"").count(),
        GOLDEN.matches("\"ruleIndex\"").count()
    );
}
