//! Property tests on the threshold GC (Algorithm 1).

use droidsim_kernel::{SimDuration, SimTime};
use proptest::prelude::*;
use rchdroid::{GcDecision, GcPolicy, ShadowAgeTracker};

fn tracker_with(entries: &[u64], policy: GcPolicy) -> ShadowAgeTracker {
    let mut t = ShadowAgeTracker::new(policy);
    for &e in entries {
        t.note_shadow_entry(SimTime::from_secs(e));
    }
    t
}

proptest! {
    #[test]
    fn collection_is_monotone_in_thresh_t(
        mut entries in proptest::collection::vec(0u64..500, 1..20),
        now in 500u64..1_000,
        small in 1u64..100,
        extra in 1u64..100,
    ) {
        entries.sort_unstable();
        let last = *entries.last().unwrap();
        let policy = |t: u64| GcPolicy {
            thresh_t: SimDuration::from_secs(t),
            thresh_f: 4,
            window: SimDuration::from_secs(60),
        };
        let decide = |t: u64| {
            tracker_with(&entries, policy(t))
                .evaluate(SimTime::from_secs(now), Some(SimTime::from_secs(last)))
        };
        // If the shadow survives at THRESH_T = small, it also survives at
        // any larger threshold (keeping is monotone in THRESH_T).
        if !decide(small).should_collect() {
            prop_assert!(!decide(small + extra).should_collect());
        }
    }

    #[test]
    fn collect_requires_both_conditions(
        entries in proptest::collection::vec(0u64..500, 1..20),
        now in 0u64..1_000,
    ) {
        let policy = GcPolicy::paper_default();
        let last = *entries.iter().max().unwrap();
        if now < last {
            return Ok(()); // evaluation before the last entry is vacuous
        }
        let mut tracker = tracker_with(&entries, policy);
        let frequency = tracker.frequency(SimTime::from_secs(now));
        let mut tracker = tracker_with(&entries, policy);
        let decision =
            tracker.evaluate(SimTime::from_secs(now), Some(SimTime::from_secs(last)));
        let age = now - last;
        match decision {
            GcDecision::Collect => {
                prop_assert!(age > 50, "age {age} must exceed THRESH_T");
                prop_assert!(frequency < 4, "frequency {frequency} must be below THRESH_F");
            }
            GcDecision::TooYoung { .. } => prop_assert!(age <= 50),
            GcDecision::TooFrequent { entries_in_window } => {
                prop_assert!(entries_in_window >= 4);
                prop_assert!(age > 50);
            }
            GcDecision::NothingToCollect => prop_assert!(false, "shadow was supplied"),
        }
    }

    #[test]
    fn frequency_counts_exactly_the_window(
        entries in proptest::collection::vec(0u64..300, 0..30),
        now in 0u64..400,
    ) {
        let policy = GcPolicy::paper_default(); // 60 s window
        let mut sorted = entries.clone();
        sorted.sort_unstable();
        let mut tracker = tracker_with(&sorted, policy);
        let measured = tracker.frequency(SimTime::from_secs(now));
        let expected = sorted
            .iter()
            .filter(|&&e| e <= now && now.saturating_sub(e) <= 60)
            // Entries in the future of `now` are still in the deque but
            // not expired; the tracker counts them too (they cannot exist
            // in a causal run).
            .count()
            + sorted.iter().filter(|&&e| e > now).count();
        prop_assert_eq!(measured as usize, expected);
    }

    #[test]
    fn no_shadow_is_never_collected(now in 0u64..10_000) {
        let mut tracker = ShadowAgeTracker::new(GcPolicy::paper_default());
        prop_assert_eq!(
            tracker.evaluate(SimTime::from_secs(now), None),
            GcDecision::NothingToCollect
        );
    }

    #[test]
    fn reset_forgets_history(entries in proptest::collection::vec(0u64..100, 0..20)) {
        let mut tracker = tracker_with(&entries, GcPolicy::paper_default());
        tracker.reset();
        prop_assert_eq!(tracker.frequency(SimTime::from_secs(100)), 0);
    }
}
