//! Property tests: view-tree structural invariants under random operation
//! sequences, and save/restore behaviour.

use droidsim_view::{ViewKind, ViewOp, ViewTree};
use proptest::prelude::*;

/// A random tree-building script: each step adds a view under one of the
/// already-created containers.
#[derive(Debug, Clone)]
enum BuildStep {
    Add {
        parent_choice: usize,
        kind: ViewKind,
        with_id: bool,
    },
    Remove {
        choice: usize,
    },
    Mutate {
        choice: usize,
        op: ViewOp,
    },
}

fn arb_kind() -> impl Strategy<Value = ViewKind> {
    prop_oneof![
        Just(ViewKind::TextView),
        Just(ViewKind::EditText),
        Just(ViewKind::Button),
        Just(ViewKind::ImageView),
        Just(ViewKind::ListView),
        Just(ViewKind::ScrollView),
        Just(ViewKind::ProgressBar),
        Just(ViewKind::LinearLayout),
        Just(ViewKind::FrameLayout),
    ]
}

fn arb_op() -> impl Strategy<Value = ViewOp> {
    prop_oneof![
        "[a-z ]{0,16}".prop_map(ViewOp::SetText),
        ("[a-z]{1,8}", 0u64..100_000).prop_map(|(n, b)| ViewOp::SetDrawable(n, b)),
        (0i32..100).prop_map(ViewOp::SetSelection),
        (0i32..50, any::<bool>()).prop_map(|(i, c)| ViewOp::SetItemChecked(i, c)),
        (-5_000i32..5_000).prop_map(ViewOp::ScrollTo),
        (0i32..100).prop_map(ViewOp::SetProgress),
        any::<bool>().prop_map(ViewOp::SetEnabled),
        any::<bool>().prop_map(ViewOp::SetVisible),
    ]
}

fn arb_step() -> impl Strategy<Value = BuildStep> {
    prop_oneof![
        (any::<usize>(), arb_kind(), any::<bool>()).prop_map(|(parent_choice, kind, with_id)| {
            BuildStep::Add {
                parent_choice,
                kind,
                with_id,
            }
        }),
        any::<usize>().prop_map(|choice| BuildStep::Remove { choice }),
        (any::<usize>(), arb_op()).prop_map(|(choice, op)| BuildStep::Mutate { choice, op }),
    ]
}

fn run_script(steps: &[BuildStep]) -> ViewTree {
    let mut tree = ViewTree::new();
    let mut next_id = 0usize;
    for step in steps {
        let ids = tree.iter_ids();
        match step {
            BuildStep::Add {
                parent_choice,
                kind,
                with_id,
            } => {
                let parent = ids[parent_choice % ids.len()];
                let id_name = with_id.then(|| {
                    next_id += 1;
                    format!("v{next_id}")
                });
                let _ = tree.add_view(parent, kind.clone(), id_name.as_deref());
            }
            BuildStep::Remove { choice } => {
                let target = ids[choice % ids.len()];
                let _ = tree.remove_view(target);
            }
            BuildStep::Mutate { choice, op } => {
                let target = ids[choice % ids.len()];
                let _ = tree.apply(target, op.clone());
            }
        }
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn structure_stays_consistent(steps in proptest::collection::vec(arb_step(), 0..60)) {
        let tree = run_script(&steps);
        let ids = tree.iter_ids();
        // The root is always alive and first in pre-order.
        prop_assert_eq!(ids[0], tree.root());
        // Every live view is reachable from the root exactly once.
        prop_assert_eq!(ids.len(), tree.view_count());
        // Parent/child links are symmetric.
        for id in &ids {
            let node = tree.view(*id).unwrap();
            for child in &node.children {
                prop_assert_eq!(tree.view(*child).unwrap().parent, Some(*id));
            }
            if let Some(parent) = node.parent {
                prop_assert!(tree.view(parent).unwrap().children.contains(id));
            }
        }
    }

    #[test]
    fn invalidations_reference_live_views(steps in proptest::collection::vec(arb_step(), 0..60)) {
        let mut tree = run_script(&steps);
        let live = tree.iter_ids();
        for inv in tree.drain_invalidations() {
            // An invalidation may reference a view that was since removed;
            // but if it is live it must resolve.
            if live.contains(&inv) {
                prop_assert!(tree.view(inv).is_ok());
            }
        }
    }

    #[test]
    fn save_restore_is_idempotent(steps in proptest::collection::vec(arb_step(), 0..60)) {
        let tree = run_script(&steps);
        let saved_once = tree.save_hierarchy_state();
        let mut copy = tree.clone();
        copy.restore_hierarchy_state(&saved_once);
        let saved_twice = copy.save_hierarchy_state();
        // Restoring a tree's own saved state then saving again yields the
        // same bundle (fixpoint).
        prop_assert_eq!(saved_once, saved_twice);
    }

    #[test]
    fn released_trees_reject_everything(steps in proptest::collection::vec(arb_step(), 0..30)) {
        let mut tree = run_script(&steps);
        let ids = tree.iter_ids();
        tree.release();
        for id in ids {
            prop_assert!(tree.view(id).is_err());
            prop_assert!(tree.apply(id, ViewOp::SetVisible(false)).is_err());
        }
    }

    #[test]
    fn heap_accounting_never_underflows(steps in proptest::collection::vec(arb_step(), 0..60)) {
        let tree = run_script(&steps);
        // decor view alone is > 0.
        prop_assert!(tree.heap_bytes() >= 512);
    }
}
