//! Property tests: ATMS invariants under random intent streams.

use droidsim_atms::{Atms, Intent, IntentFlags, StartDisposition};
use droidsim_config::Configuration;
use droidsim_kernel::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum AtmsAction {
    Start { app: u8, activity: u8, flags: u8 },
    SunnyStart,
    DestroyForeground,
    UpdateConfig(bool),
}

fn arb_action() -> impl Strategy<Value = AtmsAction> {
    prop_oneof![
        (0u8..3, 0u8..3, 0u8..4).prop_map(|(app, activity, flags)| AtmsAction::Start {
            app,
            activity,
            flags
        }),
        Just(AtmsAction::SunnyStart),
        Just(AtmsAction::DestroyForeground),
        any::<bool>().prop_map(AtmsAction::UpdateConfig),
    ]
}

fn flags_of(code: u8) -> IntentFlags {
    match code {
        0 => IntentFlags::NONE,
        1 => IntentFlags::NEW_TASK,
        2 => IntentFlags::SINGLE_TOP,
        _ => IntentFlags::CLEAR_TOP,
    }
}

fn run_script(script: &[AtmsAction]) -> Atms {
    let mut atms = Atms::new(Configuration::phone_portrait());
    let mut clock = 0u64;
    for action in script {
        clock += 1;
        let now = SimTime::from_secs(clock);
        match action {
            AtmsAction::Start {
                app,
                activity,
                flags,
            } => {
                let component = format!("com.app{app}/.Activity{activity}");
                atms.start_activity_at(&Intent::new(&component).with_flags(flags_of(*flags)), now);
            }
            AtmsAction::SunnyStart => {
                if let Some(record) = atms.foreground_record() {
                    let component = atms.record(record).unwrap().component().to_owned();
                    let res = atms.start_activity_at(&Intent::sunny(&component), now);
                    // A SUNNY start never silently no-ops.
                    assert_ne!(res.disposition, StartDisposition::ReusedTop);
                }
            }
            AtmsAction::DestroyForeground => {
                if let Some(record) = atms.foreground_record() {
                    // §3.5's protocol, enforced by the layer above the raw
                    // ATMS: terminating the foreground activity releases
                    // its coupled shadow first. (Without this step the
                    // shadow record would surface as the new top — a state
                    // this suite's own exploration uncovered.)
                    let task = atms.stack().top_task().expect("foreground implies a task");
                    let shadow = task.find_shadow_activity(|id| atms.record(id));
                    if let Some(shadow) = shadow {
                        atms.destroy_record(shadow).unwrap();
                    }
                    atms.destroy_record(record).unwrap();
                }
            }
            AtmsAction::UpdateConfig(rotate) => {
                let next = if *rotate {
                    atms.global_config().rotated()
                } else {
                    atms.global_config().clone()
                };
                atms.update_global_config(next);
            }
        }
    }
    atms
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stack_structure_stays_consistent(script in proptest::collection::vec(arb_action(), 0..50)) {
        let atms = run_script(&script);
        // Every task is non-empty and contains only alive records.
        for task in atms.stack().tasks() {
            prop_assert!(!task.is_empty(), "empty tasks are removed");
            for &record in task.records() {
                let r = atms.record(record).expect("records in tasks exist");
                prop_assert!(r.is_alive(), "destroyed records leave the stack");
                // Records live in the task matching their affinity.
                let affinity = r.component().split('/').next().unwrap();
                prop_assert_eq!(&task.affinity, affinity);
            }
        }
    }

    #[test]
    fn foreground_is_top_of_top_task(script in proptest::collection::vec(arb_action(), 0..50)) {
        let atms = run_script(&script);
        match (atms.foreground_record(), atms.stack().top_task()) {
            (Some(record), Some(task)) => prop_assert_eq!(Some(record), task.top()),
            (None, None) => {}
            (fore, task) => prop_assert!(
                false,
                "foreground {:?} inconsistent with top task {:?}",
                fore,
                task.map(droidsim_atms::TaskRecord::id)
            ),
        }
    }

    #[test]
    fn each_record_appears_in_exactly_one_task(
        script in proptest::collection::vec(arb_action(), 0..50)
    ) {
        let atms = run_script(&script);
        let mut seen = std::collections::HashSet::new();
        for task in atms.stack().tasks() {
            for &record in task.records() {
                prop_assert!(seen.insert(record), "{record} appears twice");
            }
        }
    }

    #[test]
    fn shadow_records_never_top_unless_alone(
        script in proptest::collection::vec(arb_action(), 0..50)
    ) {
        // A shadow record can only be below its sunny partner; the
        // foreground record itself is never in the shadow state.
        let atms = run_script(&script);
        if let Some(record) = atms.foreground_record() {
            prop_assert!(!atms.record(record).unwrap().is_shadow());
        }
    }

    #[test]
    fn at_most_one_shadow_per_task(script in proptest::collection::vec(arb_action(), 0..50)) {
        let atms = run_script(&script);
        for task in atms.stack().tasks() {
            let shadows = task
                .records()
                .iter()
                .filter(|&&r| atms.record(r).is_some_and(droidsim_atms::ActivityRecord::is_shadow))
                .count();
            prop_assert!(shadows <= 1, "task {} has {shadows} shadows", task.id());
        }
    }
}
