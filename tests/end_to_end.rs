//! End-to-end integration tests spanning the whole stack: device, ATMS,
//! activity thread, RCHDroid handler, workloads and cost model.

use droidsim_app::SimpleApp;
use droidsim_device::{Device, DeviceEvent, HandlingMode, HandlingPath};
use droidsim_kernel::SimDuration;
use droidsim_view::ViewOp;
use rch_workloads::{tp27_specs, StateMechanism};

fn bench_device(mode: HandlingMode, views: usize) -> (Device, String) {
    let mut device = Device::new(mode);
    let component = device
        .install_and_launch(Box::new(SimpleApp::with_views(views)), 40 << 20, 1.0)
        .expect("launch");
    (device, component)
}

#[test]
fn identical_runs_are_bit_identical() {
    // The whole simulator is deterministic: two identical scripted runs
    // produce identical event logs and final memory.
    let run = || {
        let (mut d, c) = bench_device(HandlingMode::rchdroid_default(), 8);
        d.start_async_on_foreground(SimpleApp::with_views(8).button_task())
            .unwrap();
        for _ in 0..3 {
            d.rotate().unwrap();
            d.advance(SimDuration::from_secs(3));
        }
        d.advance(SimDuration::from_secs(10));
        let events = format!("{:?}", d.events());
        let memory = d.memory_snapshot(&c).unwrap().total_bytes();
        (events, memory, d.now())
    };
    assert_eq!(run(), run());
}

#[test]
fn rchdroid_never_exceeds_two_instances_and_one_shadow() {
    let (mut d, c) = bench_device(HandlingMode::rchdroid_default(), 4);
    for i in 0..20 {
        d.rotate().unwrap();
        d.advance(SimDuration::from_secs(1));
        let p = d.process(&c).unwrap();
        assert!(p.thread().alive_instances().len() <= 2, "iteration {i}");
        assert!(d.atms().shadow_records().len() <= 1, "iteration {i}");
    }
}

#[test]
fn stock_mode_keeps_exactly_one_instance() {
    let (mut d, c) = bench_device(HandlingMode::Android10, 4);
    for _ in 0..10 {
        d.rotate().unwrap();
        assert_eq!(d.process(&c).unwrap().thread().alive_instances().len(), 1);
    }
}

#[test]
fn flip_latency_is_independent_of_change_count() {
    let (mut d, c) = bench_device(HandlingMode::rchdroid_default(), 16);
    let mut flips = Vec::new();
    for _ in 0..12 {
        let report = d.rotate().unwrap();
        if report.path == HandlingPath::RchFlip {
            flips.push(report.latency);
        }
        d.advance(SimDuration::from_secs(1));
    }
    assert!(flips.len() >= 10);
    assert!(
        flips.windows(2).all(|w| w[0] == w[1]),
        "flips are constant-cost"
    );
    let _ = c;
}

#[test]
fn async_work_survives_arbitrary_rotation_counts_under_rchdroid() {
    for rotations in 1..=5 {
        let (mut d, c) = bench_device(HandlingMode::rchdroid_default(), 3);
        d.start_async_on_foreground(SimpleApp::with_views(3).button_task())
            .unwrap();
        for _ in 0..rotations {
            d.rotate().unwrap();
        }
        d.advance(SimDuration::from_secs(8));
        assert!(!d.is_crashed(&c), "{rotations} rotations");
        // The images always end up loaded on whatever instance is in the
        // foreground.
        let p = d.process(&c).unwrap();
        let fg = p.foreground_activity().expect("foreground alive");
        let img = fg.tree.find_by_id_name("image_0").unwrap();
        assert_eq!(
            fg.tree
                .view(img)
                .unwrap()
                .attrs
                .drawable
                .as_ref()
                .unwrap()
                .0,
            "loaded_0.png",
            "{rotations} rotations"
        );
    }
}

#[test]
fn stock_crash_requires_an_inflight_task() {
    // No async task → rotation alone never crashes stock Android.
    let (mut d, c) = bench_device(HandlingMode::Android10, 4);
    for _ in 0..5 {
        d.rotate().unwrap();
        d.advance(SimDuration::from_secs(2));
    }
    assert!(!d.is_crashed(&c));
}

#[test]
fn gc_then_new_change_pays_init_cost_again() {
    let (mut d, _) = bench_device(HandlingMode::rchdroid_default(), 4);
    let first = d.rotate().unwrap();
    assert_eq!(first.path, HandlingPath::RchInit);
    // Wait past THRESH_T with an empty frequency window → GC collects.
    d.advance(SimDuration::from_secs(120));
    let after_gc = d.rotate().unwrap();
    assert_eq!(after_gc.path, HandlingPath::RchInit, "shadow was reclaimed");
    assert_eq!(after_gc.latency, first.latency, "same init cost");
}

#[test]
fn every_tp27_mechanism_behaves_as_designed_end_to_end() {
    // Drive each app through a single change under all three systems and
    // check the mechanism table's predictions hold in the full simulation.
    use rch_experiments::{run_app, RunConfig};
    for spec in tp27_specs().iter().take(12) {
        let lossy = spec.state_items[0].mechanism;
        let stock = run_app(spec, &RunConfig::new(HandlingMode::Android10).changes(1));
        let rch = run_app(
            spec,
            &RunConfig::new(HandlingMode::rchdroid_default()).changes(1),
        );
        let rtd = run_app(spec, &RunConfig::new(HandlingMode::RuntimeDroid).changes(1));
        assert!(
            stock.issue_observed(),
            "{}: stock must show the issue",
            spec.name
        );
        assert_eq!(
            !rch.issue_observed(),
            lossy.fixed_by_rchdroid(),
            "{}: RCHDroid prediction",
            spec.name
        );
        if !spec.uses_async_task {
            assert_eq!(
                !rtd.issue_observed(),
                lossy.fixed_by_runtimedroid(),
                "{}: RuntimeDroid prediction",
                spec.name
            );
        }
    }
}

#[test]
fn self_handled_change_is_in_place_in_every_mode() {
    use droidsim_config::ConfigChanges;
    for mode in [HandlingMode::Android10, HandlingMode::rchdroid_default()] {
        let mut d = Device::new(mode);
        let app = SimpleApp::builder(4).handles(ConfigChanges::ALL).build();
        let c = d.install_and_launch(Box::new(app), 40 << 20, 1.0).unwrap();
        let report = d.rotate().unwrap();
        assert_eq!(report.path, HandlingPath::HandledByApp, "{mode:?}");
        assert_eq!(d.process(&c).unwrap().thread().alive_instances().len(), 1);
    }
}

#[test]
fn scroll_state_round_trips_through_both_restart_and_rchdroid() {
    for mode in [HandlingMode::Android10, HandlingMode::rchdroid_default()] {
        let (mut d, _) = bench_device(mode, 4);
        d.with_foreground_activity_mut(|a| {
            let root = a.tree.find_by_id_name("root").unwrap();
            a.tree.apply(root, ViewOp::ScrollTo(1234)).unwrap();
        })
        .unwrap();
        d.rotate().unwrap();
        let scroll = d
            .with_foreground_activity_mut(|a| {
                let root = a.tree.find_by_id_name("root").unwrap();
                a.tree.view(root).unwrap().attrs.scroll_y
            })
            .unwrap();
        // Framework-view user state survives under BOTH systems — that is
        // not what distinguishes them.
        assert_eq!(scroll, 1234, "{mode:?}");
    }
}

#[test]
fn event_log_is_ordered_and_complete() {
    let (mut d, c) = bench_device(HandlingMode::rchdroid_default(), 4);
    d.start_async_on_foreground(SimpleApp::with_views(4).button_task())
        .unwrap();
    d.rotate().unwrap();
    d.advance(SimDuration::from_secs(8));
    let events = d.events();
    assert!(
        events.windows(2).all(|w| w[0].at() <= w[1].at()),
        "monotone timestamps"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, DeviceEvent::AppLaunched { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, DeviceEvent::ConfigChange { .. })));
    assert!(events.iter().any(|e| matches!(
        e,
        DeviceEvent::AsyncDelivered {
            migration_latency: Some(_),
            ..
        }
    )));
    let _ = c;
}

#[test]
fn member_unsaved_state_lost_under_rchdroid_but_kept_by_runtimedroid() {
    use rch_experiments::{run_app, RunConfig};
    let spec = tp27_specs()
        .into_iter()
        .find(|s| s.state_items[0].mechanism == StateMechanism::MemberUnsaved)
        .expect("DiskDiggerPro");
    let rch = run_app(
        &spec,
        &RunConfig::new(HandlingMode::rchdroid_default()).changes(1),
    );
    assert!(
        rch.issue_observed(),
        "RCHDroid cannot restore unsaved fields"
    );
    let rtd = run_app(
        &spec,
        &RunConfig::new(HandlingMode::RuntimeDroid).changes(1),
    );
    assert!(rtd.crashed || !rtd.issue_observed() || spec.uses_async_task);
}
