//! Property test for the static analysis layer: over randomly
//! generated app specs, `droidsim_analysis::predict` must agree with
//! the dynamic §6 detection oracle **field by field** — crash verdict
//! and all three lost/latent key lists — under both stock Android and
//! RCHDroid handling. This is the same contract the differential gate
//! enforces for the fixed corpora, extended to the whole spec space
//! the generators can reach (every state mechanism × self-handling ×
//! state-saving × async-task combination).

use droidsim_analysis::{analyze_app, predict, AnalysisMode, AppShape};
use droidsim_device::HandlingMode;
use proptest::prelude::*;
use rch_experiments::detector;
use rch_workloads::{GenericAppSpec, StateItem, StateMechanism};

/// Key pool, disjoint from the generic layout's fixed id names
/// (`root`, `content_*`, `async_target`, `decor`) and unique per item.
const KEYS: [&str; 3] = ["alpha_state", "beta_state", "gamma_state"];

fn arb_mechanism() -> impl Strategy<Value = StateMechanism> {
    prop_oneof![
        Just(StateMechanism::FrameworkView),
        Just(StateMechanism::CustomViewNoSave),
        Just(StateMechanism::DynamicViewNoSave),
        Just(StateMechanism::MemberSaved),
        Just(StateMechanism::MemberUnsaved),
    ]
}

/// A spec with 0–3 uniquely keyed state items and arbitrary
/// handling/saving/async flags. The `issue` field is irrelevant here:
/// both the static verdict and the dynamic oracle derive everything
/// from the mechanics, never from the paper's label.
fn arb_spec() -> impl Strategy<Value = GenericAppSpec> {
    (
        proptest::collection::vec(arb_mechanism(), 0..4),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(mechanisms, handles, saves, uses_async)| {
            let mut spec = GenericAppSpec::sized("PropVerdictApp", "1K+", false);
            spec.handles_changes = handles;
            spec.saves_instance_state = saves;
            spec.uses_async_task = uses_async;
            for (i, mechanism) in mechanisms.into_iter().enumerate() {
                spec.state_items
                    .push(StateItem::new(KEYS[i], mechanism, "typed-by-user"));
            }
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn static_verdict_equals_dynamic_oracle(spec in arb_spec()) {
        for (mode, dynamic) in [
            (AnalysisMode::Stock, HandlingMode::Android10),
            (AnalysisMode::RchDroid, HandlingMode::rchdroid_default()),
        ] {
            let verdict = predict(&spec, mode);
            let observed = detector::check(&spec, dynamic);
            prop_assert_eq!(
                verdict.crashed, observed.crashed,
                "crash verdict diverged under {} for {:?}", mode.label(), spec
            );
            prop_assert_eq!(
                &verdict.lost_after_one, &observed.lost_after_one,
                "lost-after-one diverged under {} for {:?}", mode.label(), spec
            );
            prop_assert_eq!(
                &verdict.lost_after_two, &observed.lost_after_two,
                "lost-after-two diverged under {} for {:?}", mode.label(), spec
            );
            prop_assert_eq!(
                &verdict.latent_after_two, &observed.latent_after_two,
                "latent-after-two diverged under {} for {:?}", mode.label(), spec
            );
            prop_assert_eq!(
                verdict.has_issue(), observed.has_issue(),
                "issue verdict diverged under {} for {:?}", mode.label(), spec
            );
        }
    }

    #[test]
    fn diagnostics_fire_iff_some_mode_has_an_issue(spec in arb_spec()) {
        // The lint passes must flag exactly the apps whose mechanics can
        // lose state (or that carry a latent hazard the passes warn on):
        // an app that is verdict-clean in both modes, has no async task,
        // and no self-handling conflict must produce zero diagnostics.
        let shape = AppShape::from_spec(&spec);
        let diagnostics = analyze_app(&shape, Some(&spec));
        let stock = predict(&spec, AnalysisMode::Stock);
        let rch = predict(&spec, AnalysisMode::RchDroid);
        let self_handling_conflict = spec.handles_changes
            && spec.state_items.iter().any(|i| {
                !(i.mechanism.survives_stock_restart()
                    && (i.mechanism.is_view_held() || spec.saves_instance_state))
            });
        let hazardous = stock.has_issue()
            || rch.has_issue()
            || (spec.uses_async_task && !spec.handles_changes)
            || self_handling_conflict;
        prop_assert_eq!(
            !diagnostics.is_empty(),
            hazardous,
            "diagnostics {:?} vs hazard analysis for {:?}",
            diagnostics,
            spec
        );
    }
}
