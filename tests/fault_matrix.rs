//! The fault matrix: deterministic injection at every site, across
//! several seeds, under both flush policies. The contract under test is
//! the degradation ladder's guarantee — **no injected fault ever escapes
//! as a panic**; each one is either contained per view, absorbed by a
//! fallback restart, or (for organic app bugs only) surfaces as a marked
//! process crash.
//!
//! CI runs this suite once per seed via the `FAULT_SEED` environment
//! variable (the `fault-matrix` job); without it, every built-in seed
//! runs in one pass.

use droidsim_app::SimpleApp;
use droidsim_device::{Device, DeviceEvent, HandlingMode};
use droidsim_faults::{FaultPlan, FaultSite};
use droidsim_kernel::SimDuration;
use rchdroid::{FlushPolicy, GcPolicy, RchOptions};

/// Seeds exercised when `FAULT_SEED` is unset.
const DEFAULT_SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 13];

fn seeds() -> Vec<u64> {
    match std::env::var("FAULT_SEED") {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("FAULT_SEED is comma-separated u64s")
            })
            .collect(),
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

fn modes() -> [HandlingMode; 2] {
    [
        HandlingMode::rchdroid_default(),
        HandlingMode::rchdroid_ablated(RchOptions {
            flush_policy: FlushPolicy::batched(64, SimDuration::from_millis(16)),
            ..RchOptions::default()
        }),
    ]
}

/// One scripted scenario that reaches every probe site: an async task in
/// flight across a change (flush sites + callback site), the change
/// itself (bundle + allocation sites), and a follow-up change.
fn run_scenario(mode: HandlingMode, plan: FaultPlan) -> (Device, String) {
    let mut d = Device::new(mode);
    let c = d
        .install_and_launch(Box::new(SimpleApp::with_views(4)), 40 << 20, 1.0)
        .unwrap();
    d.arm_faults(&c, plan).unwrap();
    d.start_async_on_foreground(SimpleApp::with_views(4).button_task())
        .unwrap();
    let _ = d.rotate();
    d.advance(SimDuration::from_secs(6));
    if !d.is_crashed(&c) {
        let _ = d.rotate();
        d.advance(SimDuration::from_secs(1));
    }
    (d, c)
}

#[test]
fn every_forced_site_is_absorbed_by_the_ladder() {
    for seed in seeds() {
        for mode in modes() {
            for site in FaultSite::ALL {
                let plan = FaultPlan::seeded(seed).on_nth_probe(site, 1);
                let (d, c) = run_scenario(mode, plan);
                let m = d.fault_metrics(&c).unwrap();
                assert!(
                    m.total_faults() >= 1,
                    "seed {seed} {mode:?}: {site} never injected"
                );
                assert!(
                    m.site_count(site.name()) >= 1,
                    "seed {seed} {mode:?}: {site} absorbed under the wrong site"
                );
                assert!(
                    !d.is_crashed(&c),
                    "seed {seed} {mode:?}: {site} escalated to a crash"
                );
                assert_eq!(
                    m.crashes, 0,
                    "seed {seed} {mode:?}: {site} recorded a rung-3 escalation"
                );
                // The device stays usable after absorption.
                assert!(d.foreground_component().is_some());
            }
        }
    }
}

#[test]
fn rate_injection_never_escapes_a_panic() {
    // 50 % at every site is far past any realistic fault load; the
    // guarantee is that the scripted run completes (any escaped panic
    // fails this test by unwinding) and the books balance.
    for seed in seeds() {
        for mode in modes() {
            let plan = FaultPlan::seeded(seed).with_rate_everywhere(0.5);
            let (d, c) = run_scenario(mode, plan);
            let m = d.fault_metrics(&c).unwrap();
            assert_eq!(
                m.total_faults(),
                m.contained_per_view + m.fallback_restarts + m.crashes,
                "seed {seed} {mode:?}: fault ledger out of balance"
            );
            assert_eq!(
                m.crashes, 0,
                "seed {seed} {mode:?}: injected faults must not reach rung 3"
            );
            // Every absorbed fault names its site and rung in the log.
            for e in d.events() {
                if let DeviceEvent::Fault { site, rung, .. } = e {
                    assert!(!site.is_empty());
                    assert!(
                        rung == "contained-per-view" || rung == "fallback-restart",
                        "unexpected rung {rung} for {site}"
                    );
                }
            }
            let _ = c;
        }
    }
}

#[test]
fn disarmed_plan_changes_nothing() {
    for mode in modes() {
        let (d, c) = run_scenario(mode, FaultPlan::disarmed());
        assert!(!d.is_crashed(&c));
        let m = d.fault_metrics(&c).unwrap();
        assert_eq!(m.total_faults(), 0);
        assert!(!d
            .events()
            .iter()
            .any(|e| matches!(e, DeviceEvent::Fault { .. })));
    }
}

#[test]
fn forced_and_rate_runs_are_deterministic_per_seed() {
    let fingerprint = |seed: u64| {
        let plan = FaultPlan::seeded(seed).with_rate_everywhere(0.2);
        let (d, c) = run_scenario(HandlingMode::rchdroid_default(), plan);
        let m = d.fault_metrics(&c).unwrap();
        (
            m.total_faults(),
            m.contained_per_view,
            m.fallback_restarts,
            m.by_site().clone(),
            d.events().len(),
        )
    };
    for seed in seeds() {
        assert_eq!(fingerprint(seed), fingerprint(seed), "seed {seed}");
    }
}

/// The paper's GC must keep working under injected faults: a fallback
/// clears the coupling, so a later idle period has nothing to collect
/// and the device keeps running.
#[test]
fn gc_and_fallback_interleave_cleanly() {
    let policy = GcPolicy::paper_default();
    let mut d = Device::new(HandlingMode::rchdroid_with_policy(policy));
    let c = d
        .install_and_launch(Box::new(SimpleApp::with_views(3)), 40 << 20, 1.0)
        .unwrap();
    d.arm_faults(
        &c,
        FaultPlan::seeded(21).on_nth_probe(FaultSite::BundleCorruption, 1),
    )
    .unwrap();
    let _ = d.rotate(); // fallback: single stock instance remains
    d.advance(SimDuration::from_secs(70)); // GC interval passes harmlessly
    assert!(!d.is_crashed(&c));
    assert_eq!(d.process(&c).unwrap().thread().alive_instances().len(), 1);
    let _ = d.rotate(); // protocol restarts
    d.advance(SimDuration::from_secs(70)); // now a real shadow gets collected
    assert_eq!(d.process(&c).unwrap().thread().alive_instances().len(), 1);
}
