//! The fault matrix: deterministic injection at every site, across
//! several seeds, under both flush policies. The contract under test is
//! the degradation ladder's guarantee — **no injected fault ever escapes
//! as a panic**; each one is either contained per view, absorbed by a
//! fallback restart, or (for organic app bugs only) surfaces as a marked
//! process crash.
//!
//! CI runs this suite once per seed via the `FAULT_SEED` environment
//! variable (the `fault-matrix` job); without it, every built-in seed
//! runs in one pass.

use droidsim_app::SimpleApp;
use droidsim_device::{Device, DeviceEvent, HandlingMode};
use droidsim_faults::{FaultPlan, FaultSite};
use droidsim_fleet::{run_fleet_supervised, Digest, FleetConfig, FleetOptions};
use droidsim_kernel::SimDuration;
use rchdroid::{FlushPolicy, GcPolicy, RchOptions};

/// The matrix loops fan out across the fleet (`DROIDSIM_JOBS`, default
/// all cores); each cell simulates on its own `Device` and returns only
/// plain data, so outcomes are identical for any worker count.
fn fleet() -> FleetConfig {
    FleetConfig::from_env(None, 0)
}

/// Seeds exercised when `FAULT_SEED` is unset.
const DEFAULT_SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 13];

fn seeds() -> Vec<u64> {
    match std::env::var("FAULT_SEED") {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("FAULT_SEED is comma-separated u64s")
            })
            .collect(),
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

fn modes() -> [HandlingMode; 2] {
    [
        HandlingMode::rchdroid_default(),
        HandlingMode::rchdroid_ablated(RchOptions {
            flush_policy: FlushPolicy::batched(64, SimDuration::from_millis(16)),
            ..RchOptions::default()
        }),
    ]
}

/// One scripted scenario that reaches every probe site: an async task in
/// flight across a change (flush sites + callback site), the change
/// itself (bundle + allocation sites), and a follow-up change.
fn run_scenario(mode: HandlingMode, plan: FaultPlan) -> (Device, String) {
    let mut d = Device::new(mode);
    let c = d
        .install_and_launch(Box::new(SimpleApp::with_views(4)), 40 << 20, 1.0)
        .unwrap();
    d.arm_faults(&c, plan).unwrap();
    d.start_async_on_foreground(SimpleApp::with_views(4).button_task())
        .unwrap();
    let _ = d.rotate();
    d.advance(SimDuration::from_secs(6));
    if !d.is_crashed(&c) {
        let _ = d.rotate();
        d.advance(SimDuration::from_secs(1));
    }
    (d, c)
}

/// What one matrix cell observed; `Device` itself stays inside the
/// fleet task (app models are not `Send`), only this crosses threads.
#[derive(Clone)]
struct CellOutcome {
    label: String,
    injected: u64,
    at_site: u64,
    crashed: bool,
    rung3: u64,
    has_foreground: bool,
}

impl CellOutcome {
    /// What a journaled matrix run records per cell.
    fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_str(&self.label);
        d.write_u64(self.injected);
        d.write_u64(self.at_site);
        d.write_u64(u64::from(self.crashed));
        d.write_u64(self.rung3);
        d.write_u64(u64::from(self.has_foreground));
        d.finish()
    }
}

#[test]
fn every_forced_site_is_absorbed_by_the_ladder() {
    let mut cells = Vec::new();
    for seed in seeds() {
        for mode in modes() {
            for site in FaultSite::ALL {
                cells.push((seed, mode, site));
            }
        }
    }
    // The matrix runs under the supervised fleet: a cell whose scenario
    // panics is quarantined and reported with a repro line instead of
    // tearing down every other cell of the matrix.
    let run = run_fleet_supervised(
        &fleet(),
        &FleetOptions::new(),
        cells,
        |_ctx, (seed, mode, site)| {
            let plan = FaultPlan::seeded(seed).on_nth_probe(site, 1);
            let (d, c) = run_scenario(mode, plan);
            let m = d.fault_metrics(&c).unwrap();
            CellOutcome {
                label: format!("seed {seed} {mode:?}: {site}"),
                injected: m.total_faults(),
                at_site: m.site_count(site.name()),
                crashed: d.is_crashed(&c),
                rung3: m.crashes,
                has_foreground: d.foreground_component().is_some(),
            }
        },
        CellOutcome::digest,
    )
    .unwrap();
    assert!(run.report.is_clean(), "{}", run.report.render());
    let outcomes: Vec<CellOutcome> = run
        .outcomes
        .iter()
        .map(|o| o.ok().cloned().unwrap())
        .collect();
    for o in outcomes {
        assert!(o.injected >= 1, "{} never injected", o.label);
        assert!(o.at_site >= 1, "{} absorbed under the wrong site", o.label);
        assert!(!o.crashed, "{} escalated to a crash", o.label);
        assert_eq!(o.rung3, 0, "{} recorded a rung-3 escalation", o.label);
        // The device stays usable after absorption.
        assert!(o.has_foreground, "{} lost its foreground", o.label);
    }
}

#[test]
fn rate_injection_never_escapes_a_panic() {
    // 50 % at every site is far past any realistic fault load; the
    // guarantee is that the scripted run completes (an escaped panic
    // quarantines its cell, which `is_clean` rejects) and the books
    // balance. Event inspection happens inside the task — only
    // violations cross back.
    let mut cells = Vec::new();
    for seed in seeds() {
        for mode in modes() {
            cells.push((seed, mode));
        }
    }
    let run = run_fleet_supervised(
        &fleet(),
        &FleetOptions::new(),
        cells,
        |_ctx, (seed, mode)| {
            let plan = FaultPlan::seeded(seed).with_rate_everywhere(0.5);
            let (d, c) = run_scenario(mode, plan);
            let m = d.fault_metrics(&c).unwrap();
            let mut bad = Vec::new();
            if m.total_faults() != m.contained_per_view + m.fallback_restarts + m.crashes {
                bad.push(format!("seed {seed} {mode:?}: fault ledger out of balance"));
            }
            if m.crashes != 0 {
                bad.push(format!(
                    "seed {seed} {mode:?}: injected faults must not reach rung 3"
                ));
            }
            // Every absorbed fault names its site and rung in the log.
            for e in d.events() {
                if let DeviceEvent::Fault { site, rung, .. } = e {
                    if site.is_empty()
                        || (rung != "contained-per-view" && rung != "fallback-restart")
                    {
                        bad.push(format!(
                            "seed {seed} {mode:?}: unexpected rung {rung} for {site}"
                        ));
                    }
                }
            }
            bad
        },
        |bad| {
            let mut d = Digest::new();
            for line in bad {
                d.write_str(line);
            }
            d.finish()
        },
    )
    .unwrap();
    assert!(run.report.is_clean(), "{}", run.report.render());
    let violations: Vec<String> = run
        .outcomes
        .iter()
        .flat_map(|o| o.ok().cloned().unwrap())
        .collect();
    assert!(violations.is_empty(), "{}", violations.join("\n"));
}

#[test]
fn disarmed_plan_changes_nothing() {
    for mode in modes() {
        let (d, c) = run_scenario(mode, FaultPlan::disarmed());
        assert!(!d.is_crashed(&c));
        let m = d.fault_metrics(&c).unwrap();
        assert_eq!(m.total_faults(), 0);
        assert!(!d
            .events()
            .iter()
            .any(|e| matches!(e, DeviceEvent::Fault { .. })));
    }
}

#[test]
fn forced_and_rate_runs_are_deterministic_per_seed() {
    let fingerprint = |seed: u64| {
        let plan = FaultPlan::seeded(seed).with_rate_everywhere(0.2);
        let (d, c) = run_scenario(HandlingMode::rchdroid_default(), plan);
        let m = d.fault_metrics(&c).unwrap();
        (
            m.total_faults(),
            m.contained_per_view,
            m.fallback_restarts,
            m.by_site().clone(),
            d.events().len(),
        )
    };
    for seed in seeds() {
        assert_eq!(fingerprint(seed), fingerprint(seed), "seed {seed}");
    }
}

/// The paper's GC must keep working under injected faults: a fallback
/// clears the coupling, so a later idle period has nothing to collect
/// and the device keeps running.
#[test]
fn gc_and_fallback_interleave_cleanly() {
    let policy = GcPolicy::paper_default();
    let mut d = Device::new(HandlingMode::rchdroid_with_policy(policy));
    let c = d
        .install_and_launch(Box::new(SimpleApp::with_views(3)), 40 << 20, 1.0)
        .unwrap();
    d.arm_faults(
        &c,
        FaultPlan::seeded(21).on_nth_probe(FaultSite::BundleCorruption, 1),
    )
    .unwrap();
    let _ = d.rotate(); // fallback: single stock instance remains
    d.advance(SimDuration::from_secs(70)); // GC interval passes harmlessly
    assert!(!d.is_crashed(&c));
    assert_eq!(d.process(&c).unwrap().thread().alive_instances().len(), 1);
    let _ = d.rotate(); // protocol restarts
    d.advance(SimDuration::from_secs(70)); // now a real shadow gets collected
    assert_eq!(d.process(&c).unwrap().thread().alive_instances().len(), 1);
}
