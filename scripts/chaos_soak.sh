#!/usr/bin/env bash
# Chaos soak (DESIGN.md §14): the daemon-edge failure domains under one
# roof. Two phases, one verdict:
#
# Phase 1 — ENOSPC round trip. A daemon started with --enospc-window
# has its first journal writes refused: the first submissions are
# rejected `journal-degraded`, the watchdog's probe records consume
# the window, and the daemon re-arms. The burst that follows must be
# accepted and settle cleanly; the surviving `kind=probe` record in
# the journal is the proof the degraded -> recovered transition
# actually happened on disk.
#
# Phase 2 — chaos burst. droidsim-load floods a daemon running with
# --io-fault-pct 5 (journal write/sync + socket read/write faults) at
# twice its queue capacity while 20% of submissions deliberately lose
# their own ack and blindly resubmit their dedupe key; mid-backlog the
# daemon is SIGKILLed and restarted on the same journal. The audit:
# zero lost acknowledged jobs, zero duplicated executions, every
# refusal explicit, every digest equal to the jobs=1 reference.
#
# Exits 0 only if both phases pass. Journals land in
# target/chaos-soak/ for CI to archive.
set -euo pipefail

# Injected faults and worker panics are the point; backtraces are noise.
export RUST_BACKTRACE=0

DROIDSIMD=${DROIDSIMD:-target/release/droidsimd}
LOAD=${DROIDSIM_LOAD:-target/release/droidsim-load}
DIR=$(mktemp -d "${TMPDIR:-/tmp}/droidsim-chaos.XXXXXX")
ARCHIVE=${CHAOS_ARCHIVE:-target/chaos-soak}
DAEMON_PID=

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  # Keep both journals (and the load transcripts) for postmortems.
  rm -rf "$ARCHIVE" && mkdir -p "$ARCHIVE"
  for phase in enospc chaos; do
    [ -d "$DIR/$phase-journal" ] && cp -r "$DIR/$phase-journal" "$ARCHIVE/$phase-journal"
    [ -f "$DIR/$phase-load.log" ] && cp "$DIR/$phase-load.log" "$ARCHIVE/"
  done
  rm -rf "$DIR"
}
trap cleanup EXIT

count() { # occurrences of $1 in journal $2 (0 if it does not exist yet)
  local n
  n=$(grep -c "$1" "$2/daemon.journal" 2>/dev/null || true)
  echo "${n:-0}"
}

# ---------------------------------------------------------------- phase 1
SOCK="$DIR/enospc.sock"
JOURNAL="$DIR/enospc-journal"

"$DROIDSIMD" --socket "$SOCK" --journal-dir "$JOURNAL" \
  --capacity 8 --workers 2 --tick-ms 10 --enospc-window 3 &
DAEMON_PID=$!
echo "chaos-soak: [enospc] droidsimd pid $DAEMON_PID, first 3 journal writes refused"

# The burst rides straight into the ENOSPC window: the earliest
# submissions bounce with `rejected reason=journal-degraded` (explicit,
# never silent — the audit tolerates rejections, not silence), the
# watchdog re-arms the journal, and the rest of the 2x-capacity burst
# lands. No chaos drops here: this phase isolates the durability ladder.
if ! "$LOAD" --socket "$SOCK" --job fault-matrix --size 24 --rate-pct 0 \
    --clients 2 --distinct 2 --wait-ms 120000 --reconnect-ms 60000 \
    --shutdown drain | tee "$DIR/enospc-load.log"; then
  echo "chaos-soak: FAIL — [enospc] load audit reported violations" >&2
  exit 1
fi
if ! wait "$DAEMON_PID"; then
  echo "chaos-soak: FAIL — [enospc] droidsimd did not exit cleanly" >&2
  exit 1
fi
DAEMON_PID=

# The round trip must be visible on disk and in the health line: at
# least one probe record survived (the write that re-armed the door),
# at least one job was accepted after recovery, and the daemon's final
# health shows the journal healthy again.
if [ "$(count '^kind=probe' "$JOURNAL")" -lt 1 ]; then
  echo "chaos-soak: FAIL — [enospc] no probe record: degraded window never closed" >&2
  exit 1
fi
if [ "$(count '^kind=accepted ' "$JOURNAL")" -lt 1 ]; then
  echo "chaos-soak: FAIL — [enospc] nothing accepted after recovery" >&2
  exit 1
fi
if ! grep -q 'journal_degraded=false' "$DIR/enospc-load.log"; then
  echo "chaos-soak: FAIL — [enospc] daemon still degraded at exit" >&2
  exit 1
fi
if ! grep -q 'journal-degraded=[1-9]' "$DIR/enospc-load.log"; then
  echo "chaos-soak: FAIL — [enospc] no journal-degraded rejection: window not exercised" >&2
  exit 1
fi
echo "chaos-soak: [enospc] PASS — degraded -> recovered round trip held"

# ---------------------------------------------------------------- phase 2
SOCK="$DIR/chaos.sock"
JOURNAL="$DIR/chaos-journal"

start_daemon() {
  "$DROIDSIMD" --socket "$SOCK" --journal-dir "$JOURNAL" \
    --capacity 8 --workers 2 --tick-ms 10 --io-fault-pct 5 --seed 50181 &
  DAEMON_PID=$!
}

start_daemon
echo "chaos-soak: [chaos] droidsimd pid $DAEMON_PID, 5% I/O faults armed"

# 2x capacity, 5% worker panics inside the jobs, 20% of submissions
# lose their own ack and blindly resubmit their dedupe key. The
# generous --reconnect-ms rides out both the injected socket resets and
# the kill window below.
"$LOAD" --socket "$SOCK" --job fault-matrix --size 48 --rate-pct 5 \
  --clients 4 --distinct 4 --wait-ms 300000 --reconnect-ms 120000 \
  --chaos-drop-pct 20 --shutdown drain >"$DIR/chaos-load.log" 2>&1 &
LOAD_PID=$!

# Kill once the backlog is mixed: at least one job settled and at least
# one acknowledged job still open.
mixed=0
for _ in $(seq 1 600); do
  if ! kill -0 "$LOAD_PID" 2>/dev/null; then
    break # load finished before a kill window opened
  fi
  settled=$(count '^kind=state ' "$JOURNAL")
  acks=$(count '^kind=accepted ' "$JOURNAL")
  if [ "$settled" -ge 1 ] && [ "$acks" -gt "$settled" ]; then
    mixed=1
    break
  fi
  sleep 0.1
done
if [ "$mixed" -ne 1 ]; then
  echo "chaos-soak: FAIL — [chaos] no mixed backlog within 60s; kill not exercised" >&2
  kill "$LOAD_PID" 2>/dev/null || true
  exit 1
fi

kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
echo "chaos-soak: [chaos] SIGKILLed droidsimd mid-backlog ($(count '^kind=accepted ' "$JOURNAL") acked, $(count '^kind=state ' "$JOURNAL") settled)"
start_daemon
echo "chaos-soak: [chaos] restarted droidsimd as pid $DAEMON_PID on the same journal"

if ! wait "$LOAD_PID"; then
  cat "$DIR/chaos-load.log"
  echo "chaos-soak: FAIL — [chaos] load audit reported violations" >&2
  exit 1
fi
cat "$DIR/chaos-load.log"

# droidsim-load's --shutdown drain stops the restarted daemon — unless
# an injected socket-read fault ate the shutdown request itself. Retry
# until the process exits (an extra drain on a draining daemon is a
# no-op).
for _ in $(seq 1 20); do
  kill -0 "$DAEMON_PID" 2>/dev/null || break
  "$LOAD" --socket "$SOCK" --total 0 --no-verify --shutdown drain \
    --reconnect-ms 2000 >/dev/null 2>&1 || true
  sleep 0.5
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then
  echo "chaos-soak: FAIL — [chaos] droidsimd never acted on shutdown" >&2
  exit 1
fi
if ! wait "$DAEMON_PID"; then
  echo "chaos-soak: FAIL — [chaos] restarted droidsimd did not exit cleanly" >&2
  exit 1
fi
DAEMON_PID=
echo "chaos-soak: PASS — ENOSPC round trip + zero lost / zero duplicated jobs under 5% I/O faults, lost acks, and a kill"
