#!/usr/bin/env bash
# Daemon soak (DESIGN.md §12): drive `droidsimd` at twice its queue
# capacity with a 5% injected worker-panic rate, SIGKILL the daemon
# while its backlog is mixed (some jobs settled, some acknowledged but
# open), restart it on the same journal, and let `droidsim-load`'s
# audit prove the service contract held:
#
#   * zero lost acknowledged jobs — every accepted id reaches a
#     terminal state, before or after the kill;
#   * every Done digest equals the jobs=1 in-process reference;
#   * every non-accepted submission got an explicit rejection reason.
#
# Exits 0 only if the load generator's audit passes and the restarted
# daemon drains cleanly.
set -euo pipefail

# The 5% injected faults are deliberate panics the supervisor catches;
# their backtraces are pure noise here.
export RUST_BACKTRACE=0

DROIDSIMD=${DROIDSIMD:-target/release/droidsimd}
LOAD=${DROIDSIM_LOAD:-target/release/droidsim-load}
DIR=$(mktemp -d "${TMPDIR:-/tmp}/droidsim-soak.XXXXXX")
SOCK="$DIR/droidsimd.sock"
JOURNAL="$DIR/journal"
ARCHIVE=${SOAK_ARCHIVE:-target/daemon-soak}
DAEMON_PID=

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  # Keep the journal for postmortems / CI artifacts.
  if [ -d "$JOURNAL" ]; then
    rm -rf "$ARCHIVE" && mkdir -p "$ARCHIVE" && cp -r "$JOURNAL"/. "$ARCHIVE"/
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

start_daemon() {
  "$DROIDSIMD" --socket "$SOCK" --journal-dir "$JOURNAL" \
    --capacity 8 --workers 2 --tick-ms 10 &
  DAEMON_PID=$!
}

count() { # occurrences of $1 in the journal (0 if it does not exist yet)
  local n
  n=$(grep -c "$1" "$JOURNAL/daemon.journal" 2>/dev/null || true)
  echo "${n:-0}"
}

start_daemon
echo "daemon-soak: droidsimd pid $DAEMON_PID, socket $SOCK"

# 2x queue capacity (droidsim-load sizes the burst off cmd=health), 5%
# injected fleet-task panics inside every job, digests verified against
# the jobs=1 reference, and a drain shutdown once the audit is done.
# The generous --reconnect-ms is what rides out the kill window below.
"$LOAD" --socket "$SOCK" --job fault-matrix --size 48 --rate-pct 5 \
  --clients 4 --distinct 4 --wait-ms 300000 --reconnect-ms 120000 \
  --shutdown drain &
LOAD_PID=$!

# Kill once the backlog is mixed: at least one job settled (a state
# record is journaled) and at least one acknowledged job still open.
# The journal is append-only line text, so grep is a safe probe.
mixed=0
for _ in $(seq 1 600); do
  if ! kill -0 "$LOAD_PID" 2>/dev/null; then
    break # load finished before a kill window opened
  fi
  settled=$(count '^kind=state ')
  acks=$(count '^kind=accepted ')
  if [ "$settled" -ge 1 ] && [ "$acks" -gt "$settled" ]; then
    mixed=1
    break
  fi
  sleep 0.1
done
if [ "$mixed" -ne 1 ]; then
  echo "daemon-soak: FAIL — no mixed backlog within 60s; kill not exercised" >&2
  kill "$LOAD_PID" 2>/dev/null || true
  exit 1
fi

kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
echo "daemon-soak: SIGKILLed droidsimd mid-backlog ($(count '^kind=accepted ') acked, $(count '^kind=state ') settled)"
start_daemon
echo "daemon-soak: restarted droidsimd as pid $DAEMON_PID on the same journal"

if ! wait "$LOAD_PID"; then
  echo "daemon-soak: FAIL — load audit reported violations" >&2
  exit 1
fi

# droidsim-load's --shutdown drain stops the restarted daemon; it must
# exit 0 of its own accord.
if ! wait "$DAEMON_PID"; then
  echo "daemon-soak: FAIL — restarted droidsimd did not exit cleanly" >&2
  exit 1
fi
DAEMON_PID=
echo "daemon-soak: PASS — zero lost acknowledged jobs, digests clean across kill/restart"
