//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the [`Buf`]/[`BufMut`] surface the binder-style
//! parcel format consumes: little-endian scalar put/get, slices, freeze
//! and cheap cloned sub-slices. Backed by `Vec<u8>`/`Arc<Vec<u8>>`
//! rather than the real crate's vtable machinery; behaviour (including
//! panics on out-of-bounds reads) matches the upstream API contract.

use std::ops::Range;
use std::sync::Arc;

/// Write side: a growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read side: an immutable, cheaply cloneable byte window.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Length of the unread window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A cloned sub-window (`range` is relative to this window).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the window out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "advance past end of buffer");
        let start = self.start;
        self.start += n;
        &self.data[start..start + n]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Read cursor over a byte source.
pub trait Buf {
    /// Unread bytes.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next `n` bytes.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize) {
        let _ = self.copy_to_bytes(n);
    }

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32;

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = self.slice(0..n);
        self.start += n;
        out
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

/// Write cursor over a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_i32_le(-42);
        w.put_i64_le(-1_000_000_007);
        w.put_f64_le(0.75);
        w.put_slice(b"tail");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i32_le(), -42);
        assert_eq!(r.get_i64_le(), -1_000_000_007);
        assert_eq!(r.get_f64_le(), 0.75);
        assert_eq!(r.copy_to_bytes(4).to_vec(), b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_a_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(mid.to_vec(), vec![2, 3, 4]);
        assert_eq!(mid.slice(1..2).to_vec(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn reading_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
