//! Offline stand-in for `serde_derive`.
//!
//! The simulator only uses `#[derive(Serialize, Deserialize)]` as a
//! declaration of intent — nothing in the workspace serialises through
//! serde at runtime. The real crates are unavailable in the offline
//! build environment, so these derives expand to empty token streams;
//! swapping the workspace dependency back to crates.io restores full
//! serde behaviour without touching any annotated type.

use proc_macro::TokenStream;

/// Accepts (and ignores) `#[derive(Serialize)]` and `#[serde(...)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts (and ignores) `#[derive(Deserialize)]` and `#[serde(...)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
