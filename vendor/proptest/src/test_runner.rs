//! Per-test configuration and the case-loop runner behind `proptest!`.

use crate::rng::TestRng;
use std::fmt;

/// Block-level configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the tier-1 gate quick
        // while still exercising a meaningful slice of each domain.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert*` inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps an assertion message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives the case loop for one property.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    seed: u64,
}

impl TestRunner {
    /// Seeds the runner from the property's name so each test has an
    /// independent but reproducible stream.
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            cases: config.cases,
            seed,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The RNG for one case: reproducible from `(test name, index)`.
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::from_seed(
            self.seed
                .wrapping_add((case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_streams_are_reproducible() {
        let a = TestRunner::new(ProptestConfig::with_cases(8), "some_property");
        let b = TestRunner::new(ProptestConfig::with_cases(8), "some_property");
        for case in 0..8 {
            assert_eq!(a.rng_for(case).next_u64(), b.rng_for(case).next_u64());
        }
    }

    #[test]
    fn different_tests_get_different_streams() {
        let a = TestRunner::new(ProptestConfig::default(), "prop_a");
        let b = TestRunner::new(ProptestConfig::default(), "prop_b");
        assert_ne!(a.rng_for(0).next_u64(), b.rng_for(0).next_u64());
    }
}
