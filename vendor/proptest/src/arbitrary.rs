//! `any::<T>()` — canonical strategies for primitive types.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Canonical strategy for `T`: `any::<u64>()`, `any::<bool>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),+ $(,)?) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: NaN breaks the equality assertions these
        // tests are built around, and upstream's NaN cases are not what
        // this workspace is probing.
        let magnitude = rng.f64_unit() * 1.0e15;
        if rng.next_u64() & 1 == 1 {
            -magnitude
        } else {
            magnitude
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps failure messages readable.
        (0x20u8 + rng.below(0x5F) as u8) as char
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_is_deterministic_per_stream() {
        let mut a = TestRng::from_seed(11);
        let mut b = TestRng::from_seed(11);
        for _ in 0..50 {
            assert_eq!(
                any::<u64>().new_value(&mut a),
                any::<u64>().new_value(&mut b)
            );
        }
    }

    #[test]
    fn floats_are_finite() {
        let mut rng = TestRng::from_seed(12);
        for _ in 0..1000 {
            assert!(any::<f64>().new_value(&mut rng).is_finite());
        }
    }

    #[test]
    fn chars_are_printable_ascii() {
        let mut rng = TestRng::from_seed(13);
        for _ in 0..500 {
            let c = any::<char>().new_value(&mut rng);
            assert!((' '..='~').contains(&c));
        }
    }
}
