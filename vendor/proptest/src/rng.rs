//! Deterministic RNG used by the offline proptest stand-in.
//!
//! SplitMix64: tiny, full-period for our purposes, and — critically —
//! seedable from a plain `u64` so every `(test, case)` pair replays the
//! same byte stream on every platform.

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        // Pre-mix so that nearby seeds (case 0, 1, 2, ...) do not
        // produce correlated leading values.
        let mut rng = TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        let _ = rng.next_u64();
        rng
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % n
        }
    }

    /// Uniform `usize` in `[0, n)`; returns 0 when `n == 0`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            let v = rng.f64_unit();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
