//! Collection strategies: `collection::vec` and `collection::btree_map`.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::collections::BTreeMap;
use std::ops::Range;

/// Vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end.saturating_sub(self.size.start);
        let len = self.size.start + rng.usize_below(span);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Maps of `keys → values` with roughly `size` entries (duplicate keys
/// coalesce, exactly as upstream's btree_map strategy behaves).
pub fn btree_map<K: Strategy, V: Strategy>(
    keys: K,
    values: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy { keys, values, size }
}

/// Strategy returned by [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let span = self.size.end.saturating_sub(self.size.start);
        let len = self.size.start + rng.usize_below(span);
        (0..len)
            .map(|_| (self.keys.new_value(rng), self.values.new_value(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_length_stays_in_range() {
        let strat = vec(any::<u8>(), 2..10);
        let mut rng = TestRng::from_seed(21);
        for _ in 0..300 {
            let v = strat.new_value(&mut rng);
            assert!((2..10).contains(&v.len()));
        }
    }

    #[test]
    fn btree_map_respects_size_ceiling() {
        let strat = btree_map("[a-z]{1,4}", any::<i32>(), 0..8);
        let mut rng = TestRng::from_seed(22);
        for _ in 0..300 {
            assert!(strat.new_value(&mut rng).len() < 8);
        }
    }
}
