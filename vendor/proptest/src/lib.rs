//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_recursive` / `boxed`, `any::<T>()`, range and char-class string
//! strategies, tuples, `Just`, `prop_oneof!`, and the `collection::vec` /
//! `collection::btree_map` builders.
//!
//! Differences from upstream, by design:
//!
//! * Generation is fully deterministic: each `(test name, case index)`
//!   pair derives its RNG seed, so failures reproduce exactly on every
//!   machine with no persistence files.
//! * There is **no shrinking** — a failing case reports its inputs via
//!   the panic message and the case index instead.
//! * The default case count is 64 (upstream: 256) to keep the tier-1
//!   gate fast; `ProptestConfig::with_cases` overrides it per block.

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream grammar used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `fn name(pat in strategy,
/// ...) { body }` items (any outer attributes on the functions are kept).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat_param in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for(case);
                    $(let $arg =
                        $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    let mut body = move ||
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(e) = body() {
                        panic!(
                            "proptest `{}` failed at case {} of {}: {}",
                            stringify!($name),
                            case,
                            runner.cases(),
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!`: like `assert!` but reports through the proptest
/// runner (here: an early `Err` return that the runner turns into a
/// panic annotated with the failing case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!`: equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)*)
        );
    }};
}

/// `prop_assert_ne!`: inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`): {}",
            stringify!($left), stringify!($right), left, format!($($fmt)*)
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
