//! Core [`Strategy`] trait and the combinators the workspace tests use.

use crate::rng::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy here is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value from the strategy.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Arc::new(move |rng| self.new_value(rng)),
        }
    }

    /// Builds recursive structures: `recurse` receives the strategy for
    /// the previous depth and returns the strategy for one level deeper.
    ///
    /// `depth` bounds nesting; `_desired_size` and `_expected_branch`
    /// are accepted for upstream signature compatibility but unused —
    /// collection sizes already bound the footprint here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            // Each level flips between "stop here" and "go deeper", so
            // expected nesting stays shallow while still exercising the
            // full `depth` on some cases.
            strat = Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }
}

/// Type-erased, cloneable strategy handle (`Strategy::boxed`).
pub struct BoxedStrategy<V> {
    sample: Arc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Arc::clone(&self.sample),
        }
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        (self.sample)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Strategy::prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Uniform choice between arms (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let arm = rng.usize_below(self.arms.len());
        self.arms[arm].new_value(rng)
    }
}

/// Integer `Range` strategies: `0u64..1_000`, `-5_000i32..5_000`, ...
macro_rules! int_range_strategy {
    ($($ty:ty),+ $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

/// `"[a-z_]{1,12}"`-style char-class string patterns generate `String`s.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

/// Tuple strategies generate element-wise, left to right.
macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_honor_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (-5_000i32..5_000).new_value(&mut rng);
            assert!((-5_000..5_000).contains(&v));
            let u = (600u32..2200).new_value(&mut rng);
            assert!((600..2200).contains(&u));
            let f = (-1.0e12f64..1.0e12).new_value(&mut rng);
            assert!((-1.0e12..1.0e12).contains(&f));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let strat = Union::new(vec![
            Just(1i32).boxed(),
            (10i32..20).prop_map(|v| v * 2).boxed(),
        ]);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i32..10)
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 64, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            assert!(depth(&strat.new_value(&mut rng)) <= 3);
        }
    }
}
