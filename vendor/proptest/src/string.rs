//! Char-class string patterns: the `"[a-z_]{1,12}"` subset of the
//! regex grammar that upstream proptest accepts for `&str` strategies.

use crate::rng::TestRng;

/// Samples a string from `pattern`, which must have the shape
/// `[class]{m}` or `[class]{m,n}` where `class` mixes literal chars and
/// `a-z`-style ranges. Repetition bounds are inclusive, as in regex.
///
/// # Panics
///
/// Panics on any pattern outside that grammar — loudly, so a new test
/// using unsupported regex syntax fails at first run rather than
/// generating garbage.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let (alphabet, min, max) = parse(pattern);
    let len = min + rng.usize_below(max - min + 1);
    (0..len)
        .map(|_| alphabet[rng.usize_below(alphabet.len())])
        .collect()
}

fn unsupported(pattern: &str) -> ! {
    panic!("unsupported string pattern {pattern:?}: expected \"[class]{{m,n}}\"")
}

fn parse(pattern: &str) -> (Vec<char>, usize, usize) {
    let Some(rest) = pattern.strip_prefix('[') else {
        unsupported(pattern)
    };
    let Some((class, counts)) = rest.split_once(']') else {
        unsupported(pattern)
    };

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            assert!(
                chars[i] <= chars[i + 2],
                "descending char range in {pattern:?}"
            );
            alphabet.extend(chars[i]..=chars[i + 2]);
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty char class in {pattern:?}");

    let Some(counts) = counts.strip_prefix('{').and_then(|c| c.strip_suffix('}')) else {
        unsupported(pattern)
    };
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m, n),
        None => (counts, counts),
    };
    let Ok(min) = min.trim().parse::<usize>() else {
        unsupported(pattern)
    };
    let Ok(max) = max.trim().parse::<usize>() else {
        unsupported(pattern)
    };
    assert!(min <= max, "inverted repetition bounds in {pattern:?}");
    (alphabet, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_are_inclusive() {
        let mut rng = TestRng::from_seed(31);
        let mut saw_min = false;
        let mut saw_max = false;
        for _ in 0..500 {
            let s = sample_pattern("[a-z]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()));
            saw_min |= s.len() == 1;
            saw_max |= s.len() == 3;
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        assert!(
            saw_min && saw_max,
            "both repetition bounds should be reachable"
        );
    }

    #[test]
    fn classes_mix_ranges_and_literals() {
        let mut rng = TestRng::from_seed(32);
        for _ in 0..500 {
            let s = sample_pattern("[a-z_:.]{1,16}", &mut rng);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || "_:.".contains(c)));
        }
    }

    #[test]
    fn exact_repetition_count() {
        let mut rng = TestRng::from_seed(33);
        assert_eq!(sample_pattern("[x]{5}", &mut rng).len(), 5);
    }

    #[test]
    #[should_panic(expected = "unsupported string pattern")]
    fn rejects_arbitrary_regex() {
        let mut rng = TestRng::from_seed(34);
        let _ = sample_pattern("foo|bar", &mut rng);
    }
}
