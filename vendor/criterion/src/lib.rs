//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the `rch-bench` targets use: groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`, the
//! `criterion_group!` / `criterion_main!` macros and the builder knobs
//! (`sample_size`, `warm_up_time`, `measurement_time`).
//!
//! Measurement is deliberately simple: warm up for `warm_up_time`, then
//! time batches of iterations until `measurement_time` elapses and
//! report the mean wall-clock per iteration. There is no outlier
//! analysis, no plots and no saved baselines. Passing `--test` on the
//! command line (what `cargo bench -- --test` and CI smoke runs do)
//! switches every benchmark to a single untimed iteration, making the
//! harness usable as a correctness gate.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// One finished benchmark: id, mean wall-clock per iteration, iteration
/// count. Collected by [`Bencher::report`] into a process-wide registry
/// so `criterion_main!` can flush every estimate at exit.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Mean nanoseconds per iteration (0.0 in `--test` smoke mode).
    pub mean_ns: f64,
    /// Iterations measured.
    pub iterations: u64,
}

static ESTIMATES: Mutex<Vec<Estimate>> = Mutex::new(Vec::new());

fn record_estimate(id: &str, mean_ns: f64, iterations: u64) {
    ESTIMATES.lock().unwrap().push(Estimate {
        id: id.to_string(),
        mean_ns,
        iterations,
    });
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The machine block embedded in every `CRITERION_JSON` document: the
/// logical-core count and how `DROIDSIM_JOBS` resolved when the
/// estimates were taken. A committed reference file carries this so a
/// regression gate can tell "slower code" apart from "smaller machine".
pub fn machine_metadata_json() -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let jobs = std::env::var("DROIDSIM_JOBS").unwrap_or_else(|_| "unset".to_string());
    format!(
        "  \"machine\": {{\"logical_cores\": {cores}, \"droidsim_jobs\": \"{}\"}},\n",
        json_escape(&jobs)
    )
}

/// Renders estimates as the compact JSON document `CRITERION_JSON`
/// emits: `{"machine": {...}, "benchmarks": [{"id", "mean_ns",
/// "iterations"}, ...]}`.
pub fn render_estimates_json(estimates: &[Estimate]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&machine_metadata_json());
    out.push_str("  \"benchmarks\": [\n");
    for (i, e) in estimates.iter().enumerate() {
        let sep = if i + 1 == estimates.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}}}{sep}\n",
            json_escape(&e.id),
            e.mean_ns,
            e.iterations
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// If `CRITERION_JSON` names a path, writes every recorded estimate
/// there as compact JSON. Called by `criterion_main!` after all groups
/// have run; harmless no-op when the variable is unset.
pub fn write_json_if_requested() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let estimates = ESTIMATES.lock().unwrap();
    let doc = render_estimates_json(&estimates);
    match std::fs::write(&path, doc) {
        Ok(()) => eprintln!("criterion: wrote {} estimate(s) to {path}", estimates.len()),
        Err(e) => eprintln!("criterion: failed to write {path}: {e}"),
    }
}

/// Harness configuration and entry point handed to benchmark functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the target number of samples (used as an iteration floor).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets how long to run untimed before measuring.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets how long to spend measuring each benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Applies command-line flags (`--test` selects single-iteration
    /// smoke mode). Called by `criterion_main!`.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.test_mode = true;
        }
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.clone());
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Opens a named group; benchmark ids are prefixed with its name.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function sweeps.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// How `iter_batched` amortises setup; all variants behave identically
/// here (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    config: Criterion,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(config: Criterion) -> Self {
        Bencher {
            config,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine` until the measurement budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.run(|| (), |()| routine());
    }

    /// Times `routine` over inputs built by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, setup: S, routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(setup, routine);
    }

    fn run<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.config.test_mode {
            black_box(routine(setup()));
            self.iters = 1;
            return;
        }

        let warm_up_end = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine(setup()));
        }

        let measure_end = Instant::now() + self.config.measurement_time;
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while iters < self.config.sample_size as u64 || Instant::now() < measure_end {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }

    fn report(&self, id: &str) {
        if self.config.test_mode {
            println!("test {id} ... ok (1 iteration, --test mode)");
            record_estimate(id, 0.0, self.iters);
        } else if self.iters > 0 {
            let mean_ns = self.elapsed.as_nanos() as f64 / self.iters as f64;
            println!(
                "{id}: {} ns/iter (mean over {} iterations)",
                mean_ns.round(),
                self.iters
            );
            record_estimate(id, mean_ns, self.iters);
        } else {
            println!("{id}: no iterations recorded");
        }
    }
}

/// Declares a benchmark group function, mirroring upstream's
/// `name = ...; config = ...; targets = ...` form (and a positional
/// form with default configuration).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            criterion = criterion.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the given benchmark groups, then flushing
/// the JSON estimates file when `CRITERION_JSON` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_mode() -> Criterion {
        Criterion {
            sample_size: 2,
            warm_up_time: Duration::ZERO,
            measurement_time: Duration::ZERO,
            test_mode: true,
        }
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut c = test_mode();
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn groups_prefix_ids_and_forward_inputs() {
        let mut c = test_mode();
        let mut seen = 0;
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::new("case", 27), &27, |b, &v| {
            b.iter(|| seen = v)
        });
        group.finish();
        assert_eq!(seen, 27);
    }

    #[test]
    fn iter_batched_separates_setup_from_routine() {
        let mut c = test_mode();
        let mut total = 0;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 21, |v| total = v * 2, BatchSize::SmallInput)
        });
        assert_eq!(total, 42);
    }

    #[test]
    fn measured_mode_hits_the_sample_floor() {
        let mut config = test_mode();
        config.test_mode = false;
        config.sample_size = 5;
        let mut c = config;
        let mut runs = 0u64;
        c.bench_function("floor", |b| b.iter(|| runs += 1));
        assert!(runs >= 5);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }

    #[test]
    fn estimates_render_as_compact_json() {
        let estimates = vec![
            Estimate {
                id: "grp/eager/27v".into(),
                mean_ns: 1234.5,
                iterations: 10,
            },
            Estimate {
                id: "quote\"d".into(),
                mean_ns: 0.0,
                iterations: 1,
            },
        ];
        let doc = render_estimates_json(&estimates);
        assert!(doc.starts_with("{\n  \"machine\": {\"logical_cores\": "));
        assert!(doc.contains("\"droidsim_jobs\": "));
        assert!(doc.contains("  \"benchmarks\": [\n"));
        assert!(
            doc.contains("{\"id\": \"grp/eager/27v\", \"mean_ns\": 1234.5, \"iterations\": 10},")
        );
        assert!(doc.contains("{\"id\": \"quote\\\"d\", \"mean_ns\": 0.0, \"iterations\": 1}\n"));
        assert!(doc.ends_with("  ]\n}\n"));
    }

    #[test]
    fn reports_land_in_the_registry() {
        let before = ESTIMATES.lock().unwrap().len();
        let mut c = test_mode();
        c.bench_function("registry_smoke", |b| b.iter(|| 1 + 1));
        let estimates = ESTIMATES.lock().unwrap();
        assert!(estimates.len() > before);
        assert!(estimates.iter().any(|e| e.id == "registry_smoke"));
    }
}
