//! Offline stand-in for `serde`.
//!
//! Exposes the `Serialize`/`Deserialize` trait names (so `use serde::…`
//! resolves) and re-exports the no-op derive macros from the sibling
//! `serde_derive` stub. The workspace treats serde derives as a
//! forward-compatibility annotation only; no code path serialises
//! through serde at runtime, so marker traits are sufficient here.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}
