//! Quickstart: rotate an app under RCHDroid and watch state survive.
//!
//! Run with: `cargo run --example quickstart`

use droidsim_app::SimpleApp;
use droidsim_device::{Device, HandlingMode};
use droidsim_view::ViewOp;

fn main() {
    // A virtual device running RCHDroid, and the paper's benchmark app:
    // four ImageViews plus a button.
    let mut device = Device::new(HandlingMode::rchdroid_default());
    let app = device
        .install_and_launch(Box::new(SimpleApp::with_views(4)), 40 << 20, 1.0)
        .expect("launch");
    println!("launched {app} at t = {}", device.now());

    // The user scrolls the image list halfway down (user state held in
    // the root container).
    device
        .with_foreground_activity_mut(|activity| {
            let root = activity
                .tree
                .find_by_id_name("root")
                .expect("layout has a root");
            activity.tree.apply(root, ViewOp::ScrollTo(960)).unwrap();
        })
        .expect("foreground alive");

    // Rotate the device: RCHDroid shadows the old instance and creates a
    // sunny one for the new configuration — no restart.
    let first = device.rotate().expect("handled");
    println!(
        "first change handled via {:?} in {}",
        first.path, first.latency
    );

    // Rotate back: the coin flip reuses the shadow instance.
    let second = device.rotate().expect("handled");
    println!(
        "second change handled via {:?} in {}",
        second.path, second.latency
    );

    // The scroll position survived both changes, with zero app
    // modifications.
    let scroll = device
        .with_foreground_activity_mut(|activity| {
            let root = activity.tree.find_by_id_name("root").unwrap();
            activity.tree.view(root).unwrap().attrs.scroll_y
        })
        .expect("foreground alive");
    println!("scroll position after two rotations: {scroll}px");
    assert_eq!(scroll, 960);

    let snapshot = device.memory_snapshot(&app).unwrap();
    println!(
        "memory: {:.2} MiB (the coupled shadow instance is included until the GC reclaims it)",
        snapshot.total_mib()
    );
}
