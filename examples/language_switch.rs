//! Runtime changes are not only rotations: this example switches the
//! system language while an app is in the foreground and shows RCHDroid
//! reloading the localized resources without restarting the activity —
//! while the user's half-typed input survives.
//!
//! Run with: `cargo run --example language_switch`

use droidsim_app::{Activity, AppModel};
use droidsim_bundle::Bundle;
use droidsim_config::{ConfigChanges, Locale};
use droidsim_device::{Device, HandlingMode};
use droidsim_resources::{LayoutNode, LayoutTemplate, Qualifiers, ResourceTable, ResourceValue};
use droidsim_view::ViewOp;

/// A tiny localized app: a greeting label (from resources) and a
/// free-text input field.
#[derive(Debug)]
struct LocalizedApp {
    resources: ResourceTable,
}

impl LocalizedApp {
    fn new() -> Self {
        let mut resources = ResourceTable::new();
        resources.put(
            "greeting",
            Qualifiers::any(),
            ResourceValue::string("Hello!"),
        );
        resources.put(
            "greeting",
            Qualifiers::any().with_language("zh"),
            ResourceValue::string("你好！"),
        );
        let root = LayoutNode::new("LinearLayout")
            .with_id("root")
            .with_child(
                LayoutNode::new("TextView")
                    .with_id("greeting")
                    .with_attr("text", "@string/greeting"),
            )
            .with_child(LayoutNode::new("EditText").with_id("message"));
        resources.put(
            "activity_main",
            Qualifiers::any(),
            ResourceValue::Layout(LayoutTemplate::new("activity_main", root)),
        );
        LocalizedApp { resources }
    }
}

impl AppModel for LocalizedApp {
    fn component_name(&self) -> &str {
        "com.localized/.Main"
    }

    fn resources(&self) -> &ResourceTable {
        &self.resources
    }

    fn main_layout(&self) -> &str {
        "activity_main"
    }

    fn handled_changes(&self) -> ConfigChanges {
        ConfigChanges::NONE // the default: restart on language switch
    }

    fn on_save_instance_state(&self, _activity: &Activity, _out: &mut Bundle) {}
}

fn read(device: &mut Device, id: &str) -> String {
    device
        .with_foreground_activity_mut(|a| {
            let v = a.tree.find_by_id_name(id).unwrap();
            a.tree
                .view(v)
                .unwrap()
                .attrs
                .text
                .clone()
                .unwrap_or_default()
        })
        .expect("foreground alive")
}

fn main() {
    let mut device = Device::new(HandlingMode::rchdroid_default());
    device
        .install_and_launch(Box::new(LocalizedApp::new()), 30 << 20, 1.0)
        .expect("launch");

    // The user starts typing.
    device
        .with_foreground_activity_mut(|a| {
            let field = a.tree.find_by_id_name("message").unwrap();
            a.tree
                .apply(field, ViewOp::SetText("meet at 6pm —".into()))
                .unwrap();
        })
        .unwrap();
    println!("greeting before switch: {}", read(&mut device, "greeting"));
    println!("input before switch:    {}", read(&mut device, "message"));

    // Switch the system language to Chinese: a runtime configuration
    // change with the LOCALE flag.
    let zh = device.configuration().with_locale(Locale::zh_cn());
    let report = device.change_configuration(zh).expect("handled");
    println!(
        "\nswitched locale via {:?} in {}\n",
        report.path, report.latency
    );

    // The sunny instance inflated the zh resources, and the half-typed
    // input migrated from the shadow instance.
    let greeting = read(&mut device, "greeting");
    let message = read(&mut device, "message");
    println!("greeting after switch:  {greeting}");
    println!("input after switch:     {message}");
    assert_eq!(greeting, "你好！", "localized resources reloaded");
    assert_eq!(message, "meet at 6pm —", "user input survived");
}
