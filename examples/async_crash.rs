//! The motivating scenario of the paper's Fig. 1: an app starts an
//! asynchronous task, the user rotates the screen before it returns, and
//! the callback then touches the (destroyed) view tree.
//!
//! Under stock Android 10 this throws `NullPointerException` and the app
//! dies; under RCHDroid the old instance survives in the Shadow state and
//! the callback's updates are lazily migrated to the new foreground tree.
//!
//! Run with: `cargo run --example async_crash`

use droidsim_app::SimpleApp;
use droidsim_device::{Device, DeviceEvent, HandlingMode};
use droidsim_kernel::SimDuration;

fn scenario(mode: HandlingMode, label: &str) {
    println!("--- {label} ---");
    let mut device = Device::new(mode);
    let app_model = SimpleApp::with_views(4);
    let task = app_model.button_task();
    let app = device
        .install_and_launch(Box::new(app_model), 40 << 20, 1.0)
        .expect("launch");

    // Button press: a 5-second AsyncTask that will update the ImageViews.
    device.start_async_on_foreground(task).expect("press");
    println!("t={}: AsyncTask started (5 s)", device.now());

    // The user rotates before the task returns.
    let report = device.rotate().expect("handled");
    println!(
        "t={}: rotation handled via {:?} in {}",
        device.now(),
        report.path,
        report.latency
    );

    // Let the task return.
    device.advance(SimDuration::from_secs(6));

    if device.is_crashed(&app) {
        let exception = device
            .events()
            .iter()
            .find_map(|e| match e {
                DeviceEvent::Crash { exception, .. } => Some(exception.clone()),
                _ => None,
            })
            .unwrap_or_default();
        println!("t={}: APP CRASHED: {exception}", device.now());
    } else {
        let migrated: usize = device
            .events()
            .iter()
            .filter_map(|e| match e {
                DeviceEvent::AsyncDelivered { migrated_views, .. } => Some(*migrated_views),
                _ => None,
            })
            .sum();
        println!(
            "t={}: task returned safely; {migrated} view updates migrated to the foreground tree",
            device.now()
        );
        // Prove the foreground tree really shows the loaded images.
        let p = device.process(&app).unwrap();
        let fg = p.foreground_activity().unwrap();
        let img = fg.tree.find_by_id_name("image_0").unwrap();
        println!(
            "image_0 now shows {:?}",
            fg.tree
                .view(img)
                .unwrap()
                .attrs
                .drawable
                .as_ref()
                .map(|d| d.0.clone())
        );
    }
    println!();
}

fn main() {
    scenario(
        HandlingMode::Android10,
        "stock Android 10 (restarting-based)",
    );
    scenario(
        HandlingMode::rchdroid_default(),
        "RCHDroid (shadow/sunny + lazy migration)",
    );
}
