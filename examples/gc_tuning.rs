//! Sweeping the shadow-GC threshold (the paper's Fig. 11 experiment).
//!
//! Shows the latency/CPU vs memory trade-off of `THRESH_T` and why the
//! paper settles on 50 seconds.
//!
//! Run with: `cargo run --release --example gc_tuning`

fn main() {
    println!("Sweeping THRESH_T on the 32-ImageView benchmark app");
    println!("(10 minutes, 6 bursty runtime changes per minute, THRESH_F = 4)\n");
    let fig = rch_experiments::fig11::run();
    print!("{}", fig.render());

    let best = fig
        .rows
        .iter()
        .min_by(|a, b| {
            // The paper's operating point: smallest THRESH_T whose latency
            // is within 1 ms of the flat region's.
            let flat = fig.rows.last().unwrap().avg_latency_ms;
            let ka = (a.avg_latency_ms - flat).abs() <= 1.0;
            let kb = (b.avg_latency_ms - flat).abs() <= 1.0;
            kb.cmp(&ka).then(a.thresh_t_secs.cmp(&b.thresh_t_secs))
        })
        .unwrap();
    println!(
        "\nchosen operating point: THRESH_T = {} s (paper: 50 s)",
        best.thresh_t_secs
    );
}
