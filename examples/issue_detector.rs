//! The automated issue oracle (§6's methodology as a tool): audit an app
//! set for runtime-change issues by setting state, rotating once and
//! twice, and diffing what the user sees.
//!
//! Run with: `cargo run --release --example issue_detector`

use droidsim_device::HandlingMode;
use rch_experiments::detector;
use rch_workloads::tp27_specs;

fn main() {
    let specs = tp27_specs();

    println!("Auditing the TP-27 set under stock Android 10…");
    let mut stock_flagged = 0;
    for spec in &specs {
        let report = detector::check(spec, HandlingMode::Android10);
        if report.has_issue() {
            stock_flagged += 1;
            let cause = if report.crashed {
                "CRASH".to_owned()
            } else {
                format!("state loss: {:?}", report.lost_after_one)
            };
            println!("  {:<18} {}", report.app, cause);
        }
    }
    println!(
        "=> {stock_flagged}/{} apps flagged under stock\n",
        specs.len()
    );

    println!("Auditing the same set under RCHDroid…");
    let rch_flagged = detector::flagged(&specs, HandlingMode::rchdroid_default());
    for app in &rch_flagged {
        println!("  {app:<18} still loses state (unsaved member fields)");
    }
    println!(
        "=> {}/{} apps still flagged under RCHDroid (paper: 2 — apps #9 and #10)",
        rch_flagged.len(),
        specs.len()
    );
}
