//! Fragments under rotation: a login form lives in a dynamically
//! attached fragment (§2.2's hard case for app-level tools); RCHDroid
//! keeps the half-typed credentials through the rotation.
//!
//! Run with: `cargo run --example fragment_form`

use droidsim_app::{Activity, AppModel, FragmentSpec};
use droidsim_bundle::Bundle;
use droidsim_device::{Device, HandlingMode};
use droidsim_resources::{LayoutNode, LayoutTemplate, Qualifiers, ResourceTable, ResourceValue};
use droidsim_view::ViewOp;

#[derive(Debug)]
struct FormApp {
    resources: ResourceTable,
}

impl FormApp {
    fn new() -> Self {
        let mut resources = ResourceTable::new();
        resources.put(
            "activity_main",
            Qualifiers::any(),
            ResourceValue::Layout(LayoutTemplate::new(
                "activity_main",
                LayoutNode::new("LinearLayout")
                    .with_id("root")
                    .with_child(LayoutNode::new("FrameLayout").with_id("form_host")),
            )),
        );
        resources.put(
            "fragment_form",
            Qualifiers::any(),
            ResourceValue::Layout(LayoutTemplate::new(
                "fragment_form",
                LayoutNode::new("LinearLayout")
                    .with_id("form")
                    .with_child(LayoutNode::new("EditText").with_id("email"))
                    .with_child(LayoutNode::new("EditText").with_id("password"))
                    .with_child(LayoutNode::new("CheckBox").with_id("remember_me"))
                    .with_child(LayoutNode::new("Button").with_id("sign_in")),
            )),
        );
        FormApp { resources }
    }
}

impl AppModel for FormApp {
    fn component_name(&self) -> &str {
        "com.form/.Main"
    }

    fn resources(&self) -> &ResourceTable {
        &self.resources
    }

    fn main_layout(&self) -> &str {
        "activity_main"
    }

    fn on_create(&self, activity: &mut Activity) {
        activity
            .attach_fragment(
                &self.resources,
                &FragmentSpec::new("form", "fragment_form", "form_host"),
            )
            .expect("host exists");
    }

    fn on_save_instance_state(&self, _activity: &Activity, _out: &mut Bundle) {}
}

fn main() {
    let mut device = Device::new(HandlingMode::rchdroid_default());
    device
        .install_and_launch(Box::new(FormApp::new()), 45 << 20, 1.0)
        .expect("launch");

    // The user fills half the form.
    device
        .with_foreground_activity_mut(|a| {
            let email = a.tree.find_by_id_name("email").unwrap();
            a.tree
                .apply(email, ViewOp::SetText("alice@example.com".into()))
                .unwrap();
            let remember = a.tree.find_by_id_name("remember_me").unwrap();
            a.tree.apply(remember, ViewOp::SetChecked(true)).unwrap();
        })
        .unwrap();
    println!("form filled (fragment attached by onCreate, not in the layout resource)");

    // Rotate mid-form.
    let report = device.rotate().expect("handled");
    println!(
        "rotation handled via {:?} in {}",
        report.path, report.latency
    );

    // Everything typed is still there.
    device
        .with_foreground_activity_mut(|a| {
            let email = a.tree.find_by_id_name("email").unwrap();
            let remember = a.tree.find_by_id_name("remember_me").unwrap();
            let email_text = a.tree.view(email).unwrap().attrs.text.clone();
            let checked = a.tree.view(remember).unwrap().attrs.checked;
            println!("email after rotation:        {email_text:?}");
            println!("remember-me after rotation:  {checked:?}");
            assert_eq!(email_text.as_deref(), Some("alice@example.com"));
            assert_eq!(checked, Some(true));
            println!("fragments attached: {}", a.fragments().len());
        })
        .unwrap();
}
