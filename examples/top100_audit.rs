//! The §6 study in miniature: audit the Google-Play top-100 set for
//! runtime-change issues under stock handling, then check how many
//! RCHDroid fixes, printing Table 5 plus the Fig. 14 summaries.
//!
//! Run with: `cargo run --release --example top100_audit`

fn main() {
    let study = rch_experiments::table5::run();
    print!("{}", study.render());

    // A few highlighted rows (the paper's Fig. 13 examples).
    println!("\nhighlights:");
    for name in ["Twitter", "Disney+", "KJVBible", "Orbot"] {
        if let Some(row) = study.rows.iter().find(|r| r.name == name) {
            println!(
                "  {:<10} issue: {:<32} fixed by RCHDroid: {}",
                row.name,
                row.problem.as_deref().unwrap_or("none"),
                row.fixed_by_rchdroid
            );
        }
    }
}
