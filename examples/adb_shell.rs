//! An `adb shell`-flavoured driver for the virtual device: the artifact's
//! measurement workflow (§A.5) as interactive commands.
//!
//! Run with a script on stdin:
//!
//! ```text
//! cargo run --example adb_shell <<'EOF'
//! install 4
//! tap button
//! wm size 1920x1080
//! sleep 6
//! logcat zizhan
//! meminfo
//! EOF
//! ```
//!
//! or with no stdin redirection, a demo script runs.

use droidsim_app::SimpleApp;
use droidsim_device::{Device, HandlingMode};
use droidsim_kernel::SimDuration;
use std::io::{BufRead, IsTerminal};

fn run_command(device: &mut Device, installed: &mut Option<String>, line: &str) {
    let parts: Vec<&str> = line.split_whitespace().collect();
    match parts.as_slice() {
        [] | ["#", ..] => {}
        ["install", views] => {
            let views: usize = views.parse().unwrap_or(4);
            match device.install_and_launch(Box::new(SimpleApp::with_views(views)), 40 << 20, 1.0) {
                Ok(component) => {
                    println!("Success: installed and launched {component} ({views} ImageViews)");
                    *installed = Some(component);
                }
                Err(e) => println!("Failure: {e}"),
            }
        }
        ["rotate"] => match device.rotate() {
            Ok(r) => println!("handled via {:?} in {}", r.path, r.latency),
            Err(e) => println!("Failure: {e}"),
        },
        ["wm", "size", "reset"] => match device.wm_size_reset() {
            Ok(r) => println!("handled via {:?} in {}", r.path, r.latency),
            Err(e) => println!("Failure: {e}"),
        },
        ["wm", "size", dims] => {
            let Some((w, h)) = dims.split_once('x') else {
                println!("usage: wm size WxH");
                return;
            };
            match (w.parse(), h.parse()) {
                (Ok(w), Ok(h)) => match device.wm_size(w, h) {
                    Ok(r) => println!("handled via {:?} in {}", r.path, r.latency),
                    Err(e) => println!("Failure: {e}"),
                },
                _ => println!("usage: wm size WxH"),
            }
        }
        ["tap", "button"] => {
            let spec = SimpleApp::with_views(4).button_task();
            match device.start_async_on_foreground(spec) {
                Ok(()) => println!("AsyncTask started (5 s)"),
                Err(e) => println!("Failure: {e}"),
            }
        }
        ["sleep", secs] => {
            let secs: u64 = secs.parse().unwrap_or(1);
            device.advance(SimDuration::from_secs(secs));
            println!("… t = {}", device.now());
        }
        ["logcat"] => {
            for line in device.logcat(None) {
                println!("{line}");
            }
        }
        ["logcat", filter] => {
            for line in device.logcat(Some(filter)) {
                println!("{line}");
            }
        }
        ["meminfo"] => {
            if let Some(component) = installed {
                match device.memory_snapshot(component) {
                    Ok(s) => println!("{component}: TOTAL PSS {:.2} MiB", s.total_mib()),
                    Err(e) => println!("Failure: {e}"),
                }
            } else {
                println!("no app installed");
            }
        }
        ["ps"] => {
            if let Some(component) = installed {
                let p = device.process(component).expect("installed");
                println!(
                    "{component}: {} alive instance(s), crashed: {}",
                    p.thread().alive_instances().len(),
                    p.crash().unwrap_or("no")
                );
            }
        }
        other => println!("unknown command: {other:?}"),
    }
}

fn main() {
    let mut device = Device::new(HandlingMode::rchdroid_default());
    let mut installed = None;

    let stdin = std::io::stdin();
    if stdin.is_terminal() {
        // Demo script: the Fig. 9 workflow.
        println!("(no stdin script; running the Fig. 9 demo workflow)");
        for line in [
            "install 4",
            "tap button",
            "wm size 1920x1080",
            "sleep 6",
            "wm size reset",
            "logcat zizhan",
            "meminfo",
            "ps",
        ] {
            println!("$ {line}");
            run_command(&mut device, &mut installed, line);
        }
        return;
    }
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        println!("$ {line}");
        run_command(&mut device, &mut installed, &line);
    }
}
