//! Umbrella crate re-exporting the RCHDroid reproduction workspace.
pub use droidsim_device as device;
pub use rch_workloads as workloads;
pub use rchdroid as core;
