# Mirrors .github/workflows/ci.yml so `make ci` locally reproduces the
# gate a PR has to pass.

CARGO ?= cargo

.PHONY: ci build test fmt fmt-fix clippy bench-smoke fault-matrix \
	fleet-determinism memo-parity bench-json bench-gate soak lint-study \
	dataloss-study daemon-soak chaos-soak

ci: build test fmt clippy fault-matrix fleet-determinism memo-parity \
	bench-smoke lint-study dataloss-study soak daemon-soak chaos-soak

# Seeds for the fault-injection suite. Debug builds keep the
# batched-vs-eager equivalence checker armed, so each seed also
# cross-checks the two flush policies against each other.
FAULT_SEEDS ?= 1 2 3 5 8

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

fmt:
	$(CARGO) fmt --all --check

fmt-fix:
	$(CARGO) fmt --all

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

fault-matrix:
	for seed in $(FAULT_SEEDS); do \
		echo "--- fault matrix, seed $$seed ---"; \
		FAULT_SEED=$$seed $(CARGO) test -q --test fault_matrix || exit 1; \
	done

bench-smoke:
	$(CARGO) bench -p rch-bench --bench fig07_handling_time_27 -- --test
	$(CARGO) bench -p rch-bench --bench migration_batching -- --test
	$(CARGO) bench -p rch-bench --bench robustness_faults -- --test
	$(CARGO) bench -p rch-bench --bench fleet_parallel -- --test

# The fleet determinism gate: a parallel run's per-device digests must
# be bit-identical to the DROIDSIM_JOBS=1 inline run (3 seeds, 5% fault
# rate). Runs the suite twice so worker counts above and below the
# machine's core count are both exercised.
fleet-determinism:
	$(CARGO) test -q --test fleet_determinism
	DROIDSIM_JOBS=2 $(CARGO) test -q --test fleet_determinism

# The warm-path cache parity gate (DESIGN.md §13): fleet digests with
# the memo caches on must be bit-identical to a cold run at every
# worker count under a 5% fault rate, random app specs must digest
# identically cache-on and cache-off, and eviction under memory
# pressure mid-fleet must never change a result. The second line
# re-runs the fleet determinism suite with the caches disabled so the
# kill switch itself stays a first-class, tested configuration.
memo-parity:
	$(CARGO) test -q --release --test memo_parity
	DROIDSIM_NO_MEMO=1 $(CARGO) test -q --test fleet_determinism

# Crash-safety soak: a 40-task supervised fleet with a 5% injected
# fleet-task fault rate (panics and a forced stall) plus two hard-broken
# tasks. Must exit 0 with exactly those two tasks quarantined; the
# journal and crash dumps land under target/soak/ for CI to archive.
soak:
	$(CARGO) run -q --release -p rch-experiments --bin soak

# Daemon soak (DESIGN.md §12): droidsim-load drives droidsimd at 2x its
# queue capacity with 5% injected worker panics; the script SIGKILLs
# the daemon mid-backlog and restarts it on the same journal. Gate:
# zero lost acknowledged jobs, every digest equal to the jobs=1
# reference, explicit rejections only. Journal lands in
# target/daemon-soak/ for CI to archive.
daemon-soak:
	$(CARGO) build --release -q -p rch-experiments --bins
	bash scripts/daemon_soak.sh

# Chaos soak (DESIGN.md §14): the daemon edge under injected I/O
# faults. Phase 1 forces an ENOSPC window (--enospc-window) and
# requires the full degraded -> recovered round trip on disk; phase 2
# floods a daemon running 5% journal/socket faults at 2x capacity with
# 20% deliberately lost acks and a SIGKILL/restart mid-backlog. Gate:
# zero lost acknowledged jobs, zero duplicated executions, explicit
# rejections only. Journals land in target/chaos-soak/ for CI.
chaos-soak:
	$(CARGO) build --release -q -p rch-experiments --bins
	bash scripts/chaos_soak.sh

# The static-analysis study (DESIGN.md §10): every known-issue-free
# corpus app must lint clean even under --deny-warnings, and the
# static verdicts must agree with the dynamic detection oracle
# field-by-field for all 647 apps (tp27, top100, and the generated
# data-loss corpus) under all three runtimes, with the differential
# digest identical at --jobs 1 and --jobs 4.
lint-study:
	$(CARGO) run -q --release -p rch-experiments --bin rchlint -- \
		--corpus all --clean-only --deny-warnings
	set -e; \
	serial=$$($(CARGO) run -q --release -p rch-experiments --bin rchlint -- \
		--differential --corpus all --jobs 1 | tail -1); \
	parallel=$$($(CARGO) run -q --release -p rch-experiments --bin rchlint -- \
		--differential --corpus all --jobs 4 | tail -1); \
	echo "serial:   $$serial"; echo "parallel: $$parallel"; \
	test "$$(echo "$$serial" | sed 's/jobs=[0-9]*//')" = \
		"$$(echo "$$parallel" | sed 's/jobs=[0-9]*//')"

# The data-loss differential study (DESIGN.md §15): replay the whole
# generated 520-app corpus through the three-runtime dynamic oracle
# (stock / RCHDroid / RuntimeDroid class schedules), require zero
# static/dynamic disagreements with the --jobs 1 and --jobs 4 digests
# identical, and regenerate the committed per-class loss-rate table
# (results/table_dataloss.csv) from the verified verdicts.
dataloss-study:
	set -e; \
	serial=$$($(CARGO) run -q --release -p rch-experiments --bin rchlint -- \
		--differential --corpus dataloss --jobs 1 | grep '^=> fleet:'); \
	parallel=$$($(CARGO) run -q --release -p rch-experiments --bin rchlint -- \
		--differential --corpus dataloss --jobs 4 \
		--table results/table_dataloss.csv | grep '^=> fleet:'); \
	echo "serial:   $$serial"; echo "parallel: $$parallel"; \
	test "$$(echo "$$serial" | sed 's/jobs=[0-9]*//')" = \
		"$$(echo "$$parallel" | sed 's/jobs=[0-9]*//')"

# Real (non-smoke) runs of the fleet and migration benches, with the
# vendored criterion harness writing its estimates as compact JSON
# artifacts under results/.
bench-json:
	mkdir -p results
	CRITERION_JSON=$(CURDIR)/results/BENCH_fleet.json \
		$(CARGO) bench -p rch-bench --bench fleet_parallel
	CRITERION_JSON=$(CURDIR)/results/BENCH_migration.json \
		$(CARGO) bench -p rch-bench --bench migration_batching

# The bench-regression gate: re-measures both benches into
# target/bench-gate/ and compares the fresh means against the committed
# reference under results/ (±15% band, plus the hard jobs=8 ≤ 0.5×
# jobs=1 scaling assertion). On hardware whose core count differs from
# the reference runner's, violations downgrade to warnings.
bench-gate:
	mkdir -p target/bench-gate
	CRITERION_JSON=$(CURDIR)/target/bench-gate/BENCH_fleet.json \
		$(CARGO) bench -p rch-bench --bench fleet_parallel
	CRITERION_JSON=$(CURDIR)/target/bench-gate/BENCH_migration.json \
		$(CARGO) bench -p rch-bench --bench migration_batching
	$(CARGO) run -q --release -p rch-experiments --bin bench_gate -- \
		target/bench-gate/BENCH_fleet.json results/BENCH_fleet.json \
		target/bench-gate/BENCH_migration.json results/BENCH_migration.json
