# Mirrors .github/workflows/ci.yml so `make ci` locally reproduces the
# gate a PR has to pass.

CARGO ?= cargo

.PHONY: ci build test fmt fmt-fix clippy bench-smoke

ci: build test fmt clippy bench-smoke

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

fmt:
	$(CARGO) fmt --all --check

fmt-fix:
	$(CARGO) fmt --all

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

bench-smoke:
	$(CARGO) bench -p rch-bench --bench fig07_handling_time_27 -- --test
	$(CARGO) bench -p rch-bench --bench migration_batching -- --test
