//! Kill/restart durability of the real `droidsimd` binary.
//!
//! A daemon is spawned with a journal directory, loaded with a batch of
//! `table5` jobs, and SIGKILLed while at least one job is still running.
//! A second daemon on the same journal must resume every acknowledged
//! incomplete job and settle all of them to the digest an uninterrupted
//! `jobs=1` in-process run produces — the acceptance oracle for the
//! whole service.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use droidsim_daemon::{Admission, Client, JobKind, JobSpec, JobState, ShutdownMode};
use rch_experiments::daemon_exec::reference_digest;

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("droidsimd-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_daemon(socket: &PathBuf, journal: &PathBuf) -> Child {
    Command::new(env!("CARGO_BIN_EXE_droidsimd"))
        .arg("--socket")
        .arg(socket)
        .arg("--journal-dir")
        .arg(journal)
        .args(["--workers", "1", "--tick-ms", "10"])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn droidsimd")
}

fn stat(fields: &[(String, String)], key: &str) -> u64 {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("stats field {key:?} missing or non-numeric"))
}

#[test]
fn killed_daemon_resumes_acknowledged_jobs_to_the_reference_digest() {
    let dir = scratch();
    let socket = dir.join("droidsimd.sock");
    let journal = dir.join("journal");

    let mut child = spawn_daemon(&socket, &journal);
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).unwrap();

    // Table5 over 8 apps takes long enough on one worker that the kill
    // below lands mid-backlog; seeds vary so digests are per-job.
    let specs: Vec<JobSpec> = (0..5)
        .map(|i| {
            JobSpec::new(JobKind::Table5 { apps: 8 })
                .with_seed(7_000 + i)
                .with_tag(format!("restart-{i}"))
        })
        .collect();
    let ids: Vec<u64> = specs
        .iter()
        .map(|spec| match client.submit(spec).unwrap() {
            Admission::Accepted { id, .. } => id,
            Admission::Rejected { reason } => panic!("rejected: {reason}"),
            Admission::Duplicate { id } => panic!("unexpected duplicate: {id}"),
        })
        .collect();

    // Kill only once the backlog is genuinely mixed: at least one job
    // done (its terminal state journaled) and at least one still open.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(
            Instant::now() < deadline,
            "jobs never reached a mixed state"
        );
        let (mut done, mut open) = (0, 0);
        for &id in &ids {
            match client.status(id).unwrap().state {
                JobState::Done { .. } => done += 1,
                _ => open += 1,
            }
        }
        if done >= 1 && open >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_file(&socket);

    let mut child = spawn_daemon(&socket, &journal);
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).unwrap();
    let resumed = stat(&client.stats().unwrap(), "resumed");
    assert!(resumed >= 1, "restart resumed nothing despite open jobs");

    // Every acknowledged job — completed in life one or resumed in life
    // two — must settle Done with the jobs=1 reference digest.
    for (spec, &id) in specs.iter().zip(&ids) {
        let expected = reference_digest(spec).unwrap();
        let deadline = Instant::now() + Duration::from_secs(120);
        let digest = loop {
            let status = client.wait(id, Duration::from_secs(5)).unwrap();
            match status.state {
                JobState::Done { digest } => break digest,
                ref s if s.is_terminal() => panic!("job {id} settled {s:?}"),
                _ => assert!(Instant::now() < deadline, "job {id} never settled"),
            }
        };
        assert_eq!(digest, expected, "job {id} diverged from the reference");
    }

    client.shutdown(ShutdownMode::Drain).unwrap();
    let status = child.wait().unwrap();
    assert!(status.success(), "droidsimd exited {status}");
    let _ = std::fs::remove_dir_all(&dir);
}
