//! The common per-app test scenario (the paper's manual workflow, §A.5):
//! launch, enter a stable state, set user state, optionally start an async
//! task, issue runtime changes, and inspect the outcome.

use droidsim_device::{Device, DeviceEvent, HandlingMode};
use droidsim_kernel::SimDuration;
use rch_workloads::GenericAppSpec;

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The system under test.
    pub mode: HandlingMode,
    /// Number of runtime changes to issue (the paper averages ≥5 runs;
    /// a 4-change sequence — one init + three flips under RCHDroid —
    /// matches its steady-state reporting).
    pub changes: usize,
    /// Pause between changes (keep below THRESH_T so flips happen).
    pub pause_between: SimDuration,
    /// Start the 5-second async task before the first change (the crash
    /// scenario of Fig. 1/Fig. 9).
    pub with_async_task: bool,
}

impl RunConfig {
    /// The default 4-change workflow for a mode.
    pub fn new(mode: HandlingMode) -> Self {
        RunConfig {
            mode,
            changes: 4,
            pause_between: SimDuration::from_secs(2),
            with_async_task: false,
        }
    }

    /// Enables the in-flight async task.
    pub fn with_async(mut self) -> Self {
        self.with_async_task = true;
        self
    }

    /// Sets the number of changes.
    pub fn changes(mut self, n: usize) -> Self {
        self.changes = n;
        self
    }
}

/// What one scenario run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-change handling latencies in ms.
    pub latencies_ms: Vec<f64>,
    /// Whether the app crashed during the run.
    pub crashed: bool,
    /// Whether every state item still held its value at the end.
    pub state_ok: bool,
    /// PSS right after the changes (both instances alive under RCHDroid),
    /// in MiB.
    pub memory_mib: f64,
    /// Total CPU-busy time attributable to change handling + migration,
    /// in ms (energy-model input).
    pub busy_ms: f64,
}

impl RunOutcome {
    /// Mean handling latency over the run.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            0.0
        } else {
            self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
        }
    }

    /// Whether the app's runtime-change issue was observed (crash or
    /// state loss).
    pub fn issue_observed(&self) -> bool {
        self.crashed || !self.state_ok
    }
}

/// Runs one app spec through the scenario on a fresh device.
pub fn run_app(spec: &GenericAppSpec, cfg: &RunConfig) -> RunOutcome {
    let mut device = Device::new(cfg.mode);
    let probe = spec.build(); // state helpers (stateless twin of the installed model)
    let component = device
        .install_and_launch(
            Box::new(spec.build()),
            spec.base_memory_bytes,
            spec.complexity,
        )
        .expect("launch succeeds on a fresh device");

    // Stable state + user interaction.
    device.advance(SimDuration::from_secs(1));
    device
        .with_foreground_activity_mut(|a| probe.apply_user_state(a))
        .expect("foreground just launched");

    if cfg.with_async_task || spec.uses_async_task {
        device
            .start_async_on_foreground(spec.async_task())
            .expect("foreground alive");
    }

    // The runtime changes.
    for _ in 0..cfg.changes {
        if device.is_crashed(&component) {
            break;
        }
        let _ = device.rotate();
        device.advance(cfg.pause_between);
    }
    let memory_mib = device
        .memory_snapshot(&component)
        .map_or(0.0, |s| s.total_mib());

    // Let the async task land (5 s task; make sure it returned).
    device.advance(SimDuration::from_secs(8));

    let crashed = device.is_crashed(&component);
    let state_ok = if crashed {
        false
    } else {
        device
            .with_foreground_activity_mut(|a| probe.all_state_survived(a))
            .unwrap_or(false)
    };

    let latencies_ms = device
        .process(&component)
        .map(droidsim_device::AppProcess::latencies_ms)
        .unwrap_or_default();
    let busy_ms: f64 = latencies_ms.iter().sum::<f64>()
        + device
            .events()
            .iter()
            .filter_map(|e| match e {
                DeviceEvent::AsyncDelivered {
                    migration_latency: Some(d),
                    ..
                } => Some(d.as_millis_f64()),
                _ => None,
            })
            .sum::<f64>();

    RunOutcome {
        latencies_ms,
        crashed,
        state_ok,
        memory_mib,
        busy_ms,
    }
}

/// Convenience: run the same spec under two modes (comparison shape).
pub fn run_both(spec: &GenericAppSpec) -> (RunOutcome, RunOutcome) {
    let stock = run_app(spec, &RunConfig::new(HandlingMode::Android10));
    let rch = run_app(spec, &RunConfig::new(HandlingMode::rchdroid_default()));
    (stock, rch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rch_workloads::tp27_specs;

    #[test]
    fn stock_run_on_issue_app_observes_the_issue() {
        let specs = tp27_specs();
        let outcome = run_app(&specs[0], &RunConfig::new(HandlingMode::Android10));
        assert!(
            outcome.issue_observed(),
            "AlarmClockPlus loses state under stock"
        );
        assert_eq!(outcome.latencies_ms.len(), 4);
    }

    #[test]
    fn rchdroid_run_fixes_the_issue() {
        let specs = tp27_specs();
        let outcome = run_app(&specs[0], &RunConfig::new(HandlingMode::rchdroid_default()));
        assert!(!outcome.issue_observed());
    }

    #[test]
    fn async_app_crashes_under_stock_only() {
        let specs = tp27_specs();
        let bluenet = &specs[3]; // uses an async task
        let (stock, rch) = run_both(bluenet);
        assert!(stock.crashed, "BlueNET crashes under stock");
        assert!(!rch.crashed, "RCHDroid prevents the crash");
    }

    #[test]
    fn rchdroid_memory_exceeds_stock_memory() {
        let specs = tp27_specs();
        let (stock, rch) = run_both(&specs[1]);
        assert!(rch.memory_mib > stock.memory_mib);
    }

    #[test]
    fn rchdroid_is_faster_on_average() {
        let specs = tp27_specs();
        let (stock, rch) = run_both(&specs[2]);
        assert!(rch.mean_latency_ms() < stock.mean_latency_ms());
    }
}
