//! Fig. 12 + Table 4 + §5.7: comparison with RuntimeDroid.
//!
//! The eight apps of Table 4 run under Android-10, RCHDroid and the
//! RuntimeDroid baseline; Fig. 12 reports handling time normalized to
//! Android-10. RuntimeDroid is faster (app-level, no new instance, no
//! system IPC) — but Table 4 shows it needs 760–2077 modified LoC per
//! app, while RCHDroid needs zero; §5.7's deployment-overhead comparison
//! is reproduced from the same constants.

use crate::scenario::{run_app, RunConfig};
use droidsim_device::HandlingMode;
use rch_workloads::GenericAppSpec;
use runtimedroid_baseline::{deployment, table4_apps, PatchInfo};

/// One app's comparison row.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// App name.
    pub name: String,
    /// Android-10 mean latency (ms) — the normalization base.
    pub android10_ms: f64,
    /// RCHDroid normalized latency (fraction of Android-10).
    pub rchdroid_norm: f64,
    /// RuntimeDroid normalized latency.
    pub runtimedroid_norm: f64,
    /// RuntimeDroid's per-app patch size (Table 4).
    pub patch_loc: u32,
    /// RCHDroid's per-app modification (always zero).
    pub rchdroid_loc: u32,
}

/// The comparison data.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// Per-app rows.
    pub rows: Vec<Fig12Row>,
}

impl Fig12 {
    /// Renders Fig. 12, Table 4 and the deployment comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig. 12: handling time normalized to Android-10\n");
        out.push_str(&format!(
            "{:<14} {:>12} {:>13} {:>17}\n",
            "App", "Android-10", "RCHDroid", "RuntimeDroid"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>12.2} {:>13.2} {:>17.2}\n",
                r.name, 1.0, r.rchdroid_norm, r.runtimedroid_norm
            ));
        }
        out.push_str("\nTable 4: modifications to apps (LoC)\n");
        out.push_str(&format!(
            "{:<14} {:>18} {:>14}\n",
            "App", "RuntimeDroid mods", "RCHDroid mods"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>18} {:>14}\n",
                r.name, r.patch_loc, r.rchdroid_loc
            ));
        }
        out.push_str(&format!(
            "\nDeployment: RCHDroid one-off system deploy {} ms; RuntimeDroid per-app \
             patching {}..{} ms\n",
            deployment::RCHDROID_SYSTEM_DEPLOY_MS,
            deployment::RUNTIMEDROID_PATCH_MS.0,
            deployment::RUNTIMEDROID_PATCH_MS.1
        ));
        out
    }
}

fn spec_for(info: &PatchInfo) -> GenericAppSpec {
    GenericAppSpec::sized(info.app, "n/a", false)
}

/// Runs the comparison.
pub fn run() -> Fig12 {
    let rows = table4_apps()
        .iter()
        .map(|info| {
            let spec = spec_for(info);
            let stock = run_app(&spec, &RunConfig::new(HandlingMode::Android10));
            let rch = run_app(&spec, &RunConfig::new(HandlingMode::rchdroid_default()));
            let rtd = run_app(&spec, &RunConfig::new(HandlingMode::RuntimeDroid));
            let base = stock.mean_latency_ms();
            Fig12Row {
                name: info.app.to_owned(),
                android10_ms: base,
                rchdroid_norm: rch.mean_latency_ms() / base,
                runtimedroid_norm: rtd.mean_latency_ms() / base,
                patch_loc: info.modification_loc(),
                rchdroid_loc: 0,
            }
        })
        .collect();
    Fig12 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtimedroid_is_faster_but_needs_patches() {
        let fig = run();
        assert_eq!(fig.rows.len(), 8);
        for r in &fig.rows {
            // §5.7: "Compared with RCHDroid, RuntimeDroid is more efficient."
            assert!(r.runtimedroid_norm < r.rchdroid_norm, "{}", r.name);
            // Both beat stock.
            assert!(r.rchdroid_norm < 1.0, "{}", r.name);
            // Table 4's range vs zero.
            assert!((760..=2077).contains(&r.patch_loc), "{}", r.name);
            assert_eq!(r.rchdroid_loc, 0);
        }
    }

    #[test]
    fn deployment_constants_match_section_5_7() {
        assert_eq!(deployment::RCHDROID_SYSTEM_DEPLOY_MS, 92_870);
        assert_eq!(deployment::RUNTIMEDROID_PATCH_MS, (12_867, 161_598));
    }
}
