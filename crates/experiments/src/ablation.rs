//! Ablation study: what each of RCHDroid's design choices contributes.
//!
//! DESIGN.md calls for ablation benches on the design decisions the paper
//! motivates but does not isolate:
//!
//! * **coin-flipping** (§3.4) — with it off, every change creates a fresh
//!   sunny instance: steady-state latency degrades from the flip cost to
//!   the init cost (Fig. 10a's two RCHDroid lines collapse into one), and
//!   in-flight async callbacks go stale when the single-shadow invariant
//!   releases the previous shadow — the supervisor drops them (the update
//!   is lost) where stock Android would crash,
//! * **lazy migration** (§3.3) — with it off, async results still land
//!   safely (the shadow is alive, so no crash), but the foreground tree
//!   goes stale: correctness, not latency, is what migration buys,
//! * **threshold GC** (§3.5) — with an infinite `THRESH_T`, the shadow
//!   instance is never reclaimed: memory stays at the two-instance level
//!   forever instead of returning to baseline when the user stops
//!   rotating.

use droidsim_app::SimpleApp;
use droidsim_device::{Device, DeviceEvent, HandlingMode, HandlingPath};
use droidsim_fleet::{
    run_fleet, run_fleet_supervised, Digest, FleetConfig, FleetError, FleetOptions, FleetRun,
    TaskOutcome,
};
use droidsim_kernel::SimDuration;
use rch_workloads::BENCHMARK_BASE_MEMORY;
use rchdroid::{GcPolicy, RchOptions};

/// Outcome of one ablation arm.
#[derive(Debug, Clone)]
pub struct AblationArm {
    /// Arm label.
    pub label: &'static str,
    /// Mean steady-state handling latency (ms) over changes 2..=6.
    pub steady_latency_ms: f64,
    /// Whether the app survived the async-task scenario.
    pub survived: bool,
    /// Whether the foreground tree shows the async task's result.
    pub foreground_updated: bool,
    /// PSS (MiB) 90 s after the last change (GC had its chance).
    pub settled_memory_mib: f64,
}

impl AblationArm {
    /// A digest of every field, bit-exact for the float columns — what
    /// the supervised fleet journals per arm.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_str(self.label);
        d.write_f64(self.steady_latency_ms);
        d.write_u64(u64::from(self.survived));
        d.write_u64(u64::from(self.foreground_updated));
        d.write_f64(self.settled_memory_mib);
        d.finish()
    }
}

/// The full ablation table.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// All arms, full system first.
    pub arms: Vec<AblationArm>,
}

impl Ablation {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Ablation: contribution of each RCHDroid design choice\n");
        out.push_str(&format!(
            "{:<26} {:>12} {:>9} {:>11} {:>12}\n",
            "arm", "steady(ms)", "survives", "fg updated", "settled MiB"
        ));
        for a in &self.arms {
            out.push_str(&format!(
                "{:<26} {:>12.1} {:>9} {:>11} {:>12.2}\n",
                a.label,
                a.steady_latency_ms,
                a.survived,
                a.foreground_updated,
                a.settled_memory_mib
            ));
        }
        out
    }
}

/// Runs one arm: six rotations with an async task in flight, then a 90 s
/// idle period.
pub fn run_arm(label: &'static str, mode: HandlingMode) -> AblationArm {
    let mut device = Device::new(mode);
    let app = SimpleApp::with_views(4);
    let task = app.button_task();
    let component = device
        .install_and_launch(Box::new(app), BENCHMARK_BASE_MEMORY, 1.0)
        .expect("launch");

    device.start_async_on_foreground(task).expect("press");
    let mut latencies = Vec::new();
    for i in 0..6 {
        if let Ok(report) = device.rotate() {
            if i > 0 {
                latencies.push(report.latency.as_millis_f64());
            }
        }
        device.advance(SimDuration::from_secs(2));
    }
    device.advance(SimDuration::from_secs(90));

    let survived = !device.is_crashed(&component);
    let settled_memory_mib = device
        .memory_snapshot(&component)
        .map_or(0.0, |s| s.total_mib());

    // The correctness probe runs on a fresh device with a SINGLE change:
    // with more changes a coin flip can bring the directly-updated
    // instance back to the foreground and mask a missing migration.
    let foreground_updated = {
        let mut probe = Device::new(mode);
        let app = SimpleApp::with_views(4);
        let task = app.button_task();
        let c = probe
            .install_and_launch(Box::new(app), BENCHMARK_BASE_MEMORY, 1.0)
            .expect("launch");
        probe.start_async_on_foreground(task).expect("press");
        let _ = probe.rotate();
        probe.advance(SimDuration::from_secs(8));
        !probe.is_crashed(&c)
            && probe
                .process(&c)
                .ok()
                .and_then(|p| {
                    let fg = p.foreground_activity()?;
                    let img = fg.tree.find_by_id_name("image_0")?;
                    let drawable = fg.tree.view(img).ok()?.attrs.drawable.clone()?;
                    Some(drawable.0 == "loaded_0.png")
                })
                .unwrap_or(false)
    };

    AblationArm {
        label,
        steady_latency_ms: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        },
        survived,
        foreground_updated,
        settled_memory_mib,
    }
}

/// A GC policy that never collects.
pub fn gc_disabled() -> GcPolicy {
    GcPolicy::paper_default().with_thresh_t(SimDuration::from_secs(u64::MAX / 2_000_000))
}

/// The fixed arm matrix, full system first.
fn arm_matrix() -> Vec<(&'static str, HandlingMode)> {
    vec![
        ("full RCHDroid", HandlingMode::rchdroid_default()),
        (
            "no coin-flipping",
            HandlingMode::rchdroid_ablated(RchOptions {
                coin_flip: false,
                ..RchOptions::default()
            }),
        ),
        (
            "no lazy migration",
            HandlingMode::rchdroid_ablated(RchOptions {
                lazy_migration: false,
                ..RchOptions::default()
            }),
        ),
        (
            "no shadow GC",
            HandlingMode::RchDroid(gc_disabled(), RchOptions::default()),
        ),
        ("stock Android 10", HandlingMode::Android10),
    ]
}

/// Runs the full ablation, one fleet task per arm. Arm order in the
/// result is fixed (full system first) regardless of worker count.
pub fn run_with_config(cfg: &FleetConfig) -> Ablation {
    Ablation {
        arms: run_fleet(cfg, arm_matrix(), |_ctx, (label, mode)| {
            run_arm(label, mode)
        }),
    }
}

/// A crash-safe ablation run: per-arm outcomes plus the fleet report.
#[derive(Debug)]
pub struct AblationRun {
    /// Per-arm outcomes in arm order, digests, and the report.
    pub fleet: FleetRun<AblationArm>,
}

impl AblationRun {
    /// The complete table, when every arm produced a fresh row this run.
    pub fn ablation(&self) -> Option<Ablation> {
        let arms: Option<Vec<AblationArm>> = self
            .fleet
            .outcomes
            .iter()
            .map(|o| o.ok().cloned())
            .collect();
        arms.map(|arms| Ablation { arms })
    }

    /// The study digest, combining fresh and journal-recorded arms in
    /// arm order (`None` while any arm is quarantined).
    pub fn digest(&self) -> Option<u64> {
        self.fleet.combined_digest()
    }

    /// Renders the table (or the surviving arms) plus the fleet report,
    /// with the QUARANTINED footer when arms were lost.
    pub fn render(&self) -> String {
        let mut out = match self.ablation() {
            Some(study) => study.render(),
            None => {
                let mut out =
                    String::from("Ablation (partial): per-arm outcomes, supervised run\n");
                for (i, o) in self.fleet.outcomes.iter().enumerate() {
                    match o {
                        TaskOutcome::Ok(a) => out.push_str(&format!(
                            "{:<26} steady={:.1}ms survives={} settled={:.2}MiB\n",
                            a.label, a.steady_latency_ms, a.survived, a.settled_memory_mib
                        )),
                        TaskOutcome::Skipped { digest, .. } => out.push_str(&format!(
                            "arm {i}: (resumed from journal, digest {digest:016x})\n"
                        )),
                        _ => out.push_str(&format!("arm {i}: (LOST: {})\n", o.tag())),
                    }
                }
                out
            }
        };
        out.push('\n');
        out.push_str(&self.fleet.report.render());
        out
    }
}

/// Runs the ablation under fleet supervision (panic isolation, retries,
/// watchdog, and journal checkpoint/resume — see `droidsim-fleet`).
pub fn run_supervised(cfg: &FleetConfig, opts: &FleetOptions) -> Result<AblationRun, FleetError> {
    let fleet = run_fleet_supervised(
        cfg,
        opts,
        arm_matrix(),
        |_ctx, (label, mode)| run_arm(label, mode),
        AblationArm::digest,
    )?;
    Ok(AblationRun { fleet })
}

/// Runs the full ablation with the worker count taken from
/// `DROIDSIM_JOBS` (default: available cores).
pub fn run() -> Ablation {
    run_with_config(&FleetConfig::from_env(None, 0))
}

/// The events of an arm's device, for white-box assertions in tests.
pub fn paths_taken(mode: HandlingMode) -> Vec<HandlingPath> {
    let mut device = Device::new(mode);
    device
        .install_and_launch(
            Box::new(SimpleApp::with_views(4)),
            BENCHMARK_BASE_MEMORY,
            1.0,
        )
        .expect("launch");
    let mut paths = Vec::new();
    for _ in 0..4 {
        paths.push(device.rotate().expect("handled").path);
        device.advance(SimDuration::from_secs(1));
    }
    let _ = device
        .events()
        .iter()
        .filter(|e| matches!(e, DeviceEvent::GcPass { .. }));
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coin_flip_off_pays_init_every_time() {
        let paths = paths_taken(HandlingMode::rchdroid_ablated(RchOptions {
            coin_flip: false,
            ..RchOptions::default()
        }));
        assert!(
            paths.iter().all(|&p| p == HandlingPath::RchInit),
            "{paths:?}"
        );

        let full = paths_taken(HandlingMode::rchdroid_default());
        assert_eq!(full[0], HandlingPath::RchInit);
        assert!(full[1..].iter().all(|&p| p == HandlingPath::RchFlip));
    }

    #[test]
    fn coin_flip_is_the_latency_win() {
        let study = run();
        let full = &study.arms[0];
        let no_flip = &study.arms[1];
        assert!(
            no_flip.steady_latency_ms > full.steady_latency_ms + 50.0,
            "flip {} vs init {}",
            full.steady_latency_ms,
            no_flip.steady_latency_ms
        );
        // A second-order finding the ablation surfaces: the coin flip
        // also preserves in-flight async work. Without reuse, the
        // single-shadow invariant forces the previous shadow to be
        // released on every change, so a task still bound to it goes
        // stale — the supervisor drops the callback (rung-1 containment
        // of what stock Android surfaces as the NullPointerException
        // crash), and the update is silently lost.
        assert!(no_flip.survived, "supervision contains the stale callback");
        assert!(full.survived);

        // The lost update is visible in the fault ledger.
        let mut d = Device::new(HandlingMode::rchdroid_ablated(RchOptions {
            coin_flip: false,
            ..RchOptions::default()
        }));
        let app = SimpleApp::with_views(4);
        let task = app.button_task();
        let c = d
            .install_and_launch(Box::new(app), BENCHMARK_BASE_MEMORY, 1.0)
            .expect("launch");
        d.start_async_on_foreground(task).expect("press");
        let _ = d.rotate();
        d.advance(SimDuration::from_secs(1));
        let _ = d.rotate(); // releases the first shadow: the task is now stale
        d.advance(SimDuration::from_secs(8));
        assert!(!d.is_crashed(&c));
        assert_eq!(d.fault_metrics(&c).unwrap().site_count("stale-callback"), 1);
    }

    #[test]
    fn lazy_migration_is_the_correctness_win() {
        let study = run();
        let full = &study.arms[0];
        let no_migration = &study.arms[2];
        let stock = &study.arms[4];
        // Both RCHDroid arms survive (the shadow keeps the callback safe)…
        assert!(full.survived && no_migration.survived);
        // …but only full RCHDroid shows the async result in the foreground.
        assert!(full.foreground_updated);
        assert!(!no_migration.foreground_updated);
        // Stock crashes outright.
        assert!(!stock.survived);
    }

    #[test]
    fn gc_is_the_memory_win() {
        let study = run();
        let full = &study.arms[0];
        let no_gc = &study.arms[3];
        // After 90 idle seconds the full system has reclaimed the shadow;
        // the no-GC arm still carries the second instance.
        assert!(
            no_gc.settled_memory_mib > full.settled_memory_mib + 0.5,
            "no-GC {} vs full {}",
            no_gc.settled_memory_mib,
            full.settled_memory_mib
        );
    }
}
