//! Fig. 13: the four runtime-change-issue showcases — Twitter (login box
//! cleared), Disney+ (scroll reset), KJVBible (quiz timer reset) and
//! Orbot (bridge selection reset).
//!
//! The paper shows screenshots; the simulator shows the state values:
//! each app is driven to its "red box" state, the screen size changes,
//! and the state is read back under stock Android 10 and under RCHDroid.

use droidsim_device::{Device, HandlingMode};
use rch_workloads::top100_specs;

/// One showcase row.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// App name.
    pub name: String,
    /// The documented problem.
    pub problem: String,
    /// The user-visible state before the change.
    pub before: String,
    /// What stock Android shows after the change.
    pub after_stock: String,
    /// What RCHDroid shows after the change.
    pub after_rchdroid: String,
}

/// The showcase.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// The four example apps.
    pub rows: Vec<Fig13Row>,
}

impl Fig13 {
    /// Renders the showcase.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig. 13: runtime change issue examples (state before/after)\n");
        for r in &self.rows {
            out.push_str(&format!("\n{} — {}\n", r.name, r.problem));
            out.push_str(&format!("  before change:       {:?}\n", r.before));
            out.push_str(&format!("  after (Android-10):  {:?}\n", r.after_stock));
            out.push_str(&format!("  after (RCHDroid):    {:?}\n", r.after_rchdroid));
        }
        out
    }
}

/// The four apps Fig. 13 shows.
pub const SHOWCASE: [&str; 4] = ["Twitter", "Disney+", "KJVBible", "Orbot"];

fn state_after_one_change(spec: &rch_workloads::GenericAppSpec, mode: HandlingMode) -> String {
    let mut device = Device::new(mode);
    let probe = spec.build();
    let _ = device
        .install_and_launch(
            Box::new(spec.build()),
            spec.base_memory_bytes,
            spec.complexity,
        )
        .expect("launch");
    device
        .with_foreground_activity_mut(|a| probe.apply_user_state(a))
        .expect("foreground");
    let _ = device.rotate();
    device
        .with_foreground_activity_mut(|a| {
            probe
                .surviving_state(a)
                .first()
                .map(|(item, survived)| {
                    if *survived {
                        item.test_value.clone()
                    } else {
                        "<reset to default>".to_owned()
                    }
                })
                .unwrap_or_default()
        })
        .unwrap_or_else(|_| "<app crashed>".to_owned())
}

/// Runs the showcase.
pub fn run() -> Fig13 {
    let specs = top100_specs();
    let rows = SHOWCASE
        .iter()
        .map(|&name| {
            let spec = specs
                .iter()
                .find(|s| s.name == name)
                .expect("showcase app in Table 5");
            Fig13Row {
                name: spec.name.clone(),
                problem: spec.issue.clone().unwrap_or_default(),
                before: spec.state_items[0].test_value.clone(),
                after_stock: state_after_one_change(spec, HandlingMode::Android10),
                after_rchdroid: state_after_one_change(spec, HandlingMode::rchdroid_default()),
            }
        })
        .collect();
    Fig13 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_app, RunConfig};

    #[test]
    fn all_four_examples_lose_state_under_stock_and_keep_it_under_rchdroid() {
        let fig = run();
        assert_eq!(fig.rows.len(), 4);
        for r in &fig.rows {
            assert_eq!(r.after_stock, "<reset to default>", "{}", r.name);
            assert_eq!(r.after_rchdroid, r.before, "{}", r.name);
        }
    }

    #[test]
    fn scenario_runner_agrees() {
        // Cross-check via the standard single-change scenario.
        let specs = top100_specs();
        for &name in &SHOWCASE {
            let spec = specs.iter().find(|s| s.name == name).unwrap();
            let stock = run_app(spec, &RunConfig::new(HandlingMode::Android10).changes(1));
            let rch = run_app(
                spec,
                &RunConfig::new(HandlingMode::rchdroid_default()).changes(1),
            );
            assert!(stock.issue_observed(), "{name}");
            assert!(!rch.issue_observed(), "{name}");
        }
    }
}
