//! The static-vs-dynamic differential gate.
//!
//! For every corpus app under both handling schemes, the static
//! analyzer's [`droidsim_analysis::StaticVerdict`] must equal the
//! dynamic oracle's [`crate::detector::DetectionReport`] *field by
//! field* — crash flag, `lost_after_one`, `lost_after_two` and
//! `latent_after_two`, not just the boolean verdict. The analyzer
//! checks the simulator and the simulator checks the analyzer: a
//! disagreement means one of them mis-models the change protocol, and
//! the gate fails with a one-line repro recipe for exactly that app.
//!
//! The comparison fleet is digest-stable: rows come back in corpus
//! order regardless of `--jobs`, so CI diffs the `--jobs 1` and
//! `--jobs 4` digests for equality.

use crate::detector;
use droidsim_analysis::{predict, AnalysisMode};
use droidsim_device::HandlingMode;
use droidsim_fleet::{combine_ordered, run_fleet, Digest, FleetConfig};
use rch_workloads::{top100_specs, tp27_specs, GenericAppSpec};

/// The two (corpus, mode) axes, compared for one app.
#[derive(Debug, Clone)]
pub struct DifferentialRow {
    /// App name.
    pub app: String,
    /// Handling-scheme label (`"stock"` / `"rchdroid"`).
    pub mode: &'static str,
    /// Whether analyzer and oracle agree on every field.
    pub agreed: bool,
    /// Human-readable field diff when they do not.
    pub detail: String,
}

impl DifferentialRow {
    fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_str(&self.app);
        d.write_str(self.mode);
        d.write_u64(u64::from(self.agreed));
        d.write_str(&self.detail);
        d.finish()
    }
}

/// A whole differential run over one corpus.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// Corpus label (`"tp27"` / `"top100"`).
    pub corpus: &'static str,
    /// One row per (app, mode), corpus order, stock before rchdroid.
    pub rows: Vec<DifferentialRow>,
}

impl DifferentialReport {
    /// Rows where analyzer and oracle disagree.
    pub fn disagreements(&self) -> Vec<&DifferentialRow> {
        self.rows.iter().filter(|r| !r.agreed).collect()
    }

    /// Order-sensitive digest, identical for any worker count.
    pub fn digest(&self) -> u64 {
        combine_ordered(self.rows.iter().map(DifferentialRow::digest))
    }

    /// Renders the outcome; disagreeing rows carry a one-line repro.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in self.disagreements() {
            out.push_str(&format!(
                "DISAGREE [{}/{}] {}: {}\n  repro: cargo run -q --release -p rch-experiments \
                 --bin rchlint -- --differential --corpus {} --only '{}' --jobs 1\n",
                self.corpus, r.mode, r.app, r.detail, self.corpus, r.app,
            ));
        }
        out.push_str(&format!(
            "differential[{}]: {} checks, {} disagreement(s)\n",
            self.corpus,
            self.rows.len(),
            self.disagreements().len(),
        ));
        out
    }
}

fn diff_lists(field: &str, predicted: &[String], observed: &[String]) -> Option<String> {
    (predicted != observed).then(|| {
        format!("{field}: static predicts {predicted:?}, dynamic oracle observed {observed:?}")
    })
}

/// Compares one app under one mode.
fn compare(spec: &GenericAppSpec, mode: AnalysisMode) -> DifferentialRow {
    let predicted = predict(spec, mode);
    let handling = match mode {
        AnalysisMode::Stock => HandlingMode::Android10,
        AnalysisMode::RchDroid => HandlingMode::rchdroid_default(),
    };
    let observed = detector::check(spec, handling);
    let mut diffs = Vec::new();
    if predicted.crashed != observed.crashed {
        diffs.push(format!(
            "crashed: static predicts {}, dynamic oracle observed {}",
            predicted.crashed, observed.crashed
        ));
    }
    diffs.extend(diff_lists(
        "lost_after_one",
        &predicted.lost_after_one,
        &observed.lost_after_one,
    ));
    diffs.extend(diff_lists(
        "lost_after_two",
        &predicted.lost_after_two,
        &observed.lost_after_two,
    ));
    diffs.extend(diff_lists(
        "latent_after_two",
        &predicted.latent_after_two,
        &observed.latent_after_two,
    ));
    DifferentialRow {
        app: spec.name.clone(),
        mode: mode.label(),
        agreed: diffs.is_empty(),
        detail: diffs.join("; "),
    }
}

/// Resolves a corpus by name. `--only` filters to one app.
pub fn corpus_specs(corpus: &str, only: Option<&str>) -> Result<Vec<GenericAppSpec>, String> {
    let specs = match corpus {
        "tp27" => tp27_specs(),
        "top100" => top100_specs(),
        _ => return Err(format!("unknown corpus {corpus:?} (tp27|top100)")),
    };
    match only {
        None => Ok(specs),
        Some(name) => {
            let filtered: Vec<_> = specs.into_iter().filter(|s| s.name == name).collect();
            if filtered.is_empty() {
                return Err(format!("--only: no app named {name:?} in corpus {corpus}"));
            }
            Ok(filtered)
        }
    }
}

/// Runs the gate over one corpus, fleet-parallel: each app is one task
/// producing its (stock, rchdroid) row pair, so rows stay in corpus
/// order for any worker count.
pub fn run_corpus(
    corpus: &'static str,
    only: Option<&str>,
    cfg: &FleetConfig,
) -> Result<DifferentialReport, String> {
    let specs = corpus_specs(corpus, only)?;
    let pairs = run_fleet(cfg, specs, |_ctx, spec| {
        [
            compare(&spec, AnalysisMode::Stock),
            compare(&spec, AnalysisMode::RchDroid),
        ]
    });
    Ok(DifferentialReport {
        corpus,
        rows: pairs.into_iter().flatten().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tp27_gate_is_clean_and_jobs_invariant() {
        let serial = run_corpus("tp27", None, &FleetConfig::new(1, 0)).unwrap();
        assert_eq!(serial.rows.len(), 54);
        assert!(serial.disagreements().is_empty(), "{}", serial.render());
        let parallel = run_corpus("tp27", None, &FleetConfig::new(4, 0)).unwrap();
        assert_eq!(serial.digest(), parallel.digest());
    }

    #[test]
    fn top100_gate_is_clean() {
        let report = run_corpus("top100", None, &FleetConfig::new(2, 0)).unwrap();
        assert_eq!(report.rows.len(), 200);
        assert!(report.disagreements().is_empty(), "{}", report.render());
    }

    #[test]
    fn only_filter_and_unknown_corpus_are_validated() {
        let one = run_corpus("tp27", Some("DiskDiggerPro"), &FleetConfig::new(1, 0)).unwrap();
        assert_eq!(one.rows.len(), 2);
        assert!(one.disagreements().is_empty());
        assert!(run_corpus("tp27", Some("NoSuchApp"), &FleetConfig::new(1, 0)).is_err());
        assert!(corpus_specs("bogus", None).is_err());
    }

    #[test]
    fn a_disagreement_renders_a_repro_recipe() {
        let report = DifferentialReport {
            corpus: "tp27",
            rows: vec![DifferentialRow {
                app: "DemoApp".into(),
                mode: "stock",
                agreed: false,
                detail: "crashed: static predicts true, dynamic oracle observed false".into(),
            }],
        };
        let rendered = report.render();
        assert!(rendered.contains("DISAGREE [tp27/stock] DemoApp"));
        assert!(rendered.contains("--differential --corpus tp27 --only 'DemoApp' --jobs 1"));
        assert!(rendered.contains("1 disagreement(s)"));
    }
}
