//! The static-vs-dynamic differential gate.
//!
//! For every corpus app under all three handling schemes — stock
//! Android 10, RCHDroid, and the RuntimeDroid hot-reload baseline —
//! the static analyzer's [`droidsim_analysis::StaticVerdict`] must
//! equal the dynamic oracle's [`crate::detector::DetectionReport`]
//! *field by field*: crash flag, `lost_after_one`, `lost_after_two`
//! and `latent_after_two`, not just the boolean verdict. The analyzer
//! checks the simulator and the simulator checks the analyzer: a
//! disagreement means one of them mis-models the change protocol, and
//! the gate fails with a one-line repro recipe for exactly that app.
//!
//! The legacy corpora (`tp27`, `top100`) replay through the rotation
//! detector; the generated `dataloss` corpus replays through the
//! class-specific data-loss schedules (double rotation, async race,
//! process death with bundle, input in flight). Per-class loss rates
//! for the data-loss corpus are tabulated by [`dataloss_table`] —
//! computed statically, then pinned against the dynamic rows by the
//! gate itself.
//!
//! The comparison fleet is digest-stable: rows come back in corpus
//! order regardless of `--jobs`, so CI diffs the `--jobs 1` and
//! `--jobs 4` digests for equality.

use crate::detector;
use droidsim_analysis::{predict, AnalysisMode};
use droidsim_device::HandlingMode;
use droidsim_fleet::{combine_ordered, run_fleet, Digest, FleetConfig};
use rch_workloads::{dataloss_specs, top100_specs, tp27_specs, DataLossClass, GenericAppSpec};

/// The (corpus, mode) axes, compared for one app.
#[derive(Debug, Clone)]
pub struct DifferentialRow {
    /// App name.
    pub app: String,
    /// Handling-scheme label (`"stock"` / `"rchdroid"` / `"runtimedroid"`).
    pub mode: &'static str,
    /// Whether analyzer and oracle agree on every field.
    pub agreed: bool,
    /// Human-readable field diff when they do not.
    pub detail: String,
}

impl DifferentialRow {
    fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_str(&self.app);
        d.write_str(self.mode);
        d.write_u64(u64::from(self.agreed));
        d.write_str(&self.detail);
        d.finish()
    }
}

/// A whole differential run over one corpus.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// Corpus label (`"tp27"` / `"top100"` / `"dataloss"`).
    pub corpus: &'static str,
    /// One row per (app, mode), corpus order; stock, then rchdroid,
    /// then runtimedroid.
    pub rows: Vec<DifferentialRow>,
}

impl DifferentialReport {
    /// Rows where analyzer and oracle disagree.
    pub fn disagreements(&self) -> Vec<&DifferentialRow> {
        self.rows.iter().filter(|r| !r.agreed).collect()
    }

    /// Order-sensitive digest, identical for any worker count.
    pub fn digest(&self) -> u64 {
        combine_ordered(self.rows.iter().map(DifferentialRow::digest))
    }

    /// Renders the outcome; disagreeing rows carry a one-line repro.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in self.disagreements() {
            out.push_str(&format!(
                "DISAGREE [{}/{}] {}: {}\n  repro: cargo run -q --release -p rch-experiments \
                 --bin rchlint -- --differential --corpus {} --only '{}' --jobs 1\n",
                self.corpus, r.mode, r.app, r.detail, self.corpus, r.app,
            ));
        }
        out.push_str(&format!(
            "differential[{}]: {} checks, {} disagreement(s)\n",
            self.corpus,
            self.rows.len(),
            self.disagreements().len(),
        ));
        out
    }
}

fn diff_lists(field: &str, predicted: &[String], observed: &[String]) -> Option<String> {
    (predicted != observed).then(|| {
        format!("{field}: static predicts {predicted:?}, dynamic oracle observed {observed:?}")
    })
}

/// Compares one app under one mode. Apps carrying a data-loss scenario
/// replay through the class-specific schedules; legacy corpus apps
/// through the rotation detector.
fn compare(spec: &GenericAppSpec, mode: AnalysisMode) -> DifferentialRow {
    let predicted = predict(spec, mode);
    let handling = match mode {
        AnalysisMode::Stock => HandlingMode::Android10,
        AnalysisMode::RchDroid => HandlingMode::rchdroid_default(),
        AnalysisMode::RuntimeDroid => HandlingMode::RuntimeDroid,
    };
    let observed = if spec.dataloss.is_some() {
        detector::check_dataloss(spec, handling)
    } else {
        detector::check(spec, handling)
    };
    let mut diffs = Vec::new();
    if predicted.crashed != observed.crashed {
        diffs.push(format!(
            "crashed: static predicts {}, dynamic oracle observed {}",
            predicted.crashed, observed.crashed
        ));
    }
    diffs.extend(diff_lists(
        "lost_after_one",
        &predicted.lost_after_one,
        &observed.lost_after_one,
    ));
    diffs.extend(diff_lists(
        "lost_after_two",
        &predicted.lost_after_two,
        &observed.lost_after_two,
    ));
    diffs.extend(diff_lists(
        "latent_after_two",
        &predicted.latent_after_two,
        &observed.latent_after_two,
    ));
    DifferentialRow {
        app: spec.name.clone(),
        mode: mode.label(),
        agreed: diffs.is_empty(),
        detail: diffs.join("; "),
    }
}

/// Resolves a corpus by name. `--only` filters to one app.
pub fn corpus_specs(corpus: &str, only: Option<&str>) -> Result<Vec<GenericAppSpec>, String> {
    let specs = match corpus {
        "tp27" => tp27_specs(),
        "top100" => top100_specs(),
        "dataloss" => dataloss_specs(),
        _ => return Err(format!("unknown corpus {corpus:?} (tp27|top100|dataloss)")),
    };
    match only {
        None => Ok(specs),
        Some(name) => {
            let filtered: Vec<_> = specs.into_iter().filter(|s| s.name == name).collect();
            if filtered.is_empty() {
                return Err(format!("--only: no app named {name:?} in corpus {corpus}"));
            }
            Ok(filtered)
        }
    }
}

/// Runs the gate over one corpus, fleet-parallel: each app is one task
/// producing its (stock, rchdroid, runtimedroid) row triple, so rows
/// stay in corpus order for any worker count.
pub fn run_corpus(
    corpus: &'static str,
    only: Option<&str>,
    cfg: &FleetConfig,
) -> Result<DifferentialReport, String> {
    let specs = corpus_specs(corpus, only)?;
    let triples = run_fleet(cfg, specs, |_ctx, spec| {
        [
            compare(&spec, AnalysisMode::Stock),
            compare(&spec, AnalysisMode::RchDroid),
            compare(&spec, AnalysisMode::RuntimeDroid),
        ]
    });
    Ok(DifferentialReport {
        corpus,
        rows: triples.into_iter().flatten().collect(),
    })
}

/// One row of the per-class data-loss table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataLossTableRow {
    /// Class label (e.g. `"stop-restart"`).
    pub class: &'static str,
    /// Generated apps in this class.
    pub apps: u64,
    /// Apps with predicted loss (or crash) per mode, in
    /// [`AnalysisMode::ALL`] order: stock, rchdroid, runtimedroid.
    pub lossy: [u64; 3],
}

/// The §Table-dataloss study: per-class loss rates under the three
/// runtimes, over the generated corpus. Computed from the *static*
/// verdicts alone; the differential gate holds those equal to the
/// dynamic oracle row by row, so the table doubles as the gate's
/// summary artifact (`results/table_dataloss.csv`).
pub fn dataloss_table() -> Vec<DataLossTableRow> {
    let specs = dataloss_specs();
    DataLossClass::ALL
        .iter()
        .map(|class| {
            let mut row = DataLossTableRow {
                class: class.label(),
                apps: 0,
                lossy: [0; 3],
            };
            for spec in specs
                .iter()
                .filter(|s| s.dataloss.as_ref().map(|dl| dl.class) == Some(*class))
            {
                row.apps += 1;
                for (i, mode) in AnalysisMode::ALL.iter().enumerate() {
                    row.lossy[i] += u64::from(predict(spec, *mode).has_issue());
                }
            }
            row
        })
        .collect()
}

/// Renders [`dataloss_table`] as the committed CSV, byte-stable.
pub fn dataloss_table_csv(rows: &[DataLossTableRow]) -> String {
    let mut out = String::from(
        "class,apps,stock_lossy,stock_rate,rchdroid_lossy,rchdroid_rate,\
         runtimedroid_lossy,runtimedroid_rate\n",
    );
    for r in rows {
        let rate = |n: u64| format!("{:.3}", n as f64 / r.apps as f64);
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.class,
            r.apps,
            r.lossy[0],
            rate(r.lossy[0]),
            r.lossy[1],
            rate(r.lossy[1]),
            r.lossy[2],
            rate(r.lossy[2]),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tp27_gate_is_clean_and_jobs_invariant() {
        let serial = run_corpus("tp27", None, &FleetConfig::new(1, 0)).unwrap();
        assert_eq!(serial.rows.len(), 81);
        assert!(serial.disagreements().is_empty(), "{}", serial.render());
        let parallel = run_corpus("tp27", None, &FleetConfig::new(4, 0)).unwrap();
        assert_eq!(serial.digest(), parallel.digest());
    }

    #[test]
    fn top100_gate_is_clean() {
        let report = run_corpus("top100", None, &FleetConfig::new(2, 0)).unwrap();
        assert_eq!(report.rows.len(), 300);
        assert!(report.disagreements().is_empty(), "{}", report.render());
    }

    #[test]
    fn dataloss_gate_is_clean_and_jobs_invariant() {
        let serial = run_corpus("dataloss", None, &FleetConfig::new(1, 0)).unwrap();
        assert_eq!(serial.rows.len(), dataloss_specs().len() * 3);
        assert!(serial.disagreements().is_empty(), "{}", serial.render());
        let parallel = run_corpus("dataloss", None, &FleetConfig::new(4, 0)).unwrap();
        assert_eq!(serial.digest(), parallel.digest());
    }

    #[test]
    fn dataloss_table_covers_the_whole_corpus() {
        let rows = dataloss_table();
        assert_eq!(rows.len(), DataLossClass::ALL.len());
        let total: u64 = rows.iter().map(|r| r.apps).sum();
        assert_eq!(total, dataloss_specs().len() as u64);
        // Process death with only a transient field loses in every
        // mode; bundle/store fields survive — the class is never 100%
        // lossy but never 0% either.
        let pd = rows.iter().find(|r| r.class == "process-death").unwrap();
        assert_eq!(pd.lossy[0], pd.lossy[1]);
        assert_eq!(
            pd.lossy[1], pd.lossy[2],
            "process death is mode-independent"
        );
        assert!(pd.lossy[0] > 0 && pd.lossy[0] < pd.apps);
        // RuntimeDroid fixes stop-restart entirely but loses every
        // sub-state app: the headline asymmetry of the study.
        let sr = rows.iter().find(|r| r.class == "stop-restart").unwrap();
        assert_eq!(sr.lossy[2], 0, "hot reload keeps the instance");
        let ss = rows.iter().find(|r| r.class == "sub-state-owner").unwrap();
        assert_eq!(ss.lossy[2], ss.apps, "onCreate never re-runs");
        let csv = dataloss_table_csv(&rows);
        assert!(csv.starts_with("class,apps,stock_lossy"));
        assert_eq!(csv.lines().count(), 1 + rows.len());
    }

    #[test]
    fn only_filter_and_unknown_corpus_are_validated() {
        let one = run_corpus("tp27", Some("DiskDiggerPro"), &FleetConfig::new(1, 0)).unwrap();
        assert_eq!(one.rows.len(), 3);
        assert!(one.disagreements().is_empty());
        assert!(run_corpus("tp27", Some("NoSuchApp"), &FleetConfig::new(1, 0)).is_err());
        assert!(corpus_specs("bogus", None).is_err());
    }

    #[test]
    fn a_disagreement_renders_a_repro_recipe() {
        let report = DifferentialReport {
            corpus: "tp27",
            rows: vec![DifferentialRow {
                app: "DemoApp".into(),
                mode: "stock",
                agreed: false,
                detail: "crashed: static predicts true, dynamic oracle observed false".into(),
            }],
        };
        let rendered = report.render();
        assert!(rendered.contains("DISAGREE [tp27/stock] DemoApp"));
        assert!(rendered.contains("--differential --corpus tp27 --only 'DemoApp' --jobs 1"));
        assert!(rendered.contains("1 disagreement(s)"));
    }
}
