//! Fig. 9: CPU and memory usage over time for the 4-ImageView benchmark
//! app, Android-10 vs RCHDroid.
//!
//! The scripted timeline follows the paper's artifact workflow (§A.5):
//!
//! 1. first runtime change (`wm size 1080x1920`),
//! 2. button touch → a 5-second AsyncTask that updates the ImageViews,
//! 3. second runtime change (`wm size reset`) while the task runs,
//! 4. the task returns: Android-10 throws `NullPointerException` and the
//!    process dies (its memory drops to 0); RCHDroid lazily migrates the
//!    updates to the sunny tree.
//!
//! The paper's x-axis tick labels are in profiler time units; here the
//! same event ordering plays out on a seconds axis (change at 1.7 s,
//! touch at 6.7 s, change at 7.9 s, task return at 11.7 s). CPU
//! utilisation per handling burst is the one calibrated free parameter,
//! chosen so sampled peaks match the paper's 11 % (Android-10), 15 %
//! (RCHDroid first change) and 12 % (RCHDroid second change).

use droidsim_device::{Device, DeviceEvent, HandlingMode, HandlingPath};
use droidsim_kernel::{SimDuration, SimTime};
use droidsim_metrics::{TracePoint, Tracer};
use rch_workloads::{benchmark_app, BENCHMARK_BASE_MEMORY};

/// Per-path CPU utilisation during a handling burst (calibrated; see
/// module docs).
fn burst_utilisation(path: HandlingPath) -> f64 {
    match path {
        HandlingPath::Relaunch => 0.39,
        HandlingPath::RchInit => 0.46,
        HandlingPath::RchFlip => 0.67,
        // The fallback replays the stock restart path.
        HandlingPath::RchFallback => 0.39,
        HandlingPath::RuntimeDroidInPlace => 0.45,
        HandlingPath::HandledByApp => 0.30,
        HandlingPath::NoChange => 0.0,
    }
}

/// The sampled traces for one system.
#[derive(Debug, Clone)]
pub struct SystemTrace {
    /// Label ("Android-10" / "RCHDroid").
    pub label: &'static str,
    /// Sampled points.
    pub points: Vec<TracePoint>,
    /// Whether the app crashed during the run.
    pub crashed: bool,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Stock trace (ends in a crash).
    pub android10: SystemTrace,
    /// RCHDroid trace (survives).
    pub rchdroid: SystemTrace,
}

impl Fig9 {
    /// Renders both traces side by side.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig. 9: CPU and memory usage over time (benchmark app, 4 ImageViews)\n");
        out.push_str(&format!(
            "{:>6} | {:>8} {:>9} | {:>8} {:>9}\n",
            "t(s)", "A10 cpu%", "A10 MiB", "RCH cpu%", "RCH MiB"
        ));
        for (a, r) in self.android10.points.iter().zip(&self.rchdroid.points) {
            out.push_str(&format!(
                "{:>6.1} | {:>8.1} {:>9.2} | {:>8.1} {:>9.2}\n",
                a.at.as_secs_f64(),
                a.cpu_percent,
                a.memory_mib,
                r.cpu_percent,
                r.memory_mib
            ));
        }
        out.push_str(&format!(
            "=> Android-10 crashed: {} (memory drops to 0); RCHDroid crashed: {}\n",
            self.android10.crashed, self.rchdroid.crashed
        ));
        out
    }
}

/// Runs the scripted timeline under one mode and samples the trace.
pub fn run_mode(mode: HandlingMode, label: &'static str) -> SystemTrace {
    let mut device = Device::new(mode);
    let app = benchmark_app(4);
    let task = app.button_task();
    let component = device
        .install_and_launch(Box::new(app), BENCHMARK_BASE_MEMORY, 1.0)
        .expect("launch");

    let mut tracer = Tracer::new(SimDuration::from_millis(500));
    let note_memory = |device: &Device, tracer: &mut Tracer| {
        let mib = device
            .memory_snapshot(&component)
            .map_or(0.0, |s| s.total_mib());
        tracer.record_memory(device.now(), mib);
    };
    note_memory(&device, &mut tracer);

    // t = 1.7 s: first runtime change.
    device.advance(SimTime::from_millis(1_700) - device.now());
    let _ = device.rotate();
    note_memory(&device, &mut tracer);

    // t = 6.7 s: button touch starts the 5 s AsyncTask.
    device.advance(SimTime::from_millis(6_700) - device.now());
    let _ = device.start_async_on_foreground(task);

    // t = 7.9 s: second runtime change while the task runs.
    device.advance(SimTime::from_millis(7_900) - device.now());
    let _ = device.rotate();
    note_memory(&device, &mut tracer);

    // t = 14 s: the task returned at 11.7 s.
    device.advance(SimTime::from_secs(14) - device.now());
    note_memory(&device, &mut tracer);

    // Busy intervals from the event log.
    for event in device.events() {
        match event {
            DeviceEvent::ConfigChange {
                at, latency, path, ..
            } => {
                tracer.record_busy(*at, *latency, burst_utilisation(*path));
            }
            DeviceEvent::AsyncDelivered {
                at,
                migration_latency: Some(d),
                ..
            } => {
                tracer.record_busy(*at, *d, 0.5);
            }
            DeviceEvent::Crash { at, .. } => {
                tracer.record_memory(*at, 0.0);
            }
            _ => {}
        }
    }

    SystemTrace {
        label,
        points: tracer.sample(SimTime::from_secs(14)),
        crashed: device.is_crashed(&component),
    }
}

/// Runs the full Fig. 9 experiment.
pub fn run() -> Fig9 {
    Fig9 {
        android10: run_mode(HandlingMode::Android10, "Android-10"),
        rchdroid: run_mode(HandlingMode::rchdroid_default(), "RCHDroid"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn android10_crashes_and_memory_drops_to_zero() {
        let fig = run();
        assert!(fig.android10.crashed);
        assert_eq!(fig.android10.points.last().unwrap().memory_mib, 0.0);
    }

    #[test]
    fn rchdroid_survives_with_memory_intact() {
        let fig = run();
        assert!(!fig.rchdroid.crashed);
        let last = fig.rchdroid.points.last().unwrap();
        assert!(
            last.memory_mib > 40.0,
            "process alive: {} MiB",
            last.memory_mib
        );
    }

    #[test]
    fn cpu_peaks_match_the_papers_ordering() {
        let fig = run();
        let peak_in = |points: &[TracePoint], from_s: f64, to_s: f64| {
            points
                .iter()
                .filter(|p| {
                    let t = p.at.as_secs_f64();
                    t >= from_s && t <= to_s
                })
                .map(|p| p.cpu_percent)
                .fold(0.0f64, f64::max)
        };
        // First change at 1.7 s.
        let a10_first = peak_in(&fig.android10.points, 1.5, 3.0);
        let rch_first = peak_in(&fig.rchdroid.points, 1.5, 3.0);
        // Second change at 7.9 s.
        let rch_second = peak_in(&fig.rchdroid.points, 7.5, 9.0);
        assert!(
            (a10_first - 11.0).abs() < 2.5,
            "Android-10 ≈ 11%: {a10_first:.1}"
        );
        assert!(
            (rch_first - 15.0).abs() < 2.5,
            "RCHDroid init ≈ 15%: {rch_first:.1}"
        );
        assert!(
            (rch_second - 12.0).abs() < 2.5,
            "RCHDroid flip ≈ 12%: {rch_second:.1}"
        );
        assert!(
            rch_second < rch_first,
            "coin flip reduces the second-change CPU cost"
        );
    }

    #[test]
    fn rchdroid_memory_rises_after_first_change() {
        let fig = run();
        let before = fig
            .rchdroid
            .points
            .iter()
            .find(|p| p.at.as_secs_f64() >= 1.0)
            .unwrap();
        let after = fig
            .rchdroid
            .points
            .iter()
            .find(|p| p.at.as_secs_f64() >= 3.0)
            .unwrap();
        assert!(
            after.memory_mib > before.memory_mib,
            "shadow instance retained"
        );
    }
}
