//! Fig. 10: scalability with the number of views.
//!
//! (a) Runtime change handling time for Android-10, RCHDroid (steady
//!     state / coin flip) and RCHDroid-init (first change) over the
//!     benchmark apps with 2⁰ … 2⁴ ImageViews. Paper: RCHDroid flat at
//!     89.2 ms; Android-10 ≈ 141.8 ms; init grows 154.6 → 180.2 ms.
//! (b) Asynchronous view-tree migration time over the same sweep,
//!     measured from actual lazy-migration passes. Paper: linear,
//!     8.6 → 20.2 ms.

use droidsim_device::{Device, DeviceEvent, HandlingMode, HandlingPath};
use droidsim_fleet::{
    combine_ordered, run_fleet, run_fleet_supervised, Digest, FleetConfig, FleetError,
    FleetOptions, FleetRun, TaskOutcome,
};
use droidsim_kernel::SimDuration;
use rch_workloads::{benchmark_app, view_sweep, BENCHMARK_BASE_MEMORY};

/// One sweep point of Fig. 10(a).
#[derive(Debug, Clone, Copy)]
pub struct Fig10aRow {
    /// ImageViews in the benchmark app.
    pub views: usize,
    /// Stock relaunch latency (ms).
    pub android10_ms: f64,
    /// RCHDroid steady-state (flip) latency (ms).
    pub rchdroid_ms: f64,
    /// RCHDroid first-change latency (ms).
    pub rchdroid_init_ms: f64,
}

/// One sweep point of Fig. 10(b).
#[derive(Debug, Clone, Copy)]
pub struct Fig10bRow {
    /// ImageViews updated by the async task.
    pub views: usize,
    /// Lazy-migration latency for the task's return (ms).
    pub migration_ms: f64,
    /// Stock handling time, shown by the paper as the comparison line.
    pub android10_ms: f64,
}

/// Both panels.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Panel (a).
    pub a: Vec<Fig10aRow>,
    /// Panel (b).
    pub b: Vec<Fig10bRow>,
}

/// The digest of one sweep point — both panels' values, bit-exact.
pub fn point_digest(point: &(Fig10aRow, Fig10bRow)) -> u64 {
    let (a, b) = point;
    let mut d = Digest::new();
    d.write_u64(a.views as u64);
    d.write_f64(a.android10_ms);
    d.write_f64(a.rchdroid_ms);
    d.write_f64(a.rchdroid_init_ms);
    d.write_f64(b.migration_ms);
    d.write_f64(b.android10_ms);
    d.finish()
}

impl Fig10 {
    /// Per-sweep-point digests (both panels' values, bit-exact), in
    /// sweep order.
    pub fn digests(&self) -> Vec<u64> {
        self.a
            .iter()
            .zip(&self.b)
            .map(|(a, b)| point_digest(&(*a, *b)))
            .collect()
    }

    /// One digest over the whole sweep, folded in sweep order.
    pub fn digest(&self) -> u64 {
        combine_ordered(self.digests())
    }

    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig. 10(a): runtime change handling time vs #views (ms)\n");
        out.push_str(&format!(
            "{:>6} {:>12} {:>10} {:>14}\n",
            "views", "Android-10", "RCHDroid", "RCHDroid-init"
        ));
        for r in &self.a {
            out.push_str(&format!(
                "{:>6} {:>12.1} {:>10.1} {:>14.1}\n",
                r.views, r.android10_ms, r.rchdroid_ms, r.rchdroid_init_ms
            ));
        }
        out.push_str("\nFig. 10(b): async view-tree migration time vs #views (ms)\n");
        out.push_str(&format!(
            "{:>6} {:>12} {:>12}\n",
            "views", "migration", "Android-10"
        ));
        for r in &self.b {
            out.push_str(&format!(
                "{:>6} {:>12.2} {:>12.1}\n",
                r.views, r.migration_ms, r.android10_ms
            ));
        }
        out
    }
}

/// Measures one view count.
fn measure(views: usize) -> (Fig10aRow, Fig10bRow) {
    // Android-10 relaunch latency.
    let mut stock = Device::new(HandlingMode::Android10);
    stock
        .install_and_launch(Box::new(benchmark_app(views)), BENCHMARK_BASE_MEMORY, 1.0)
        .expect("launch");
    let android10_ms = stock.rotate().expect("rotate").latency.as_millis_f64();

    // RCHDroid: first change (init), then steady-state flips; plus the
    // async migration measurement on the same device.
    let mut rch = Device::new(HandlingMode::rchdroid_default());
    let app = benchmark_app(views);
    let task = app.button_task();
    rch.install_and_launch(Box::new(app), BENCHMARK_BASE_MEMORY, 1.0)
        .expect("launch");

    rch.start_async_on_foreground(task).expect("button press");
    let init = rch.rotate().expect("first change");
    assert_eq!(init.path, HandlingPath::RchInit);

    // Let the 5 s task return onto the shadow instance and migrate, then
    // measure the steady-state flip.
    rch.advance(SimDuration::from_secs(8));
    let flip = rch.rotate().expect("second change");
    assert_eq!(flip.path, HandlingPath::RchFlip);
    let migration_ms = rch
        .events()
        .iter()
        .find_map(|e| match e {
            DeviceEvent::AsyncDelivered {
                migration_latency: Some(d),
                ..
            } => Some(d.as_millis_f64()),
            _ => None,
        })
        .expect("the task's updates were migrated");

    (
        Fig10aRow {
            views,
            android10_ms,
            rchdroid_ms: flip.latency.as_millis_f64(),
            rchdroid_init_ms: init.latency.as_millis_f64(),
        },
        Fig10bRow {
            views,
            migration_ms,
            android10_ms,
        },
    )
}

/// Runs the full sweep, one fleet task per view count. Each point runs
/// two fresh devices of its own, so any worker count reproduces the
/// serial rows exactly.
pub fn run_with_config(cfg: &FleetConfig) -> Fig10 {
    let (a, b) = run_fleet(cfg, view_sweep(), |_ctx, views| measure(views))
        .into_iter()
        .unzip();
    Fig10 { a, b }
}

/// Runs the full sweep with the worker count taken from `DROIDSIM_JOBS`
/// (default: available cores).
pub fn run() -> Fig10 {
    run_with_config(&FleetConfig::from_env(None, 0))
}

/// A crash-safe sweep run: per-point outcomes plus the fleet report.
#[derive(Debug)]
pub struct Fig10Run {
    /// Per-point outcomes in sweep order, digests, and the report.
    pub fleet: FleetRun<(Fig10aRow, Fig10bRow)>,
}

impl Fig10Run {
    /// Both panels, when every point produced a fresh row this run.
    pub fn figure(&self) -> Option<Fig10> {
        let points: Option<Vec<(Fig10aRow, Fig10bRow)>> = self
            .fleet
            .outcomes
            .iter()
            .map(|o| o.ok().cloned())
            .collect();
        points.map(|pts| {
            let (a, b) = pts.into_iter().unzip();
            Fig10 { a, b }
        })
    }

    /// The sweep digest, combining fresh and journal-recorded points in
    /// sweep order (`None` while any point is quarantined).
    pub fn digest(&self) -> Option<u64> {
        self.fleet.combined_digest()
    }

    /// Renders the figure (or the surviving points) plus the fleet
    /// report, with the QUARANTINED footer when points were lost.
    pub fn render(&self) -> String {
        let mut out = match self.figure() {
            Some(fig) => fig.render(),
            None => {
                let mut out =
                    String::from("Fig. 10 (partial): per-point outcomes, supervised run\n");
                for (i, o) in self.fleet.outcomes.iter().enumerate() {
                    match o {
                        TaskOutcome::Ok((a, b)) => out.push_str(&format!(
                            "views={:<3} a10={:.1}ms flip={:.1}ms migration={:.2}ms\n",
                            a.views, a.android10_ms, a.rchdroid_ms, b.migration_ms
                        )),
                        TaskOutcome::Skipped { digest, .. } => out.push_str(&format!(
                            "point {i}: (resumed from journal, digest {digest:016x})\n"
                        )),
                        _ => out.push_str(&format!("point {i}: (LOST: {})\n", o.tag())),
                    }
                }
                out
            }
        };
        out.push('\n');
        out.push_str(&self.fleet.report.render());
        out
    }
}

/// Runs the sweep under fleet supervision (panic isolation, retries,
/// watchdog, and journal checkpoint/resume — see `droidsim-fleet`).
pub fn run_supervised(cfg: &FleetConfig, opts: &FleetOptions) -> Result<Fig10Run, FleetError> {
    let fleet = run_fleet_supervised(
        cfg,
        opts,
        view_sweep(),
        |_ctx, views| measure(views),
        point_digest,
    )?;
    Ok(Fig10Run { fleet })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_a_matches_the_papers_shape() {
        let fig = run();
        assert_eq!(fig.a.len(), 5);
        // RCHDroid is flat at 89.2 ms.
        for r in &fig.a {
            assert!(
                (r.rchdroid_ms - 89.2).abs() < 0.5,
                "flip({}) = {}",
                r.views,
                r.rchdroid_ms
            );
        }
        // Android-10 near 141.8 ms across the sweep.
        for r in &fig.a {
            assert!(
                (r.android10_ms - 141.8).abs() < 8.0,
                "a10({}) = {}",
                r.views,
                r.android10_ms
            );
        }
        // Init grows from ≈154.6 to ≈180.2 ms.
        let first = fig.a.first().unwrap();
        let last = fig.a.last().unwrap();
        assert!(
            (first.rchdroid_init_ms - 154.6).abs() < 4.0,
            "{}",
            first.rchdroid_init_ms
        );
        assert!(
            (last.rchdroid_init_ms - 180.2).abs() < 4.0,
            "{}",
            last.rchdroid_init_ms
        );
        // And init is monotonically increasing.
        for pair in fig.a.windows(2) {
            assert!(pair[1].rchdroid_init_ms > pair[0].rchdroid_init_ms);
        }
    }

    #[test]
    fn panel_b_is_linear_from_8_6_to_20_2() {
        let fig = run();
        let first = fig.b.first().unwrap();
        let last = fig.b.last().unwrap();
        assert!(
            (first.migration_ms - 8.6).abs() < 0.3,
            "{}",
            first.migration_ms
        );
        assert!(
            (last.migration_ms - 20.2).abs() < 0.5,
            "{}",
            last.migration_ms
        );
        // Migration is far cheaper than a stock restart at every point.
        for r in &fig.b {
            assert!(r.migration_ms < r.android10_ms / 5.0, "views={}", r.views);
        }
    }

    #[test]
    fn ordering_holds_at_every_sweep_point() {
        let fig = run();
        for r in &fig.a {
            assert!(r.rchdroid_ms < r.android10_ms);
            assert!(r.android10_ms < r.rchdroid_init_ms);
        }
    }
}
