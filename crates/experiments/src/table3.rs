//! Table 3: effectiveness of RCHDroid on the TP-27 set.
//!
//! For each app the scenario runs once under stock Android 10 (confirming
//! the documented issue reproduces) and once under RCHDroid (checking
//! whether the issue is gone). The paper's result: 25 of 27 fixed; the
//! two exceptions hold user state in unsaved member fields.

use crate::scenario::{run_app, RunConfig};
use droidsim_device::HandlingMode;
use rch_workloads::{tp27_specs, GenericAppSpec};

/// One row of the generated table.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// 1-based app number.
    pub number: usize,
    /// App name.
    pub name: String,
    /// Download bucket.
    pub downloads: &'static str,
    /// The documented issue.
    pub issue: String,
    /// Whether the issue reproduced under stock Android 10.
    pub issue_under_stock: bool,
    /// Whether RCHDroid fixed it.
    pub fixed_by_rchdroid: bool,
}

/// The generated table plus its summary.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// All 27 rows.
    pub rows: Vec<Table3Row>,
}

impl Table3 {
    /// Apps whose issue RCHDroid fixed.
    pub fn fixed_count(&self) -> usize {
        self.rows.iter().filter(|r| r.fixed_by_rchdroid).count()
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Table 3: Results of 27 apps running on RCHDroid\n");
        out.push_str(&format!(
            "{:<3} {:<18} {:<10} {:<55} {}\n",
            "No.", "App Name", "Downloads", "Issue of Current Android Design", "RCHDroid"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<3} {:<18} {:<10} {:<55} {}\n",
                r.number,
                r.name,
                r.downloads,
                r.issue,
                if r.fixed_by_rchdroid {
                    "fixed"
                } else {
                    "NOT fixed"
                }
            ));
        }
        out.push_str(&format!(
            "=> RCHDroid addresses {}/{} runtime issues\n",
            self.fixed_count(),
            self.rows.len()
        ));
        out
    }
}

/// Runs the Table 3 experiment.
pub fn run() -> Table3 {
    let rows = tp27_specs()
        .iter()
        .enumerate()
        .map(|(i, spec)| evaluate(i + 1, spec))
        .collect();
    Table3 { rows }
}

fn evaluate(number: usize, spec: &GenericAppSpec) -> Table3Row {
    // The paper's check (§6 procedure, likewise for Table 3): change the
    // configuration once while the app holds state, and observe whether
    // the state is restored on what the user now sees. A single change is
    // essential: after an even number of changes RCHDroid has flipped the
    // *original* instance back to the foreground, which would mask even
    // member-state loss.
    let single = RunConfig::new(HandlingMode::Android10).changes(1);
    let stock = run_app(spec, &single);
    let rch = run_app(
        spec,
        &RunConfig::new(HandlingMode::rchdroid_default()).changes(1),
    );
    Table3Row {
        number,
        name: spec.name.clone(),
        downloads: spec.downloads,
        issue: spec.issue.clone().unwrap_or_default(),
        issue_under_stock: stock.issue_observed(),
        fixed_by_rchdroid: !rch.issue_observed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_25_of_27() {
        let table = run();
        assert_eq!(table.rows.len(), 27);
        // Every documented issue reproduces under stock.
        assert!(
            table.rows.iter().all(|r| r.issue_under_stock),
            "issues reproduce"
        );
        // 25 of 27 fixed, failing exactly on #9 and #10.
        assert_eq!(table.fixed_count(), 25);
        let unfixed: Vec<usize> = table
            .rows
            .iter()
            .filter(|r| !r.fixed_by_rchdroid)
            .map(|r| r.number)
            .collect();
        assert_eq!(unfixed, vec![9, 10]);
    }

    #[test]
    fn render_contains_summary() {
        let table = run();
        let text = table.render();
        assert!(text.contains("25/27"));
        assert!(text.contains("DiskDiggerPro"));
    }
}
