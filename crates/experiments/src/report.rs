//! CSV export: every figure's series as a plottable file.
//!
//! The paper's artifact produces gnuplot-able logs; this module writes
//! one CSV per figure so the plots can be regenerated with any tool:
//! `cargo run --release -p rch-experiments --bin export -- <dir>`.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Writes one CSV file; returns its path.
fn write_csv(dir: &Path, name: &str, header: &str, rows: &[String]) -> std::io::Result<PathBuf> {
    let path = dir.join(name);
    let mut file = fs::File::create(&path)?;
    writeln!(file, "{header}")?;
    for row in rows {
        writeln!(file, "{row}")?;
    }
    Ok(path)
}

/// Exports every figure's data as CSV into `dir` (created if missing).
/// Returns the written paths.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn export_all(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();

    let fig7 = crate::fig7::run();
    written.push(write_csv(
        dir,
        "fig07_handling_time.csv",
        "app,android10_ms,rchdroid_ms,saving",
        &fig7
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{},{:.3},{:.3},{:.4}",
                    r.name,
                    r.android10_ms,
                    r.rchdroid_ms,
                    r.saving()
                )
            })
            .collect::<Vec<_>>(),
    )?);

    let fig8 = crate::fig8::run();
    written.push(write_csv(
        dir,
        "fig08_memory.csv",
        "app,android10_mib,rchdroid_mib",
        &fig8
            .rows
            .iter()
            .map(|r| format!("{},{:.3},{:.3}", r.name, r.android10_mib, r.rchdroid_mib))
            .collect::<Vec<_>>(),
    )?);

    let fig9 = crate::fig9::run();
    written.push(write_csv(
        dir,
        "fig09_trace.csv",
        "t_s,a10_cpu_pct,a10_mem_mib,rch_cpu_pct,rch_mem_mib",
        &fig9
            .android10
            .points
            .iter()
            .zip(&fig9.rchdroid.points)
            .map(|(a, r)| {
                format!(
                    "{:.1},{:.2},{:.2},{:.2},{:.2}",
                    a.at.as_secs_f64(),
                    a.cpu_percent,
                    a.memory_mib,
                    r.cpu_percent,
                    r.memory_mib
                )
            })
            .collect::<Vec<_>>(),
    )?);

    let fig10 = crate::fig10::run();
    written.push(write_csv(
        dir,
        "fig10a_scalability.csv",
        "views,android10_ms,rchdroid_ms,rchdroid_init_ms",
        &fig10
            .a
            .iter()
            .map(|r| {
                format!(
                    "{},{:.3},{:.3},{:.3}",
                    r.views, r.android10_ms, r.rchdroid_ms, r.rchdroid_init_ms
                )
            })
            .collect::<Vec<_>>(),
    )?);
    written.push(write_csv(
        dir,
        "fig10b_migration.csv",
        "views,migration_ms,android10_ms",
        &fig10
            .b
            .iter()
            .map(|r| format!("{},{:.3},{:.3}", r.views, r.migration_ms, r.android10_ms))
            .collect::<Vec<_>>(),
    )?);

    let fig11 = crate::fig11::run();
    written.push(write_csv(
        dir,
        "fig11_gc_tradeoff.csv",
        "thresh_t_s,latency_ms,cpu_ms_per_min,memory_mib,collections",
        &fig11
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{},{:.3},{:.3},{:.3},{}",
                    r.thresh_t_secs,
                    r.avg_latency_ms,
                    r.cpu_ms_per_min,
                    r.avg_memory_mib,
                    r.collections
                )
            })
            .collect::<Vec<_>>(),
    )?);

    let fig12 = crate::fig12::run();
    written.push(write_csv(
        dir,
        "fig12_runtimedroid.csv",
        "app,rchdroid_norm,runtimedroid_norm,patch_loc",
        &fig12
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{},{:.4},{:.4},{}",
                    r.name, r.rchdroid_norm, r.runtimedroid_norm, r.patch_loc
                )
            })
            .collect::<Vec<_>>(),
    )?);

    let study = crate::table5::run();
    // Cross-reference: the static analyzer's predicted verdicts ride
    // along so the CSV exposes the lint-vs-dynamic agreement the
    // differential gate enforces (`rchlint --differential`).
    let predicted: std::collections::BTreeMap<String, (bool, bool)> = rch_workloads::top100_specs()
        .iter()
        .map(|spec| {
            let stock = droidsim_analysis::predict(spec, droidsim_analysis::AnalysisMode::Stock);
            let rch = droidsim_analysis::predict(spec, droidsim_analysis::AnalysisMode::RchDroid);
            (spec.name.clone(), (stock.has_issue(), rch.has_issue()))
        })
        .collect();
    written.push(write_csv(
        dir,
        "table5_top100.csv",
        "app,issue,fixed,predicted_stock_issue,predicted_rchdroid_issue,android10_ms,rchdroid_ms,android10_mib,rchdroid_mib",
        &study
            .rows
            .iter()
            .map(|r| {
                let (pred_stock, pred_rch) =
                    predicted.get(&r.name).copied().unwrap_or((false, false));
                format!(
                    "{},{},{},{},{},{:.3},{:.3},{:.3},{:.3}",
                    r.name,
                    r.issue_under_stock,
                    r.fixed_by_rchdroid,
                    pred_stock,
                    pred_rch,
                    r.android10_ms,
                    r.rchdroid_ms,
                    r.android10_mib,
                    r.rchdroid_mib
                )
            })
            .collect::<Vec<_>>(),
    )?);

    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_writes_every_figure() {
        let dir = std::env::temp_dir().join(format!("rch_export_{}", std::process::id()));
        let written = export_all(&dir).expect("export succeeds");
        assert_eq!(written.len(), 8);
        for path in &written {
            let content = fs::read_to_string(path).unwrap();
            assert!(content.lines().count() > 1, "{path:?} has data rows");
            let header_cols = content.lines().next().unwrap().split(',').count();
            for line in content.lines().skip(1) {
                assert_eq!(line.split(',').count(), header_cols, "{path:?}: {line}");
            }
        }
        fs::remove_dir_all(&dir).ok();
    }
}
