//! The paper's measurement protocol (§5.1): "all reported numbers are the
//! mean of at least five runs. The standard deviation in all cases is
//! less than 5 % of the mean."
//!
//! The simulator is deterministic, so run-to-run variation is *injected*:
//! [`Device::with_jitter`](droidsim_device::Device::with_jitter) scales
//! every charged latency by a seeded noise factor with a 2 % coefficient
//! of variation (about what warm RK3399 runs show). This harness repeats
//! the benchmark-app measurement five times with different seeds and
//! reports mean ± std for each system, verifying the protocol's claim
//! holds for the model too.

use droidsim_app::SimpleApp;
use droidsim_device::{Device, HandlingMode};
use droidsim_kernel::SimDuration;
use droidsim_metrics::Summary;
use rch_workloads::BENCHMARK_BASE_MEMORY;

/// Per-run latency noise (coefficient of variation).
pub const JITTER_CV: f64 = 0.02;
/// Runs per reported number.
pub const RUNS: usize = 5;

/// One system's repeated measurement.
#[derive(Debug, Clone)]
pub struct VarianceRow {
    /// System label.
    pub label: &'static str,
    /// Per-run mean handling latencies (ms).
    pub runs_ms: Vec<f64>,
    /// Summary over the runs.
    pub summary: Summary,
}

/// The protocol check.
#[derive(Debug, Clone)]
pub struct VarianceStudy {
    /// One row per system.
    pub rows: Vec<VarianceRow>,
}

impl VarianceStudy {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("§5.1 protocol: mean of 5 runs, std < 5% of the mean\n");
        out.push_str(&format!(
            "{:<12} {:>10} {:>9} {:>9}\n",
            "system", "mean(ms)", "std(ms)", "cv"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>10.1} {:>9.2} {:>8.2}%\n",
                r.label,
                r.summary.mean,
                r.summary.std_dev,
                r.summary.cv() * 100.0
            ));
        }
        out
    }
}

fn one_run(mode: HandlingMode, seed: u64) -> f64 {
    let mut device = Device::new(mode).with_jitter(seed, JITTER_CV);
    device
        .install_and_launch(
            Box::new(SimpleApp::with_views(4)),
            BENCHMARK_BASE_MEMORY,
            1.0,
        )
        .expect("launch");
    let mut latencies = Vec::new();
    for _ in 0..4 {
        latencies.push(device.rotate().expect("handled").latency.as_millis_f64());
        device.advance(SimDuration::from_secs(2));
    }
    latencies.iter().sum::<f64>() / latencies.len() as f64
}

/// Runs the protocol check for both systems.
pub fn run() -> VarianceStudy {
    let systems: [(&str, HandlingMode); 2] = [
        ("Android-10", HandlingMode::Android10),
        ("RCHDroid", HandlingMode::rchdroid_default()),
    ];
    let rows = systems
        .into_iter()
        .map(|(label, mode)| {
            let runs_ms: Vec<f64> = (0..RUNS as u64)
                .map(|seed| one_run(mode, 0xC0FFEE + seed))
                .collect();
            let summary = Summary::of(&runs_ms);
            VarianceRow {
                label,
                runs_ms,
                summary,
            }
        })
        .collect();
    VarianceStudy { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_is_below_five_percent_of_the_mean() {
        let study = run();
        for row in &study.rows {
            assert_eq!(row.runs_ms.len(), RUNS);
            assert!(
                row.summary.cv() < 0.05,
                "{}: cv = {:.3}",
                row.label,
                row.summary.cv()
            );
            assert!(
                row.summary.std_dev > 0.0,
                "{}: jitter actually applied",
                row.label
            );
        }
    }

    #[test]
    fn seeds_change_the_numbers_but_not_the_winner() {
        let study = run();
        let stock = &study.rows[0];
        let rch = &study.rows[1];
        // Run-to-run numbers differ…
        assert!(stock.runs_ms.windows(2).any(|w| w[0] != w[1]));
        // …but RCHDroid wins in every single run.
        for (a, b) in stock.runs_ms.iter().zip(&rch.runs_ms) {
            assert!(b < a);
        }
    }

    #[test]
    fn zero_jitter_stays_deterministic() {
        let a = one_run_no_jitter();
        let b = one_run_no_jitter();
        assert_eq!(a, b);
    }

    fn one_run_no_jitter() -> f64 {
        let mut device = Device::new(HandlingMode::rchdroid_default());
        device
            .install_and_launch(
                Box::new(SimpleApp::with_views(4)),
                BENCHMARK_BASE_MEMORY,
                1.0,
            )
            .unwrap();
        device.rotate().unwrap().latency.as_millis_f64()
    }
}
