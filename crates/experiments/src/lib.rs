//! Experiment harnesses reproducing every table and figure of the
//! paper's evaluation (§5 and §6).
//!
//! Each module regenerates one result and prints the same rows/series the
//! paper reports; the binaries in `src/bin/` are thin wrappers. The
//! mapping to the paper:
//!
//! | Module | Paper result |
//! |---|---|
//! | [`table3`]  | Table 3 — effectiveness on the TP-27 set (25/27) |
//! | [`fig7`]    | Fig. 7 — per-app handling time, RCHDroid vs Android-10 |
//! | [`fig8`]    | Fig. 8 — per-app memory usage |
//! | [`fig9`]    | Fig. 9 — CPU/memory trace incl. the Android-10 crash |
//! | [`fig10`]   | Fig. 10 — scalability in view count (a: handling, b: migration) |
//! | [`fig11`]   | Fig. 11 — GC THRESH_T trade-off |
//! | [`fig12`]   | Fig. 12 + Table 4 — RuntimeDroid comparison |
//! | [`table5`]  | Table 5 + Fig. 14 — Google-Play top-100 study |
//! | [`energy`]  | §5.6 — board power |
//! | [`ablation`] | design-choice ablations (not in the paper; DESIGN.md §5) |
//!
//! All harnesses run on the deterministic simulator; see DESIGN.md for the
//! substitution rationale and EXPERIMENTS.md for paper-vs-measured values.

pub mod ablation;
pub mod breakdown;
pub mod detector;
pub mod energy;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod report;
pub mod scenario;
pub mod table3;
pub mod table5;
pub mod variance;

pub use scenario::{run_app, RunConfig, RunOutcome};

/// Builds a [`droidsim_fleet::FleetConfig`] for an experiment binary:
/// `--jobs N` / `--jobs=N` on the command line wins, then the
/// `DROIDSIM_JOBS` environment variable, then the machine's available
/// parallelism. `--jobs 1` selects the legacy serial path.
pub fn fleet_config_from_args() -> droidsim_fleet::FleetConfig {
    let mut jobs = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            jobs = args.next().and_then(|v| v.parse().ok());
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = v.parse().ok();
        }
    }
    droidsim_fleet::FleetConfig::from_env(jobs, 0)
}
