//! Experiment harnesses reproducing every table and figure of the
//! paper's evaluation (§5 and §6).
//!
//! Each module regenerates one result and prints the same rows/series the
//! paper reports; the binaries in `src/bin/` are thin wrappers. The
//! mapping to the paper:
//!
//! | Module | Paper result |
//! |---|---|
//! | [`table3`]  | Table 3 — effectiveness on the TP-27 set (25/27) |
//! | [`fig7`]    | Fig. 7 — per-app handling time, RCHDroid vs Android-10 |
//! | [`fig8`]    | Fig. 8 — per-app memory usage |
//! | [`fig9`]    | Fig. 9 — CPU/memory trace incl. the Android-10 crash |
//! | [`fig10`]   | Fig. 10 — scalability in view count (a: handling, b: migration) |
//! | [`fig11`]   | Fig. 11 — GC THRESH_T trade-off |
//! | [`fig12`]   | Fig. 12 + Table 4 — RuntimeDroid comparison |
//! | [`table5`]  | Table 5 + Fig. 14 — Google-Play top-100 study |
//! | [`energy`]  | §5.6 — board power |
//! | [`ablation`] | design-choice ablations (not in the paper; DESIGN.md §5) |
//!
//! All harnesses run on the deterministic simulator; see DESIGN.md for the
//! substitution rationale and EXPERIMENTS.md for paper-vs-measured values.

pub mod ablation;
pub mod breakdown;
pub mod daemon_exec;
pub mod detector;
pub mod differential;
pub mod energy;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod report;
pub mod scenario;
pub mod table3;
pub mod table5;
pub mod variance;

pub use daemon_exec::StudyExecutor;
pub use scenario::{run_app, RunConfig, RunOutcome};

use droidsim_fleet::{parse_jobs_value, FleetConfig, FleetOptions};
use std::time::Duration;

/// Everything an experiment binary accepts on the command line: the
/// worker count plus the crash-safety knobs of the supervised fleet.
///
/// * `--jobs N` / `--jobs=N` — worker threads (strict: a zero or
///   non-numeric value is an error, not a silent fallback);
/// * `--keep-going` — supervise the run: isolate task panics, print the
///   partial table plus a QUARANTINED footer instead of aborting;
/// * `--max-retries N` — requeue a failed task up to N times (implies
///   `--keep-going`);
/// * `--task-budget-ms N` — wall-clock stall watchdog per task attempt
///   (implies `--keep-going`);
/// * `--journal PATH` — checkpoint each completed task to PATH (implies
///   `--keep-going`);
/// * `--resume PATH` — skip tasks PATH already records, appending new
///   completions to it (implies `--keep-going`);
/// * `--no-memo` — disable the warm-path memo caches (`kernel::memo`)
///   for this process: every resolution, inflation, and mapping build
///   takes the cold path. The correctness kill switch behind the
///   memo ≡ cold parity gates; `DROIDSIM_NO_MEMO=1` is the env form.
/// * `--version` — print the binary's name and version, then exit.
///
/// Tokens the fleet layer does not recognize land in [`FleetCli::extra`]
/// in order. Binaries with flags of their own ([`FleetCli::from_args_passthrough`])
/// parse that remainder; everyone else ([`FleetCli::from_args`]) gets a
/// usage error naming the first unknown flag — never a silent ignore.
#[derive(Debug, Clone, Default)]
pub struct FleetCli {
    /// Explicit worker count, when given.
    pub jobs: Option<usize>,
    /// Whether any supervision flag was present.
    pub supervised: bool,
    /// Supervision knobs assembled from the flags.
    pub options: FleetOptions,
    /// Whether `--no-memo` was present (warm-path caches disabled).
    pub no_memo: bool,
    /// Whether `--version` was present.
    pub version: bool,
    /// Tokens the fleet layer did not consume, in command-line order —
    /// the passthrough remainder a binary's own parser receives.
    pub extra: Vec<String>,
}

impl FleetCli {
    /// Parses `std::env::args` for a binary with no flags of its own:
    /// invalid values *and unknown flags* exit with a usage error
    /// (status 2) naming the offender — the satellite contract: reject,
    /// never silently fall back. `--version` prints and exits 0.
    pub fn from_args() -> FleetCli {
        let cli = FleetCli::from_args_passthrough();
        if let Err(e) = cli.deny_unknown() {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        cli
    }

    /// Parses `std::env::args` for a binary with flags of its own:
    /// fleet flags are consumed (invalid values still exit 2),
    /// `--version` prints and exits 0, and everything else is kept in
    /// [`FleetCli::extra`] for the binary's parser — which owns the
    /// unknown-flag rejection for its remainder.
    pub fn from_args_passthrough() -> FleetCli {
        version_flag();
        let cli = FleetCli::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        // Apply the kill switch before any workload code runs so the
        // caches never see a probe in a `--no-memo` process. Leaving the
        // flag off does not force-enable: `DROIDSIM_NO_MEMO` still wins.
        if cli.no_memo {
            droidsim_kernel::memo::set_enabled(false);
        }
        cli
    }

    /// The strict contract for binaries with no flags of their own:
    /// errors on the first token the fleet layer did not consume,
    /// naming it.
    pub fn deny_unknown(&self) -> Result<(), String> {
        match self.extra.first() {
            None => Ok(()),
            Some(tok) if tok.starts_with("--") => {
                let flag = tok.split('=').next().unwrap_or(tok);
                Err(format!("unknown flag {flag:?}"))
            }
            Some(tok) => Err(format!("unexpected argument {tok:?}")),
        }
    }

    /// Parses an argument list (testable form of [`FleetCli::from_args`]).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<FleetCli, String> {
        let mut cli = FleetCli {
            options: FleetOptions::new(),
            ..FleetCli::default()
        };
        let mut args = args.into_iter();
        let value = |flag: &str, inline: Option<String>, args: &mut dyn Iterator<Item = String>| {
            inline
                .or_else(|| args.next())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        while let Some(a) = args.next() {
            let (flag, inline) = match a.split_once('=') {
                Some((f, v)) => (f.to_owned(), Some(v.to_owned())),
                None => (a, None),
            };
            match flag.as_str() {
                "--jobs" => {
                    let v = value("--jobs", inline, &mut args)?;
                    cli.jobs = Some(parse_jobs_value("--jobs", &v).map_err(|e| e.to_string())?);
                }
                "--keep-going" => cli.supervised = true,
                "--max-retries" => {
                    let v = value("--max-retries", inline, &mut args)?;
                    cli.options.max_retries = v
                        .parse()
                        .map_err(|_| format!("--max-retries: not a number: {v:?}"))?;
                    cli.supervised = true;
                }
                "--task-budget-ms" => {
                    let v = value("--task-budget-ms", inline, &mut args)?;
                    let ms: u64 = v
                        .parse()
                        .map_err(|_| format!("--task-budget-ms: not a number: {v:?}"))?;
                    cli.options.task_budget = Some(Duration::from_millis(ms));
                    cli.supervised = true;
                }
                "--journal" => {
                    let v = value("--journal", inline, &mut args)?;
                    cli.options.journal = Some(v.into());
                    cli.supervised = true;
                }
                "--resume" => {
                    let v = value("--resume", inline, &mut args)?;
                    cli.options = cli.options.clone().resuming(v);
                    cli.supervised = true;
                }
                "--no-memo" => cli.no_memo = true,
                "--version" => cli.version = true,
                // Binaries keep their own extra flags: preserve the
                // raw token (value-bearing forms like `--views=16` or
                // `--views` + `16` arrive as the original tokens).
                _ => cli.extra.push(match &inline {
                    Some(v) => format!("{flag}={v}"),
                    None => flag,
                }),
            }
        }
        Ok(cli)
    }

    /// Resolves the fleet config (explicit `--jobs` > `DROIDSIM_JOBS` >
    /// cores), exiting with the resolution error when the environment
    /// holds an invalid count.
    pub fn config(&self, seed: u64) -> FleetConfig {
        FleetConfig::try_from_env(self.jobs, seed).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }
}

/// Implements the universal `--version` flag: when present anywhere on
/// the command line, prints `<binary> <version>` and exits 0. Every
/// study binary (and the daemon pair) calls this first; the
/// [`FleetCli`] entry points do it on the caller's behalf.
pub fn version_flag() {
    if std::env::args().skip(1).any(|a| a == "--version") {
        let bin = std::env::args().next().as_deref().map_or_else(
            || "droidsim".to_owned(),
            |p| {
                std::path::Path::new(p)
                    .file_name()
                    .map_or_else(|| p.to_owned(), |n| n.to_string_lossy().into_owned())
            },
        );
        println!("{bin} {}", env!("CARGO_PKG_VERSION"));
        std::process::exit(0);
    }
}

/// Builds a [`droidsim_fleet::FleetConfig`] for an experiment binary:
/// `--jobs N` / `--jobs=N` on the command line wins, then the
/// `DROIDSIM_JOBS` environment variable, then the machine's available
/// parallelism. `--jobs 1` selects the legacy serial path. Invalid
/// worker counts exit with a usage error.
pub fn fleet_config_from_args() -> droidsim_fleet::FleetConfig {
    FleetCli::from_args().config(0)
}

#[cfg(test)]
mod cli_tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<FleetCli, String> {
        FleetCli::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn plain_jobs_does_not_select_supervision() {
        let cli = parse(&["--jobs", "4"]).unwrap();
        assert_eq!(cli.jobs, Some(4));
        assert!(!cli.supervised);
        let cli = parse(&["--jobs=2"]).unwrap();
        assert_eq!(cli.jobs, Some(2));
    }

    #[test]
    fn invalid_jobs_is_an_error_not_a_fallback() {
        for bad in ["0", "three", "-1", "4.5", ""] {
            let err = parse(&["--jobs", bad]).unwrap_err();
            assert!(err.contains("--jobs"), "{bad:?}: {err}");
        }
        assert!(parse(&["--jobs"]).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn every_supervision_flag_selects_the_supervised_fleet() {
        assert!(parse(&["--keep-going"]).unwrap().supervised);
        let cli = parse(&["--max-retries", "3"]).unwrap();
        assert!(cli.supervised);
        assert_eq!(cli.options.max_retries, 3);
        let cli = parse(&["--task-budget-ms=250"]).unwrap();
        assert!(cli.supervised);
        assert_eq!(cli.options.task_budget, Some(Duration::from_millis(250)));
        let cli = parse(&["--journal", "j.log"]).unwrap();
        assert!(cli.supervised);
        assert_eq!(cli.options.journal.as_deref(), Some("j.log".as_ref()));
        assert!(cli.options.resume.is_none());
    }

    #[test]
    fn resume_reads_and_extends_the_same_journal() {
        let cli = parse(&["--resume", "j.log", "--jobs", "2"]).unwrap();
        assert!(cli.supervised);
        assert_eq!(cli.options.resume.as_deref(), Some("j.log".as_ref()));
        assert_eq!(cli.options.journal.as_deref(), Some("j.log".as_ref()));
        assert_eq!(cli.jobs, Some(2));
    }

    #[test]
    fn unknown_flags_pass_through_for_the_binaries() {
        let cli = parse(&["--views", "16", "--jobs", "3", "--corpus=tp27"]).unwrap();
        assert_eq!(cli.jobs, Some(3));
        assert!(!cli.supervised);
        assert_eq!(cli.extra, vec!["--views", "16", "--corpus=tp27"]);
    }

    #[test]
    fn strict_binaries_reject_unknown_flags_by_name() {
        let cli = parse(&["--jobs", "2", "--view", "16"]).unwrap();
        let err = cli.deny_unknown().unwrap_err();
        assert!(err.contains("--view"), "{err}");
        let cli = parse(&["--jobs=2", "--journal=j.log"]).unwrap();
        assert!(cli.deny_unknown().is_ok());
        let err = parse(&["tp27"]).unwrap().deny_unknown().unwrap_err();
        assert!(err.contains("unexpected argument"), "{err}");
        // The flag name alone is reported, not its inline value.
        let err = parse(&["--corpus=tp27"])
            .unwrap()
            .deny_unknown()
            .unwrap_err();
        assert!(err.contains("\"--corpus\""), "{err}");
    }

    #[test]
    fn no_memo_parses_without_selecting_supervision() {
        let cli = parse(&["--no-memo", "--jobs", "2"]).unwrap();
        assert!(cli.no_memo);
        assert!(!cli.supervised);
        assert!(cli.deny_unknown().is_ok());
        assert!(!parse(&["--jobs", "2"]).unwrap().no_memo);
    }

    #[test]
    fn version_flag_is_recognized_everywhere() {
        let cli = parse(&["--version"]).unwrap();
        assert!(cli.version);
        assert!(cli.extra.is_empty());
        assert!(cli.deny_unknown().is_ok());
    }
}
