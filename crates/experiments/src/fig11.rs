//! Fig. 11: the GC trade-off.
//!
//! The workload is the paper's: the 32-ImageView benchmark app runs for
//! ten minutes with six runtime changes per minute, THRESH_F fixed at 4
//! entries per window, and THRESH_T swept. Change arrivals are *bursty*
//! (six seeded-uniform offsets per minute), so inter-change gaps range up
//! to ≈50 s — the regime in which THRESH_T matters: a small THRESH_T
//! reclaims the shadow during longer gaps, forcing the next change to pay
//! the init cost (higher latency, higher CPU) while freeing its memory;
//! past ≈50 s almost no gap exceeds the threshold and all three curves
//! flatten, which is why the paper picks THRESH_T = 50 s.

use droidsim_device::{Device, DeviceEvent, HandlingMode};
use droidsim_kernel::{SimDuration, SimTime, Xoshiro256};
use rch_workloads::{benchmark_app, BENCHMARK_BASE_MEMORY};
use rchdroid::GcPolicy;

/// Workload length in minutes (§5.5: ten minutes).
pub const MINUTES: u64 = 10;
/// Changes per minute (§5.5: six).
pub const CHANGES_PER_MINUTE: usize = 6;
/// The frequency-count window (the paper's `k` seconds).
pub const FREQ_WINDOW: SimDuration = SimDuration::from_secs(10);

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Row {
    /// THRESH_T in seconds.
    pub thresh_t_secs: u64,
    /// Mean handling latency over the run (ms).
    pub avg_latency_ms: f64,
    /// Handling CPU time per minute (ms/min).
    pub cpu_ms_per_min: f64,
    /// Time-averaged PSS (MiB).
    pub avg_memory_mib: f64,
    /// Shadow GC collections during the run.
    pub collections: usize,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// Sweep rows, ascending THRESH_T.
    pub rows: Vec<Fig11Row>,
}

impl Fig11 {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig. 11: GC trade-off (32-view benchmark app, 10 min, 6 changes/min)\n");
        out.push_str(&format!(
            "{:>9} {:>12} {:>12} {:>11} {:>12}\n",
            "THRESH_T", "latency(ms)", "cpu(ms/min)", "mem(MiB)", "collections"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>8}s {:>12.1} {:>12.1} {:>11.2} {:>12}\n",
                r.thresh_t_secs,
                r.avg_latency_ms,
                r.cpu_ms_per_min,
                r.avg_memory_mib,
                r.collections
            ));
        }
        out.push_str(
            "=> paper: latency/CPU fall and memory rises with THRESH_T; all flatten at 50 s\n",
        );
        out
    }
}

/// The seeded bursty change schedule: inter-change gaps are mostly short
/// (2–6 s, the within-burst rhythm of a user toggling orientation) with
/// occasional long quiet gaps of 20–48 s. The mixture averages ≈ 6
/// changes per minute and — crucially — its longest gaps stay *below*
/// 50 s, which is exactly what makes THRESH_T = 50 s the knee of the
/// paper's trade-off curves.
pub fn change_schedule(seed: u64) -> Vec<SimTime> {
    let mut rng = Xoshiro256::seed_from(seed);
    let mut times = Vec::new();
    let end_s = MINUTES * 60;
    let mut t = 2u64;
    while t < end_s {
        times.push(SimTime::from_secs(t));
        let gap = if rng.next_bool(0.78) {
            rng.next_range(2, 6) // burst
        } else {
            rng.next_range(20, 48) // quiet period
        };
        t += gap;
    }
    times
}

/// Runs one THRESH_T value with the default schedule seed.
pub fn run_one(thresh_t_secs: u64) -> Fig11Row {
    run_one_seeded(thresh_t_secs, 0x5EED)
}

/// Runs one THRESH_T value with an explicit schedule seed (robustness
/// checks — the trade-off's *shape* must not depend on one lucky
/// schedule).
pub fn run_one_seeded(thresh_t_secs: u64, seed: u64) -> Fig11Row {
    let policy = GcPolicy {
        thresh_t: SimDuration::from_secs(thresh_t_secs),
        thresh_f: 4,
        window: FREQ_WINDOW,
    };
    let mut device = Device::new(HandlingMode::rchdroid_with_policy(policy));
    let component = device
        .install_and_launch(Box::new(benchmark_app(32)), BENCHMARK_BASE_MEMORY, 1.0)
        .expect("launch");

    let schedule = change_schedule(seed);
    let end = SimTime::from_secs(MINUTES * 60 + 5);
    let mut memory_samples = Vec::new();
    let mut next_change = schedule.into_iter().peekable();

    // Step the run at 1 Hz, firing scheduled changes as they come due and
    // sampling memory each second.
    let mut t = device.now();
    while t < end {
        let next_tick = t + SimDuration::from_secs(1);
        while next_change.peek().is_some_and(|&c| c <= next_tick) {
            let due = next_change.next().expect("peeked");
            if due > device.now() {
                device.advance(due - device.now());
            }
            let _ = device.rotate();
        }
        if next_tick > device.now() {
            device.advance(next_tick - device.now());
        }
        memory_samples.push(
            device
                .memory_snapshot(&component)
                .map_or(0.0, |s| s.total_mib()),
        );
        t = next_tick;
    }

    let latencies = device
        .process(&component)
        .expect("installed")
        .latencies_ms();
    let avg_latency_ms = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    let cpu_ms_per_min = latencies.iter().sum::<f64>() / MINUTES as f64;
    let avg_memory_mib = memory_samples.iter().sum::<f64>() / memory_samples.len().max(1) as f64;
    let collections = device
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e,
                DeviceEvent::GcPass {
                    collected: true,
                    ..
                }
            )
        })
        .count();

    Fig11Row {
        thresh_t_secs,
        avg_latency_ms,
        cpu_ms_per_min,
        avg_memory_mib,
        collections,
    }
}

/// Runs the full THRESH_T sweep (10 … 70 s).
pub fn run() -> Fig11 {
    Fig11 {
        rows: [10, 20, 30, 40, 50, 60, 70]
            .into_iter()
            .map(run_one)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_bursty_at_about_six_per_minute() {
        let s = change_schedule(0x5EED);
        let per_minute = s.len() as f64 / MINUTES as f64;
        assert!(
            (4.0..=8.0).contains(&per_minute),
            "{per_minute} changes/min"
        );
        assert!(
            s.windows(2).all(|w| w[0] < w[1]),
            "sorted, strictly increasing"
        );
        let gaps: Vec<f64> = s
            .windows(2)
            .map(|w| w[1].saturating_since(w[0]).as_secs_f64())
            .collect();
        let max_gap = gaps.iter().copied().fold(0.0f64, f64::max);
        // Long quiet gaps exist (so small THRESH_T values collect) but
        // none exceeds 50 s (so THRESH_T = 50 s is the knee).
        assert!(max_gap > 35.0, "max gap = {max_gap}");
        assert!(max_gap < 50.0, "max gap = {max_gap}");
        // And gaps span the sweep range so the curves fall gradually.
        assert!(
            gaps.iter().any(|&g| (20.0..30.0).contains(&g)),
            "mid-range gaps exist"
        );
    }

    #[test]
    fn tradeoff_shape_is_seed_robust() {
        // The latency ordering (small THRESH_T ≥ large THRESH_T) must
        // hold for schedules other than the default seed.
        for seed in [1u64, 2, 3] {
            let t10 = run_one_seeded(10, seed);
            let t70 = run_one_seeded(70, seed);
            assert!(
                t10.avg_latency_ms >= t70.avg_latency_ms - 0.01,
                "seed {seed}: {} vs {}",
                t10.avg_latency_ms,
                t70.avg_latency_ms
            );
            assert!(
                t10.avg_memory_mib <= t70.avg_memory_mib + 0.01,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn tradeoff_matches_fig11_shape() {
        let fig = run();
        let t10 = &fig.rows[0];
        let t50 = &fig.rows[4];
        let t70 = &fig.rows[6];
        // Latency and CPU fall as THRESH_T grows…
        assert!(
            t10.avg_latency_ms > t50.avg_latency_ms,
            "{} vs {}",
            t10.avg_latency_ms,
            t50.avg_latency_ms
        );
        assert!(t10.cpu_ms_per_min > t50.cpu_ms_per_min);
        // …memory rises…
        assert!(t10.avg_memory_mib < t50.avg_memory_mib);
        // …and everything flattens past 50 s.
        assert!((t50.avg_latency_ms - t70.avg_latency_ms).abs() < 2.0);
        assert!((t50.avg_memory_mib - t70.avg_memory_mib).abs() < 0.5);
        // More collections at small THRESH_T.
        assert!(t10.collections > t70.collections);
    }
}
