//! The daemon-side job executor: maps [`droidsim_daemon`] job specs
//! onto the real experiment harnesses.
//!
//! [`StudyExecutor`] is what `droidsimd` plugs into
//! [`droidsim_daemon::Daemon::start`]. Each accepted job runs the same
//! supervised fleet machinery as the standalone binaries —
//! [`crate::table5`], [`crate::fig10`], [`crate::ablation`], or a
//! fault-matrix campaign — wired to the daemon's cooperative controls:
//!
//! * the job's [`CancelToken`](droidsim_fleet::CancelToken) goes into
//!   [`FleetOptions::with_cancel`], so client cancels, blown deadlines
//!   and fast shutdown all stop the study between tasks;
//! * the per-job fleet journal path (when the daemon is journaling)
//!   goes into [`FleetOptions::resuming`], so a job interrupted by a
//!   daemon crash resumes task-by-task after restart — to the same
//!   digest an uninterrupted run produces;
//! * the spec's `inner_jobs`, `task_budget_ms` and `max_retries` knobs
//!   map one-to-one onto the fleet config and options.
//!
//! Determinism is the load-bearing property: for a given spec the
//! digest is identical for any `inner_jobs`, any interruption point,
//! and any retry schedule. [`reference_digest`] exploits that — it runs
//! the same spec in-process with one worker and nobody cancelling,
//! which is exactly the "jobs=1 batch run" the daemon soak compares
//! daemon-produced digests against.

use std::time::Duration;

use droidsim_daemon::{JobControl, JobExecutor, JobKind, JobSpec, JobVerdict};
use droidsim_device::HandlingMode;
use droidsim_faults::{FaultPlan, FaultSite};
use droidsim_fleet::{
    run_fleet_supervised, CancelToken, Digest, FleetConfig, FleetError, FleetOptions, FleetRun,
    TaskCtx,
};
use rch_workloads::{top100_sample, GenericAppSpec};

use crate::scenario::{run_app, RunConfig};
use crate::{ablation, fig10};

/// The production [`JobExecutor`]: one instance serves every job the
/// daemon schedules (see module docs).
#[derive(Debug, Default, Clone, Copy)]
pub struct StudyExecutor;

impl JobExecutor for StudyExecutor {
    fn execute(&self, spec: &JobSpec, ctl: &JobControl) -> JobVerdict {
        run_study(spec, ctl)
    }
}

/// Runs one job spec to a verdict under the given controls. Public so
/// the restart tests and [`reference_digest`] can execute jobs without
/// standing up a daemon.
pub fn run_study(spec: &JobSpec, ctl: &JobControl) -> JobVerdict {
    let cfg = FleetConfig::new(spec.inner_jobs, spec.seed);
    let opts = fleet_options(spec, ctl);
    match &spec.kind {
        JobKind::Table5 { apps } => finish(
            run_fleet_supervised(&cfg, &opts, top100_sample(*apps), measure_app, app_digest),
            ctl,
        ),
        JobKind::Fig10 => finish(fig10::run_supervised(&cfg, &opts).map(|r| r.fleet), ctl),
        JobKind::Ablation => finish(ablation::run_supervised(&cfg, &opts).map(|r| r.fleet), ctl),
        JobKind::FaultMatrix { tasks, rate_pct } => {
            let opts = opts.with_faults(
                FaultPlan::seeded(spec.seed)
                    .with_rate(FaultSite::FleetTask, f64::from(*rate_pct) / 100.0),
            );
            finish(
                run_fleet_supervised(&cfg, &opts, top100_sample(*tasks), measure_app, app_digest),
                ctl,
            )
        }
    }
}

/// The digest `spec` must produce: the same study, run in-process with
/// one inner worker, no journal, and nobody cancelling. Errors when the
/// reference run itself cannot produce a comparable digest (a task
/// quarantined past its retries).
pub fn reference_digest(spec: &JobSpec) -> Result<u64, String> {
    let mut spec = spec.clone();
    spec.inner_jobs = 1;
    let ctl = JobControl {
        id: 0,
        cancel: CancelToken::new(),
        fleet_journal: None,
    };
    match run_study(&spec, &ctl) {
        JobVerdict::Done { digest, .. } => Ok(digest),
        JobVerdict::Failed { reason } => Err(reason),
        JobVerdict::Cancelled { reason } => Err(format!("reference run cancelled: {reason}")),
    }
}

/// Maps the spec's scheduling knobs onto supervised-fleet options,
/// wiring in the daemon's cancel token and per-job resume journal.
fn fleet_options(spec: &JobSpec, ctl: &JobControl) -> FleetOptions {
    let mut opts = FleetOptions::new()
        .with_retries(spec.max_retries)
        .with_cancel(ctl.cancel.clone());
    if let Some(ms) = spec.task_budget_ms {
        opts = opts.with_budget(Duration::from_millis(ms));
    }
    if let Some(path) = &ctl.fleet_journal {
        opts = opts.resuming(path);
    }
    opts
}

/// One app simulation under RCHDroid defaults — the same per-task body
/// (and digest shape) as the crash-safety soak, so daemon results are
/// comparable across every harness that samples the top-100 corpus.
fn measure_app(_ctx: TaskCtx, spec: GenericAppSpec) -> (String, f64, f64) {
    let outcome = run_app(&spec, &RunConfig::new(HandlingMode::rchdroid_default()));
    (
        spec.name.clone(),
        outcome.mean_latency_ms(),
        outcome.memory_mib,
    )
}

fn app_digest(row: &(String, f64, f64)) -> u64 {
    let mut d = Digest::new();
    d.write_str(&row.0);
    d.write_f64(row.1);
    d.write_f64(row.2);
    d.finish()
}

/// Folds a supervised run into the job verdict: cancellation first
/// (an observed token beats any partial digest), then the combined
/// digest, with quarantine as the only failure mode.
fn finish<R>(run: Result<FleetRun<R>, FleetError>, ctl: &JobControl) -> JobVerdict {
    let run = match run {
        Ok(run) => run,
        Err(e) => {
            return JobVerdict::Failed {
                reason: e.to_string(),
            }
        }
    };
    if ctl.cancel.is_cancelled() || run.report.ledger.cancelled > 0 {
        return JobVerdict::Cancelled {
            reason: "cancel observed mid-study".to_owned(),
        };
    }
    match run.combined_digest() {
        Some(digest) => JobVerdict::Done {
            digest,
            fleet: run.report.ledger.clone(),
        },
        None => JobVerdict::Failed {
            reason: format!("{} task(s) quarantined", run.report.quarantined.len()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidsim_daemon::{Daemon, DaemonConfig, ShutdownMode};
    use std::time::Duration;

    fn ctl() -> JobControl {
        JobControl {
            id: 0,
            cancel: CancelToken::new(),
            fleet_journal: None,
        }
    }

    fn digest_of(verdict: JobVerdict) -> u64 {
        match verdict {
            JobVerdict::Done { digest, .. } => digest,
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn inner_parallelism_does_not_change_the_digest() {
        let spec = JobSpec::new(JobKind::Table5 { apps: 4 }).with_seed(0xA11);
        let reference = reference_digest(&spec).unwrap();
        let mut wide = spec.clone();
        wide.inner_jobs = 3;
        assert_eq!(digest_of(run_study(&wide, &ctl())), reference);
    }

    #[test]
    fn fault_matrix_retries_land_on_the_clean_digest() {
        let clean = JobSpec::new(JobKind::FaultMatrix {
            tasks: 6,
            rate_pct: 0,
        })
        .with_seed(0xFA17);
        let faulty = JobSpec::new(JobKind::FaultMatrix {
            tasks: 6,
            rate_pct: 5,
        })
        .with_seed(0xFA17);
        assert_eq!(
            reference_digest(&faulty).unwrap(),
            reference_digest(&clean).unwrap(),
            "deterministic retries absorb the injected faults"
        );
    }

    #[test]
    fn pre_cancelled_control_yields_a_cancelled_verdict() {
        let spec = JobSpec::new(JobKind::Table5 { apps: 3 });
        let control = ctl();
        control.cancel.cancel();
        assert!(matches!(
            run_study(&spec, &control),
            JobVerdict::Cancelled { .. }
        ));
    }

    #[test]
    fn daemon_scheduled_study_matches_the_reference() {
        let spec = JobSpec::new(JobKind::Table5 { apps: 3 }).with_seed(0xD0D);
        let reference = reference_digest(&spec).unwrap();
        let daemon = Daemon::start(DaemonConfig::new(), StudyExecutor).unwrap();
        let id = match daemon.submit(spec) {
            droidsim_daemon::Admission::Accepted { id, .. } => id,
            droidsim_daemon::Admission::Rejected { reason } => panic!("rejected: {reason}"),
            droidsim_daemon::Admission::Duplicate { id } => panic!("unexpected duplicate: {id}"),
        };
        let status = daemon.wait(id, Duration::from_secs(60)).unwrap();
        assert_eq!(status.state.digest(), Some(reference));
        daemon.shutdown(ShutdownMode::Drain);
    }
}
