//! Fig. 8: memory usage, RCHDroid vs Android-10, on the TP-27 set.
//!
//! Memory is read right after the runtime changes, while RCHDroid still
//! holds the shadow instance. Paper: 53.53 MB vs 47.56 MB on average
//! (1.12×).

use crate::scenario::{run_app, RunConfig};
use droidsim_device::HandlingMode;
use droidsim_metrics::Summary;
use rch_workloads::tp27_specs;

/// One app's bar pair.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// App name.
    pub name: String,
    /// PSS under Android 10 (MiB).
    pub android10_mib: f64,
    /// PSS under RCHDroid (MiB).
    pub rchdroid_mib: f64,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Per-app pairs.
    pub rows: Vec<Fig8Row>,
}

impl Fig8 {
    /// Mean PSS under Android 10.
    pub fn mean_android10(&self) -> f64 {
        Summary::of(
            &self
                .rows
                .iter()
                .map(|r| r.android10_mib)
                .collect::<Vec<_>>(),
        )
        .mean
    }

    /// Mean PSS under RCHDroid.
    pub fn mean_rchdroid(&self) -> f64 {
        Summary::of(&self.rows.iter().map(|r| r.rchdroid_mib).collect::<Vec<_>>()).mean
    }

    /// RCHDroid/stock memory ratio (the paper's 1.12×).
    pub fn ratio(&self) -> f64 {
        self.mean_rchdroid() / self.mean_android10()
    }

    /// Renders the series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig. 8: memory usage (MiB), TP-27 set\n");
        out.push_str(&format!(
            "{:<18} {:>12} {:>12}\n",
            "App", "Android-10", "RCHDroid"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<18} {:>12.2} {:>12.2}\n",
                r.name, r.android10_mib, r.rchdroid_mib
            ));
        }
        out.push_str(&format!(
            "=> averages: Android-10 {:.2} MiB, RCHDroid {:.2} MiB, ratio {:.2}x \
             (paper: 47.56 / 53.53 / 1.12x)\n",
            self.mean_android10(),
            self.mean_rchdroid(),
            self.ratio()
        ));
        out
    }
}

/// Runs the Fig. 8 experiment.
pub fn run() -> Fig8 {
    let rows = tp27_specs()
        .iter()
        .map(|spec| {
            let mut spec = spec.clone();
            spec.uses_async_task = false; // a crashed process reads 0 MiB
            let stock = run_app(&spec, &RunConfig::new(HandlingMode::Android10));
            let rch = run_app(&spec, &RunConfig::new(HandlingMode::rchdroid_default()));
            Fig8Row {
                name: spec.name.clone(),
                android10_mib: stock.memory_mib,
                rchdroid_mib: rch.memory_mib,
            }
        })
        .collect();
    Fig8 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_match_the_paper_band() {
        let fig = run();
        let stock = fig.mean_android10();
        let rch = fig.mean_rchdroid();
        assert!(
            (45.0..=51.0).contains(&stock),
            "Android-10 mean = {stock:.2} (paper 47.56)"
        );
        assert!(
            (50.0..=57.0).contains(&rch),
            "RCHDroid mean = {rch:.2} (paper 53.53)"
        );
        let ratio = fig.ratio();
        assert!(
            (1.08..=1.16).contains(&ratio),
            "ratio = {ratio:.3} (paper 1.12)"
        );
    }

    #[test]
    fn overhead_is_exactly_one_extra_instance() {
        let fig = run();
        for r in &fig.rows {
            assert!(r.rchdroid_mib > r.android10_mib, "{}", r.name);
            // The shadow instance is bounded by the app's activity heap
            // (≤ 7 MiB for TP-27 apps) plus the saved bundle.
            assert!(r.rchdroid_mib - r.android10_mib < 8.0, "{}", r.name);
        }
    }
}
