//! An automated runtime-change issue detector.
//!
//! §6's methodology — "when it is running in a state, we change screen
//! sizes and observe if the state can be correctly restored" — as a
//! reusable oracle, in the spirit of the double-orientation GUI checks of
//! Amalfitano et al. and Zaeem et al. (§7.1): set the app's user state,
//! rotate once and twice, and compare what the user sees against what
//! they left. A crash or any lost state item is an issue.
//!
//! Checking after **one** rotation matters: systems that preserve the
//! original instance (RCHDroid's coin flip) would mask member-state loss
//! on any even rotation count. The final probe additionally walks every
//! *live non-foreground* instance (RCHDroid's shadow): state missing
//! there is the same masked loss seen from the other side — the user
//! meets it on the next odd rotation — and is reported as
//! [`DetectionReport::latent_after_two`].

use droidsim_device::{Device, HandlingMode};
use droidsim_kernel::SimDuration;
use rch_workloads::{DataLossClass, GenericAppSpec};
use std::collections::BTreeSet;

/// What the oracle found for one app under one system.
#[derive(Debug, Clone)]
pub struct DetectionReport {
    /// App name.
    pub app: String,
    /// State items lost after a single rotation.
    pub lost_after_one: Vec<String>,
    /// State items lost after the double rotation (foreground instance).
    pub lost_after_two: Vec<String>,
    /// State items missing from a live non-foreground (shadow-state)
    /// instance after the double rotation — loss the coin flip masks
    /// from the foreground check.
    pub latent_after_two: Vec<String>,
    /// Whether the app crashed during the check.
    pub crashed: bool,
}

impl DetectionReport {
    /// The oracle's verdict: does this app have a runtime-change issue
    /// under the checked system?
    pub fn has_issue(&self) -> bool {
        self.crashed
            || !self.lost_after_one.is_empty()
            || !self.lost_after_two.is_empty()
            || !self.latent_after_two.is_empty()
    }

    fn crashed_report(app: &str) -> DetectionReport {
        DetectionReport {
            app: app.to_owned(),
            lost_after_one: Vec::new(),
            lost_after_two: Vec::new(),
            latent_after_two: Vec::new(),
            crashed: true,
        }
    }
}

/// One probe of the app's live instances: items the *foreground*
/// instance lost, and items missing from any other live, un-released
/// instance (deduplicated — several shadows missing the same key is one
/// loss).
fn lost_items(device: &Device, component: &str, probe: &rch_workloads::GenericApp) -> Probe {
    let Ok(process) = device.process(component) else {
        return Probe::default();
    };
    let foreground = process.foreground_instance();
    let mut result = Probe::default();
    let mut latent = BTreeSet::new();
    for id in process.thread().alive_instances() {
        let Ok(activity) = process.thread().instance(id) else {
            continue;
        };
        if activity.tree.is_released() {
            continue; // a released tree holds no probe-able state
        }
        let lost = probe
            .surviving_state(activity)
            .into_iter()
            .filter(|(_, survived)| !survived)
            .map(|(item, _)| &item.key);
        if Some(id) == foreground {
            result.foreground = lost.cloned().collect();
        } else {
            latent.extend(lost.cloned());
        }
    }
    result.latent = latent.into_iter().collect();
    result
}

#[derive(Debug, Default)]
struct Probe {
    foreground: Vec<String>,
    latent: Vec<String>,
}

/// Runs the oracle for one app under one system.
pub fn check(spec: &GenericAppSpec, mode: HandlingMode) -> DetectionReport {
    let mut device = Device::new(mode);
    let probe = spec.build();
    let Ok(component) = device.install_and_launch(
        Box::new(spec.build()),
        spec.base_memory_bytes,
        spec.complexity,
    ) else {
        // Failing to even launch is an issue; there is nothing to probe.
        return DetectionReport::crashed_report(&spec.name);
    };
    if device
        .with_foreground_activity_mut(|a| probe.apply_user_state(a))
        .is_err()
    {
        return DetectionReport::crashed_report(&spec.name);
    }
    if spec.uses_async_task {
        let _ = device.start_async_on_foreground(spec.async_task());
    }

    let _ = device.rotate();
    device.advance(SimDuration::from_secs(8)); // let any async task land
    let lost_after_one = if device.is_crashed(&component) {
        Vec::new()
    } else {
        lost_items(&device, &component, &probe).foreground
    };

    let _ = device.rotate();
    let crashed = device.is_crashed(&component);
    let (lost_after_two, latent_after_two) = if crashed {
        (Vec::new(), Vec::new())
    } else {
        let p = lost_items(&device, &component, &probe);
        (p.foreground, p.latent)
    };

    DetectionReport {
        app: spec.name.clone(),
        lost_after_one,
        lost_after_two,
        latent_after_two,
        crashed,
    }
}

/// One probe of a data-loss app's live instances, mirroring
/// [`lost_items`] for the per-field data-loss corpus.
fn dataloss_lost_items(
    device: &Device,
    component: &str,
    probe: &rch_workloads::GenericApp,
) -> Probe {
    let Ok(process) = device.process(component) else {
        return Probe::default();
    };
    let foreground = process.foreground_instance();
    let mut result = Probe::default();
    let mut latent = BTreeSet::new();
    for id in process.thread().alive_instances() {
        let Ok(activity) = process.thread().instance(id) else {
            continue;
        };
        if activity.tree.is_released() {
            continue;
        }
        let lost = probe
            .dataloss_surviving(activity)
            .into_iter()
            .filter(|(_, survived)| !survived)
            .map(|(field, _)| &field.key);
        if Some(id) == foreground {
            result.foreground = lost.cloned().collect();
        } else {
            latent.extend(lost.cloned());
        }
    }
    result.latent = latent.into_iter().collect();
    result
}

/// The dynamic data-loss oracle: drives the scenario's lifecycle
/// interleaving (per [`DataLossClass`]) and diffs pre-change field state
/// against what each live instance shows afterwards.
///
/// Rotation-based classes mirror [`check`]'s double-rotation schedule
/// (the single-rotation probe catches what RCHDroid's coin flip masks,
/// the latent probe catches the stale replacement shadow). The async
/// race lets the write land *after* both rotations, so only the final
/// probe is meaningful. Process death backgrounds the app behind a
/// parked helper, reclaims it under memory pressure — the ATMS retains
/// the save bundle, the persistent store survives by definition — and
/// switches back.
pub fn check_dataloss(spec: &GenericAppSpec, mode: HandlingMode) -> DetectionReport {
    let Some(class) = spec.dataloss.as_ref().map(|dl| dl.class) else {
        return DetectionReport {
            app: spec.name.clone(),
            lost_after_one: Vec::new(),
            lost_after_two: Vec::new(),
            latent_after_two: Vec::new(),
            crashed: false,
        };
    };
    let mut device = Device::new(mode);
    let app = spec.build();
    // The probe shares the installed copy's persistent store: state it
    // applies through the foreground activity writes the same "disk"
    // the installed model's on_create reads back.
    let probe = app.shared_probe();
    let Ok(component) =
        device.install_and_launch(Box::new(app), spec.base_memory_bytes, spec.complexity)
    else {
        return DetectionReport::crashed_report(&spec.name);
    };

    match class {
        DataLossClass::StopRestart
        | DataLossClass::SubStateOwner
        | DataLossClass::InputInFlight => {
            if device
                .with_foreground_activity_mut(|a| probe.apply_dataloss_state(a))
                .is_err()
            {
                return DetectionReport::crashed_report(&spec.name);
            }
            let _ = device.rotate();
            let lost_after_one = if device.is_crashed(&component) {
                Vec::new()
            } else {
                dataloss_lost_items(&device, &component, &probe).foreground
            };
            let _ = device.rotate();
            let crashed = device.is_crashed(&component);
            let (lost_after_two, latent_after_two) = if crashed {
                (Vec::new(), Vec::new())
            } else {
                let p = dataloss_lost_items(&device, &component, &probe);
                (p.foreground, p.latent)
            };
            DetectionReport {
                app: spec.name.clone(),
                lost_after_one,
                lost_after_two,
                latent_after_two,
                crashed,
            }
        }
        DataLossClass::AsyncRace => {
            if let Some(task) = spec.dataloss_async_task() {
                let _ = device.start_async_on_foreground(task);
            }
            let _ = device.rotate();
            let _ = device.rotate();
            device.advance(SimDuration::from_secs(8)); // the racing write lands
            let crashed = device.is_crashed(&component);
            let (lost_after_two, latent_after_two) = if crashed {
                (Vec::new(), Vec::new())
            } else {
                let p = dataloss_lost_items(&device, &component, &probe);
                (p.foreground, p.latent)
            };
            DetectionReport {
                app: spec.name.clone(),
                // Nothing to lose before the write lands.
                lost_after_one: Vec::new(),
                lost_after_two,
                latent_after_two,
                crashed,
            }
        }
        DataLossClass::ProcessDeath => {
            if device
                .with_foreground_activity_mut(|a| probe.apply_dataloss_state(a))
                .is_err()
            {
                return DetectionReport::crashed_report(&spec.name);
            }
            // Background the app behind a parked helper, reclaim it,
            // come back.
            let parker = GenericAppSpec::sized("DlParkerApp", "1K+", false);
            if device
                .install_and_launch(
                    Box::new(parker.build()),
                    parker.base_memory_bytes,
                    parker.complexity,
                )
                .is_err()
                || {
                    device.trigger_memory_pressure();
                    device.switch_to_app(&component).is_err()
                }
            {
                return DetectionReport::crashed_report(&spec.name);
            }
            let crashed = device.is_crashed(&component);
            let lost = if crashed {
                Vec::new()
            } else {
                dataloss_lost_items(&device, &component, &probe).foreground
            };
            DetectionReport {
                app: spec.name.clone(),
                lost_after_one: lost.clone(),
                lost_after_two: lost,
                latent_after_two: Vec::new(),
                crashed,
            }
        }
    }
}

/// Runs the oracle over a whole app set; returns the apps flagged.
pub fn flagged(specs: &[GenericAppSpec], mode: HandlingMode) -> Vec<String> {
    specs
        .iter()
        .map(|s| check(s, mode))
        .filter(DetectionReport::has_issue)
        .map(|r| r.app)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rch_workloads::{top100_specs, tp27_specs};

    #[test]
    fn oracle_rediscovers_table3_under_stock() {
        let specs = tp27_specs();
        let flagged = flagged(&specs, HandlingMode::Android10);
        assert_eq!(flagged.len(), 27, "every TP-27 app is flagged: {flagged:?}");
    }

    #[test]
    fn oracle_confirms_rchdroids_residue_on_tp27() {
        let specs = tp27_specs();
        let flagged = flagged(&specs, HandlingMode::rchdroid_default());
        assert_eq!(
            flagged,
            vec!["DiskDiggerPro", "Dock4Droid"],
            "only the member-unsaved two"
        );
    }

    #[test]
    fn oracle_rediscovers_table5_counts() {
        let specs = top100_specs();
        let stock = flagged(&specs, HandlingMode::Android10);
        assert_eq!(stock.len(), 63);
        let rch = flagged(&specs, HandlingMode::rchdroid_default());
        assert_eq!(
            rch,
            vec!["Filto", "HaircutPrank", "CastForChrome", "KingJamesBible"]
        );
    }

    #[test]
    fn single_rotation_check_is_what_catches_member_state() {
        // Under RCHDroid the double rotation flips the ORIGINAL instance
        // back: member state reappears and only the single-rotation check
        // sees the loss.
        let spec = tp27_specs().swap_remove(8); // DiskDiggerPro (MemberUnsaved)
        let report = check(&spec, HandlingMode::rchdroid_default());
        assert!(!report.lost_after_one.is_empty());
        assert!(report.lost_after_two.is_empty(), "masked by the flip");
        assert!(report.has_issue());
    }

    #[test]
    fn shadow_probe_sees_the_masked_loss_from_the_other_side() {
        // After the flip the foreground is whole again, but the shadow —
        // the replacement instance that never received the unsaved member
        // field — is not. The latent probe catches exactly that.
        let spec = tp27_specs().swap_remove(8); // DiskDiggerPro (MemberUnsaved)
        let report = check(&spec, HandlingMode::rchdroid_default());
        assert_eq!(
            report.latent_after_two, report.lost_after_one,
            "the shadow instance is missing what the sunny one lost before the flip"
        );

        // A view-held issue RCHDroid fixes leaves no latent residue: the
        // shadow was seeded by the essence migration.
        let fixed = tp27_specs().swap_remove(0);
        let report = check(&fixed, HandlingMode::rchdroid_default());
        assert!(report.latent_after_two.is_empty(), "{report:?}");
        assert!(!report.has_issue());
    }

    #[test]
    fn issue_free_apps_pass_the_oracle() {
        let specs = top100_specs();
        let instagram = specs.iter().find(|s| s.name == "Instagram").unwrap();
        let report = check(instagram, HandlingMode::Android10);
        assert!(!report.has_issue());
    }
}
