//! Cost breakdown: where each handling path's milliseconds go.
//!
//! The paper explains *why* the flip is fast (no creation, no mapping
//! build) but never itemises the costs; this harness prints the per-step
//! decomposition of each path straight from the calibrated model, so the
//! aggregate latencies in Figs. 7/10/14 can be audited step by step.

use droidsim_metrics::{AppCostProfile, CostModel};

/// One step of a path's cost.
#[derive(Debug, Clone)]
pub struct Step {
    /// Step label.
    pub name: &'static str,
    /// Cost in ms.
    pub ms: f64,
}

/// One handling path's decomposition.
#[derive(Debug, Clone)]
pub struct PathBreakdown {
    /// Path label.
    pub path: &'static str,
    /// Steps in execution order.
    pub steps: Vec<Step>,
}

impl PathBreakdown {
    /// Sum over the steps.
    pub fn total_ms(&self) -> f64 {
        self.steps.iter().map(|s| s.ms).sum()
    }
}

/// The full breakdown for one app profile.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// The profile decomposed.
    pub profile: AppCostProfile,
    /// One entry per handling path.
    pub paths: Vec<PathBreakdown>,
}

impl Breakdown {
    /// Renders the decomposition.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Cost breakdown (complexity {:.2}, {} views)\n",
            self.profile.complexity, self.profile.view_count
        ));
        for path in &self.paths {
            out.push_str(&format!(
                "\n{} — total {:.2} ms\n",
                path.path,
                path.total_ms()
            ));
            for step in &path.steps {
                let share = step.ms / path.total_ms() * 100.0;
                out.push_str(&format!(
                    "  {:<28} {:>8.2} ms {:>5.1}%\n",
                    step.name, step.ms, share
                ));
            }
        }
        out
    }
}

fn ms(d: droidsim_kernel::SimDuration) -> f64 {
    d.as_millis_f64()
}

/// Computes the decomposition for a profile.
pub fn breakdown(profile: AppCostProfile) -> Breakdown {
    let m = CostModel::calibrated();
    let p = &profile;
    let paths = vec![
        PathBreakdown {
            path: "Android-10 relaunch",
            steps: vec![
                Step {
                    name: "IPC (2 hops)",
                    ms: ms(m.ipc()) * 2.0,
                },
                Step {
                    name: "destroy old instance",
                    ms: ms(m.destroy(p)),
                },
                Step {
                    name: "create new instance",
                    ms: ms(m.create(p)),
                },
                Step {
                    name: "inflate layout",
                    ms: ms(m.inflate(p)),
                },
                Step {
                    name: "restore instance state",
                    ms: ms(m.restore(p)),
                },
                Step {
                    name: "first measure/layout/draw",
                    ms: ms(m.resume_fresh(p)),
                },
            ],
        },
        PathBreakdown {
            path: "RCHDroid first change (init)",
            steps: vec![
                Step {
                    name: "IPC (2 hops)",
                    ms: ms(m.ipc()) * 2.0,
                },
                Step {
                    name: "enter shadow + snapshot",
                    ms: ms(m.shadow_enter(p)),
                },
                Step {
                    name: "create sunny instance",
                    ms: ms(m.create(p)),
                },
                Step {
                    name: "inflate layout",
                    ms: ms(m.inflate(p)),
                },
                Step {
                    name: "restore from shadow bundle",
                    ms: ms(m.restore(p)),
                },
                Step {
                    name: "build essence mapping",
                    ms: ms(m.mapping_build(p.view_count)),
                },
                Step {
                    name: "couple instances",
                    ms: ms(m.init_coupling()),
                },
                Step {
                    name: "first measure/layout/draw",
                    ms: ms(m.resume_fresh(p)),
                },
            ],
        },
        PathBreakdown {
            path: "RCHDroid later change (flip)",
            steps: vec![
                Step {
                    name: "IPC (2 hops)",
                    ms: ms(m.ipc()) * 2.0,
                },
                Step {
                    name: "search task stack",
                    ms: ms(m.stack_search()),
                },
                Step {
                    name: "reorder record to top",
                    ms: ms(m.reorder()),
                },
                Step {
                    name: "swap shadow/sunny states",
                    ms: ms(m.state_swap()),
                },
                Step {
                    name: "re-show existing instance",
                    ms: ms(m.resume_existing(p)),
                },
            ],
        },
        PathBreakdown {
            path: "RuntimeDroid in-place",
            steps: vec![Step {
                name: "reload + reconstruct + relayout",
                ms: ms(m.runtimedroid(p)),
            }],
        },
    ];
    Breakdown { profile, paths }
}

/// The default decomposition (the 4-view benchmark app).
pub fn run() -> Breakdown {
    breakdown(AppCostProfile::benchmark(7))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_sum_to_the_composite_costs() {
        let m = CostModel::calibrated();
        let p = AppCostProfile::benchmark(7);
        let b = breakdown(p);
        let by_name = |n: &str| {
            b.paths
                .iter()
                .find(|x| x.path.contains(n))
                .unwrap()
                .total_ms()
        };
        assert!((by_name("Android-10") - m.android10_relaunch(&p).as_millis_f64()).abs() < 1e-6);
        assert!((by_name("init") - m.rchdroid_init(&p).as_millis_f64()).abs() < 1e-6);
        assert!((by_name("flip") - m.rchdroid_flip(&p).as_millis_f64()).abs() < 1e-6);
    }

    #[test]
    fn flip_skips_creation_entirely() {
        let b = run();
        let flip = b.paths.iter().find(|p| p.path.contains("flip")).unwrap();
        assert!(flip.steps.iter().all(|s| !s.name.contains("create")));
        assert!(flip.steps.iter().all(|s| !s.name.contains("inflate")));
        assert!(flip.steps.iter().all(|s| !s.name.contains("mapping")));
    }

    #[test]
    fn creation_dominates_the_init_path() {
        let b = run();
        let init = b.paths.iter().find(|p| p.path.contains("init")).unwrap();
        let create = init
            .steps
            .iter()
            .find(|s| s.name.contains("create"))
            .unwrap();
        assert!(
            create.ms > init.total_ms() * 0.25,
            "creation is the biggest single step"
        );
    }
}
