//! §5.6: energy consumption.
//!
//! The paper reads 4.03 W off a power meter for all 27 apps on both
//! systems: the shadow instance is inactive, so RCHDroid adds no power
//! draw the meter can resolve. The harness reproduces the measurement:
//! run each app's change workflow, integrate the handling CPU time, and
//! feed it to the board's energy model over the observation window.

use droidsim_device::HandlingMode;
use droidsim_kernel::SimDuration;
use droidsim_metrics::EnergyModel;
use rch_workloads::tp27_specs;

/// One app's meter readings.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// App name.
    pub name: String,
    /// Meter reading under Android 10 (W).
    pub android10_watts: f64,
    /// Meter reading under RCHDroid (W).
    pub rchdroid_watts: f64,
}

/// The experiment's data.
#[derive(Debug, Clone)]
pub struct EnergyStudy {
    /// Per-app readings.
    pub rows: Vec<EnergyRow>,
}

impl EnergyStudy {
    /// Renders the readings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("§5.6: board power after runtime changes (W)\n");
        out.push_str(&format!(
            "{:<18} {:>12} {:>12}\n",
            "App", "Android-10", "RCHDroid"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<18} {:>12.2} {:>12.2}\n",
                r.name, r.android10_watts, r.rchdroid_watts
            ));
        }
        out.push_str("=> paper: 4.03 W for all 27 apps on both systems\n");
        out
    }
}

/// The observation window the meter is read over — the paper reads the
/// meter *after* the runtime changes have happened, in steady state.
pub const OBSERVATION: SimDuration = SimDuration::from_secs(60);

fn observe(mode: HandlingMode, spec: &rch_workloads::GenericAppSpec) -> f64 {
    use droidsim_device::{Device, DeviceEvent};

    let meter = EnergyModel::rk3399();
    let mut device = Device::new(mode);
    let _ = device
        .install_and_launch(
            Box::new(spec.build()),
            spec.base_memory_bytes,
            spec.complexity,
        )
        .expect("launch");
    for _ in 0..4 {
        let _ = device.rotate();
        device.advance(SimDuration::from_secs(2));
    }

    // Steady-state observation: integrate the only ongoing work — the
    // shadow instance is inactive, so under RCHDroid that is just the
    // periodic GC check (and any late lazy migrations).
    let before = device.events().len();
    device.advance(OBSERVATION);
    let gc_run = device.cost_model().gc_run();
    let busy: SimDuration = device.events()[before..]
        .iter()
        .map(|e| match e {
            DeviceEvent::GcPass { .. } => gc_run,
            DeviceEvent::AsyncDelivered {
                migration_latency: Some(d),
                ..
            } => *d,
            _ => SimDuration::ZERO,
        })
        .sum();
    meter.meter_reading(OBSERVATION, busy)
}

/// Runs the energy study.
pub fn run() -> EnergyStudy {
    let rows = tp27_specs()
        .iter()
        .map(|spec| {
            let mut spec = spec.clone();
            spec.uses_async_task = false;
            EnergyRow {
                name: spec.name.clone(),
                android10_watts: observe(HandlingMode::Android10, &spec),
                rchdroid_watts: observe(HandlingMode::rchdroid_default(), &spec),
            }
        })
        .collect();
    EnergyStudy { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_4_03_watts_everywhere() {
        let study = run();
        assert_eq!(study.rows.len(), 27);
        for r in &study.rows {
            assert!(
                (r.android10_watts - 4.03).abs() <= 0.03,
                "{}: {}",
                r.name,
                r.android10_watts
            );
            assert!(
                (r.rchdroid_watts - 4.03).abs() <= 0.03,
                "{}: {}",
                r.name,
                r.rchdroid_watts
            );
        }
    }

    #[test]
    fn rchdroid_draws_no_more_than_stock() {
        let study = run();
        for r in &study.rows {
            assert!(r.rchdroid_watts <= r.android10_watts + 0.011, "{}", r.name);
        }
    }
}
