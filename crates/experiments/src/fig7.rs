//! Fig. 7: runtime change handling time, RCHDroid vs Android-10, on the
//! TP-27 set.
//!
//! Each app runs the 4-change workflow under both systems; the reported
//! per-app number is the mean handling latency. The paper's headline:
//! RCHDroid saves 25.46 % on average.

use crate::scenario::{run_app, RunConfig};
use droidsim_device::HandlingMode;
use droidsim_metrics::Summary;
use rch_workloads::tp27_specs;

/// One app's bar pair.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// App name.
    pub name: String,
    /// Mean handling latency under Android 10 (ms).
    pub android10_ms: f64,
    /// Mean handling latency under RCHDroid (ms).
    pub rchdroid_ms: f64,
}

impl Fig7Row {
    /// Relative saving for this app.
    pub fn saving(&self) -> f64 {
        (self.android10_ms - self.rchdroid_ms) / self.android10_ms
    }
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Per-app pairs.
    pub rows: Vec<Fig7Row>,
}

impl Fig7 {
    /// Mean saving across apps (the paper's 25.46 %).
    pub fn mean_saving(&self) -> f64 {
        let stock = Summary::of(&self.rows.iter().map(|r| r.android10_ms).collect::<Vec<_>>());
        let rch = Summary::of(&self.rows.iter().map(|r| r.rchdroid_ms).collect::<Vec<_>>());
        rch.saving_vs(&stock)
    }

    /// Renders the series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig. 7: runtime change handling time (ms), TP-27 set\n");
        out.push_str(&format!(
            "{:<18} {:>12} {:>12} {:>9}\n",
            "App", "Android-10", "RCHDroid", "Saving"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<18} {:>12.1} {:>12.1} {:>8.1}%\n",
                r.name,
                r.android10_ms,
                r.rchdroid_ms,
                r.saving() * 100.0
            ));
        }
        out.push_str(&format!(
            "=> average saving: {:.2}% (paper: 25.46%)\n",
            self.mean_saving() * 100.0
        ));
        out
    }
}

/// Runs the Fig. 7 experiment. Async tasks are disabled so every app
/// survives the full stock sequence (latency comparison needs equal
/// change counts; crashes are Table 3's subject).
pub fn run() -> Fig7 {
    let rows = tp27_specs()
        .iter()
        .map(|spec| {
            let mut spec = spec.clone();
            spec.uses_async_task = false;
            let stock = run_app(&spec, &RunConfig::new(HandlingMode::Android10));
            let rch = run_app(&spec, &RunConfig::new(HandlingMode::rchdroid_default()));
            Fig7Row {
                name: spec.name.clone(),
                android10_ms: stock.mean_latency_ms(),
                rchdroid_ms: rch.mean_latency_ms(),
            }
        })
        .collect();
    Fig7 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saving_is_near_the_papers_25_percent() {
        let fig = run();
        assert_eq!(fig.rows.len(), 27);
        let saving = fig.mean_saving() * 100.0;
        assert!(
            (20.0..=32.0).contains(&saving),
            "saving = {saving:.2}% (paper: 25.46%)"
        );
    }

    #[test]
    fn rchdroid_wins_on_every_app() {
        let fig = run();
        for r in &fig.rows {
            assert!(r.rchdroid_ms < r.android10_ms, "{}", r.name);
        }
    }

    #[test]
    fn latencies_are_in_plausible_ranges() {
        let fig = run();
        for r in &fig.rows {
            assert!(
                (100.0..=260.0).contains(&r.android10_ms),
                "{}: {}",
                r.name,
                r.android10_ms
            );
            assert!(
                (70.0..=220.0).contains(&r.rchdroid_ms),
                "{}: {}",
                r.name,
                r.rchdroid_ms
            );
        }
    }
}
