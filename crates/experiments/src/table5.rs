//! Table 5 + Fig. 14 (§6): the Google-Play top-100 study.
//!
//! For every app: does a runtime-change issue exist under stock handling,
//! and does RCHDroid fix it? For the 59 apps RCHDroid fixes, Fig. 14
//! compares handling time (paper: 250.39 vs 420.58 ms, a 38.60 % saving)
//! and memory (173.85 vs 162.28 MB, +7.13 %).

use crate::scenario::{run_app, RunConfig};
use droidsim_device::HandlingMode;
use droidsim_fleet::{
    combine_ordered, run_fleet, run_fleet_supervised, Digest, FleetConfig, FleetError,
    FleetOptions, FleetRun, TaskCtx, TaskOutcome,
};
use droidsim_metrics::Summary;
use rch_workloads::{top100_specs, GenericAppSpec};

/// One app's study row.
#[derive(Debug, Clone)]
pub struct Top100Row {
    /// 1-based app number.
    pub number: usize,
    /// App name.
    pub name: String,
    /// Download bucket.
    pub downloads: &'static str,
    /// The documented problem, if any.
    pub problem: Option<String>,
    /// Whether an issue was observed under stock handling.
    pub issue_under_stock: bool,
    /// Whether RCHDroid fixed it (only meaningful when an issue exists).
    pub fixed_by_rchdroid: bool,
    /// Mean handling latency under Android-10 (ms).
    pub android10_ms: f64,
    /// Mean handling latency under RCHDroid (ms).
    pub rchdroid_ms: f64,
    /// PSS under Android-10 (MiB).
    pub android10_mib: f64,
    /// PSS under RCHDroid (MiB).
    pub rchdroid_mib: f64,
}

impl Top100Row {
    /// A digest of every field, bit-exact for the float columns — what
    /// the fleet reduction compares between serial and parallel runs.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_u64(self.number as u64);
        d.write_str(&self.name);
        d.write_str(self.downloads);
        d.write_str(self.problem.as_deref().unwrap_or(""));
        d.write_u64(u64::from(self.issue_under_stock));
        d.write_u64(u64::from(self.fixed_by_rchdroid));
        d.write_f64(self.android10_ms);
        d.write_f64(self.rchdroid_ms);
        d.write_f64(self.android10_mib);
        d.write_f64(self.rchdroid_mib);
        d.finish()
    }
}

/// The whole study.
#[derive(Debug, Clone)]
pub struct Top100Study {
    /// All 100 rows.
    pub rows: Vec<Top100Row>,
}

impl Top100Study {
    /// Apps with an issue under stock handling.
    pub fn issue_count(&self) -> usize {
        self.rows.iter().filter(|r| r.issue_under_stock).count()
    }

    /// Issue apps that RCHDroid fixed.
    pub fn fixed_count(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.issue_under_stock && r.fixed_by_rchdroid)
            .count()
    }

    /// The 59 fixed apps' rows (Fig. 14's population).
    pub fn fixed_rows(&self) -> Vec<&Top100Row> {
        self.rows
            .iter()
            .filter(|r| r.issue_under_stock && r.fixed_by_rchdroid)
            .collect()
    }

    /// Fig. 14(a): mean handling latencies `(android10, rchdroid)` over
    /// the fixed apps.
    pub fn fig14a(&self) -> (f64, f64) {
        let rows = self.fixed_rows();
        let stock = Summary::of(&rows.iter().map(|r| r.android10_ms).collect::<Vec<_>>());
        let rch = Summary::of(&rows.iter().map(|r| r.rchdroid_ms).collect::<Vec<_>>());
        (stock.mean, rch.mean)
    }

    /// Fig. 14(b): mean PSS `(android10, rchdroid)` over the fixed apps.
    pub fn fig14b(&self) -> (f64, f64) {
        let rows = self.fixed_rows();
        let stock = Summary::of(&rows.iter().map(|r| r.android10_mib).collect::<Vec<_>>());
        let rch = Summary::of(&rows.iter().map(|r| r.rchdroid_mib).collect::<Vec<_>>());
        (stock.mean, rch.mean)
    }

    /// Per-app digests in row order (see [`Top100Row::digest`]).
    pub fn digests(&self) -> Vec<u64> {
        self.rows.iter().map(Top100Row::digest).collect()
    }

    /// One digest over the whole study, folding the per-app digests in
    /// row order. A parallel run must produce the same value as serial.
    pub fn digest(&self) -> u64 {
        combine_ordered(self.digests())
    }

    /// Renders Table 5 plus the Fig. 14 summaries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Table 5: runtime change issues in Google Play top 100 apps\n");
        out.push_str(&format!(
            "{:<4} {:<20} {:<10} {:<8} {:<30} {}\n",
            "No.", "App Name", "Downloads", "Issue", "Specific Problem", "RCHDroid"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<4} {:<20} {:<10} {:<8} {:<30} {}\n",
                r.number,
                r.name,
                r.downloads,
                if r.issue_under_stock { "Yes" } else { "No" },
                r.problem.as_deref().unwrap_or("No"),
                if !r.issue_under_stock {
                    "-"
                } else if r.fixed_by_rchdroid {
                    "fixed"
                } else {
                    "NOT fixed"
                }
            ));
        }
        let (a10_ms, rch_ms) = self.fig14a();
        let (a10_mb, rch_mb) = self.fig14b();
        out.push_str(&format!(
            "\n=> issues: {}/100 (paper: 63); fixed by RCHDroid: {}/{} (paper: 59/63)\n",
            self.issue_count(),
            self.fixed_count(),
            self.issue_count()
        ));
        out.push_str(&format!(
            "=> Fig. 14(a): handling time {:.2} vs {:.2} ms, saving {:.2}% \
             (paper: 420.58 / 250.39 / 38.60%)\n",
            a10_ms,
            rch_ms,
            (a10_ms - rch_ms) / a10_ms * 100.0
        ));
        out.push_str(&format!(
            "=> Fig. 14(b): memory {:.2} vs {:.2} MiB, overhead {:.2}% \
             (paper: 162.28 / 173.85 / 7.13%)\n",
            a10_mb,
            rch_mb,
            (rch_mb - a10_mb) / a10_mb * 100.0
        ));
        out
    }
}

/// Measures one app of the study (one fleet task).
fn measure_row(ctx: TaskCtx, spec: GenericAppSpec) -> Top100Row {
    // Effectiveness is judged after a *single* change (the §6
    // procedure: change once and observe the state); performance
    // and memory use the steady-state 4-change workflow.
    let stock_once = run_app(&spec, &RunConfig::new(HandlingMode::Android10).changes(1));
    let rch_once = run_app(
        &spec,
        &RunConfig::new(HandlingMode::rchdroid_default()).changes(1),
    );
    let stock = run_app(&spec, &RunConfig::new(HandlingMode::Android10));
    let rch = run_app(&spec, &RunConfig::new(HandlingMode::rchdroid_default()));
    Top100Row {
        number: ctx.index + 1,
        name: spec.name.clone(),
        downloads: spec.downloads,
        problem: spec.issue.clone(),
        issue_under_stock: stock_once.issue_observed(),
        fixed_by_rchdroid: !rch_once.issue_observed(),
        android10_ms: stock.mean_latency_ms(),
        rchdroid_ms: rch.mean_latency_ms(),
        android10_mib: stock.memory_mib,
        rchdroid_mib: rch.memory_mib,
    }
}

/// Runs the full study, partitioning the 100 apps across the fleet
/// described by `cfg`. Every app simulates on its own `Device` with its
/// own clocks and sinks, so the rows — and their digests — are identical
/// for any worker count.
pub fn run_with_config(cfg: &FleetConfig) -> Top100Study {
    let rows = run_fleet(cfg, top100_specs(), measure_row);
    Top100Study { rows }
}

/// A crash-safe top-100 run: per-app outcomes plus the fleet report.
/// Unlike [`run_with_config`], a panicking or stalling app costs only
/// its own row.
#[derive(Debug)]
pub struct Top100Run {
    /// Per-app outcomes in app order, per-app digests, and the report.
    pub fleet: FleetRun<Top100Row>,
}

impl Top100Run {
    /// The complete study, when every app produced a fresh row this run
    /// (`None` after a resume or when any app is quarantined).
    pub fn study(&self) -> Option<Top100Study> {
        let rows: Option<Vec<Top100Row>> = self
            .fleet
            .outcomes
            .iter()
            .map(|o| o.ok().cloned())
            .collect();
        rows.map(|rows| Top100Study { rows })
    }

    /// The study digest: fresh-row digests and journal-recorded digests
    /// of skipped rows, folded in app order. `None` while any app is
    /// quarantined — a partial study has no comparable digest.
    pub fn digest(&self) -> Option<u64> {
        self.fleet.combined_digest()
    }

    /// Renders the study. A complete fresh run gets the full Table 5;
    /// otherwise the fresh rows print with placeholders for skipped and
    /// lost apps. Either way the fleet report (with the QUARANTINED
    /// footer when tasks were lost) closes the output.
    pub fn render(&self) -> String {
        let mut out = match self.study() {
            Some(study) => study.render(),
            None => {
                let mut out = String::new();
                out.push_str("Table 5 (partial): runtime change issues, supervised run\n");
                for (i, o) in self.fleet.outcomes.iter().enumerate() {
                    match o {
                        TaskOutcome::Ok(r) => out.push_str(&format!(
                            "{:<4} {:<20} issue={:<5} rchdroid={}\n",
                            r.number,
                            r.name,
                            r.issue_under_stock,
                            if !r.issue_under_stock {
                                "-"
                            } else if r.fixed_by_rchdroid {
                                "fixed"
                            } else {
                                "NOT fixed"
                            }
                        )),
                        TaskOutcome::Skipped { digest, .. } => out.push_str(&format!(
                            "{:<4} (resumed from journal, digest {digest:016x})\n",
                            i + 1
                        )),
                        _ => out.push_str(&format!("{:<4} (LOST: {})\n", i + 1, o.tag())),
                    }
                }
                out
            }
        };
        out.push('\n');
        out.push_str(&self.fleet.report.render());
        out
    }
}

/// Runs the study under fleet supervision: app panics are isolated,
/// transient faults retried on the same per-app RNG stream, stalls
/// timed out, and — when `opts` names a journal — every completed app
/// checkpointed so an interrupted study can `--resume`.
pub fn run_supervised(cfg: &FleetConfig, opts: &FleetOptions) -> Result<Top100Run, FleetError> {
    let fleet = run_fleet_supervised(cfg, opts, top100_specs(), measure_row, Top100Row::digest)?;
    Ok(Top100Run { fleet })
}

/// Runs the full study with the worker count taken from `DROIDSIM_JOBS`
/// (default: available cores).
pub fn run() -> Top100Study {
    run_with_config(&FleetConfig::from_env(None, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_matches_section6_counts() {
        let study = run();
        assert_eq!(study.rows.len(), 100);
        assert_eq!(study.issue_count(), 63, "63 of 100 apps have issues");
        assert_eq!(study.fixed_count(), 59, "RCHDroid fixes 59 of 63 (93.65%)");
        let unfixed: Vec<&str> = study
            .rows
            .iter()
            .filter(|r| r.issue_under_stock && !r.fixed_by_rchdroid)
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(
            unfixed,
            vec!["Filto", "HaircutPrank", "CastForChrome", "KingJamesBible"]
        );
    }

    #[test]
    fn fig14a_matches_the_paper_band() {
        let study = run();
        let (a10, rch) = study.fig14a();
        assert!(
            (380.0..=460.0).contains(&a10),
            "Android-10 {a10:.1} (paper 420.58)"
        );
        assert!(
            (220.0..=290.0).contains(&rch),
            "RCHDroid {rch:.1} (paper 250.39)"
        );
        let saving = (a10 - rch) / a10 * 100.0;
        assert!(
            (33.0..=45.0).contains(&saving),
            "saving {saving:.1}% (paper 38.60%)"
        );
    }

    #[test]
    fn fig14b_matches_the_paper_band() {
        let study = run();
        let (a10, rch) = study.fig14b();
        assert!(
            (155.0..=170.0).contains(&a10),
            "Android-10 {a10:.1} MiB (paper 162.28)"
        );
        assert!(
            (165.0..=182.0).contains(&rch),
            "RCHDroid {rch:.1} MiB (paper 173.85)"
        );
        let overhead = (rch - a10) / a10 * 100.0;
        assert!(
            (5.0..=9.5).contains(&overhead),
            "overhead {overhead:.1}% (paper 7.13%)"
        );
    }

    #[test]
    fn self_handling_apps_have_no_issue_under_stock() {
        let study = run();
        let specs = top100_specs();
        for (row, spec) in study.rows.iter().zip(&specs) {
            if spec.handles_changes {
                assert!(!row.issue_under_stock, "{}", row.name);
            }
        }
    }
}
