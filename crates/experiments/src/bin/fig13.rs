//! Regenerates the Fig. 13 showcase as textual state dumps.
fn main() {
    print!("{}", rch_experiments::fig13::run().render());
}
