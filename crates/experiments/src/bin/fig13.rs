//! Regenerates the Fig. 13 showcase as textual state dumps.
fn main() {
    rch_experiments::version_flag();
    print!("{}", rch_experiments::fig13::run().render());
}
