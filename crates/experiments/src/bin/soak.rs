//! Crash-safety soak: a bounded fleet with injected panics and stalls.
//!
//! Runs 40 top-100 app simulations under the supervised fleet with a 5 %
//! `fleet-task` fault rate, a stall watchdog, two retries, and two apps
//! hard-broken on purpose (they panic on every attempt). The run must
//! finish — isolating every injected fault, retrying the transient ones,
//! and quarantining the hard-broken pair — and exit 0 with a non-empty
//! quarantine report. The journal and per-task crash dumps land under
//! `target/soak/` so CI can archive them.
//!
//! Exit codes: 0 — survived with the expected quarantine; 1 — the soak
//! contract was violated (no quarantine, or collateral task loss).

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use droidsim_device::HandlingMode;
use droidsim_faults::{FaultPlan, FaultSite};
use droidsim_fleet::{run_fleet_supervised, Digest, FleetConfig, FleetOptions};
use rch_experiments::{run_app, RunConfig};
use rch_workloads::top100_sample;

const TASKS: usize = 40;
const FAULT_RATE: f64 = 0.05;
const SOAK_SEED: u64 = 0x50AC;
/// Two tasks that panic on every attempt: the quarantine report is
/// guaranteed non-empty, which is what the soak asserts.
const HARD_FAIL: [usize; 2] = [7, 23];

fn main() {
    rch_experiments::version_flag();
    let dir = PathBuf::from("target/soak");
    fs::create_dir_all(&dir).expect("create target/soak");
    let journal = dir.join("soak.journal");
    let _ = fs::remove_file(&journal); // each soak starts fresh

    let cfg = FleetConfig::from_env(None, SOAK_SEED);
    let mut opts = FleetOptions::new()
        .with_retries(2)
        .with_budget(Duration::from_millis(2_000))
        .with_faults(
            FaultPlan::seeded(SOAK_SEED)
                .with_rate(FaultSite::FleetTask, FAULT_RATE)
                // Force one transient stall (task 14's kind-draw lands on
                // "stall" under this seed) so every soak provably drives
                // the watchdog: the first attempt times out, the retry
                // recovers the task.
                .on_nth_probe(FaultSite::FleetTask, 15),
        )
        .with_hard_fail(HARD_FAIL.to_vec())
        .with_journal(&journal);
    // Injected stalls sleep far past the budget so the watchdog (not the
    // sleep ending) is what reclaims the worker.
    opts.stall_for = Duration::from_secs(5);

    let run = run_fleet_supervised(
        &cfg,
        &opts,
        top100_sample(TASKS),
        |_ctx, spec| {
            let outcome = run_app(&spec, &RunConfig::new(HandlingMode::rchdroid_default()));
            (
                spec.name.clone(),
                outcome.mean_latency_ms(),
                outcome.memory_mib,
            )
        },
        |(name, ms, mib)| {
            let mut d = Digest::new();
            d.write_str(name);
            d.write_f64(*ms);
            d.write_f64(*mib);
            d.finish()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    print!("{}", run.report.render());

    // Archive one crash dump per quarantined task for CI artifacts.
    for q in &run.report.quarantined {
        let dump = dir.join(format!("crash-{:03}.txt", q.index));
        fs::write(
            &dump,
            format!(
                "kind: {}\nattempts: {}\npayload: {}\n{}\n",
                q.kind,
                q.attempts,
                q.payload,
                q.repro_line()
            ),
        )
        .expect("write crash dump");
    }
    println!(
        "soak: {} task(s), {} quarantined, journal {} dumps in {}",
        TASKS,
        run.report.quarantined.len(),
        journal.display(),
        dir.display()
    );

    // The soak contract: the hard-broken pair is quarantined, nothing
    // else is lost, and every other task produced a result.
    let quarantined: Vec<usize> = run.report.quarantined.iter().map(|q| q.index).collect();
    if quarantined != HARD_FAIL.to_vec() {
        eprintln!(
            "soak FAILED: expected quarantine {:?}, got {:?} — an injected fault leaked \
             past its retries or a hard-broken task survived",
            HARD_FAIL, quarantined
        );
        std::process::exit(1);
    }
    let ok = run.outcomes.iter().filter(|o| o.is_ok()).count();
    if ok != TASKS - HARD_FAIL.len() {
        eprintln!(
            "soak FAILED: {ok} results, expected {}",
            TASKS - HARD_FAIL.len()
        );
        std::process::exit(1);
    }
    println!("soak OK: fleet survived injected panics and stalls");
}
