//! Regenerates the paper's table3 result; see `rch_experiments::table3`.
fn main() {
    print!("{}", rch_experiments::table3::run().render());
}
