//! Regenerates the paper's table3 result; see `rch_experiments::table3`.
fn main() {
    rch_experiments::version_flag();
    print!("{}", rch_experiments::table3::run().render());
}
