//! Regenerates the paper's fig11 result; see `rch_experiments::fig11`.
fn main() {
    print!("{}", rch_experiments::fig11::run().render());
}
