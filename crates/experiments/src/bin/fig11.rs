//! Regenerates the paper's fig11 result; see `rch_experiments::fig11`.
fn main() {
    rch_experiments::version_flag();
    print!("{}", rch_experiments::fig11::run().render());
}
