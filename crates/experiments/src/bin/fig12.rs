//! Regenerates the paper's fig12 result; see `rch_experiments::fig12`.
fn main() {
    rch_experiments::version_flag();
    print!("{}", rch_experiments::fig12::run().render());
}
