//! Bench-regression gate: compares a fresh `CRITERION_JSON` run against
//! the committed reference under `results/` and fails CI when the hot
//! paths drift.
//!
//! ```text
//! bench_gate <fresh.json> <baseline.json> [<fresh2.json> <baseline2.json> ...]
//! ```
//!
//! For every benchmark id present in a baseline file the gate looks up
//! the fresh mean and prints one delta-table row. A benchmark is out of
//! band when the fresh mean differs from the baseline by more than
//! ±15 %: slower is a regression, faster means the committed reference
//! is stale — both exit non-zero so the reference stays honest. On top
//! of the per-benchmark band, the fleet file carries a hard scaling
//! assertion: `fleet_parallel/jobs/8` must run in at most half the
//! `fleet_parallel/jobs/1` mean.
//!
//! Both checks are only meaningful on hardware comparable to the
//! reference runner. Each JSON document carries the machine block the
//! vendored criterion harness emits (`logical_cores`, the
//! `DROIDSIM_JOBS` resolution); when the fresh machine's core count
//! differs from the baseline's — a laptop checking against the 8-core
//! CI reference — every violation is downgraded to a warning and the
//! gate exits 0.
//!
//! The parser is deliberately small and hand-rolled (the workspace has
//! no JSON dependency): it reads the exact one-benchmark-per-line
//! layout the vendored harness writes, which is the only producer of
//! these files.

use std::process::ExitCode;

/// Relative tolerance band around every baseline mean.
const TOLERANCE: f64 = 0.15;
/// `jobs/8` must be at least this factor faster than `jobs/1`.
const SCALING_FACTOR: f64 = 0.5;
const FLEET_WIDE: &str = "fleet_parallel/jobs/1";
const FLEET_NARROW: &str = "fleet_parallel/jobs/8";
/// The warm-path cache must buy at least this speedup on the
/// repeated-shape fleet (cold mean / warm mean).
const MEMO_SPEEDUP: f64 = 1.5;
/// Allowed slowdown on the unique-shape fleet with the caches on.
/// Digesting a never-seen template once per probe is an irreducible
/// cost, and the unique arms re-build their 16 templates inside the
/// timed region, so this band is the general [`TOLERANCE`] plus the
/// arm's observed run-to-run variance. The pre-admission-fix
/// regression this check exists to catch measured +22%.
const MEMO_UNIQUE_TOLERANCE: f64 = 0.20;
/// The analyzer-throughput scaling pair: 8-way linting of the data-loss
/// corpus must run in at most this factor of the serial mean. Looser
/// than [`SCALING_FACTOR`]: per-app lint work is smaller than a full
/// device simulation, so fixed fleet overhead weighs more.
const THROUGHPUT_FACTOR: f64 = 0.6;
const THROUGHPUT_WIDE: &str = "fleet_parallel/rchlint_throughput/jobs/1";
const THROUGHPUT_NARROW: &str = "fleet_parallel/rchlint_throughput/jobs/8";
const MEMO_WARM: &str = "fleet_parallel/memo/warm";
const MEMO_COLD: &str = "fleet_parallel/memo/cold";
const MEMO_UNIQUE: &str = "fleet_parallel/memo/unique";
const MEMO_UNIQUE_COLD: &str = "fleet_parallel/memo/unique_cold";

#[derive(Debug, Clone, PartialEq)]
struct Benchmark {
    id: String,
    mean_ns: f64,
    iterations: u64,
}

#[derive(Debug, Clone, Default, PartialEq)]
struct BenchDoc {
    logical_cores: Option<u64>,
    droidsim_jobs: Option<String>,
    benchmarks: Vec<Benchmark>,
}

/// Extracts the JSON string value following `"key": "` on `line`.
/// Escapes are left verbatim — ids and jobs strings never contain any.
fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the JSON number following `"key": ` on `line`.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let tail: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    tail.parse().ok()
}

/// Parses the vendored harness's `CRITERION_JSON` layout: one machine
/// line, then one line per benchmark.
fn parse_doc(text: &str) -> BenchDoc {
    let mut doc = BenchDoc::default();
    for line in text.lines() {
        if line.contains("\"machine\":") {
            doc.logical_cores = number_field(line, "logical_cores").map(|n| n as u64);
            doc.droidsim_jobs = string_field(line, "droidsim_jobs");
        } else if let Some(id) = string_field(line, "id") {
            let Some(mean_ns) = number_field(line, "mean_ns") else {
                continue;
            };
            let iterations = number_field(line, "iterations").map_or(0, |n| n as u64);
            doc.benchmarks.push(Benchmark {
                id,
                mean_ns,
                iterations,
            });
        }
    }
    doc
}

fn mean_of<'d>(doc: &'d BenchDoc, id: &str) -> Option<&'d Benchmark> {
    doc.benchmarks.iter().find(|b| b.id == id)
}

/// One violation, already rendered.
struct Violation {
    message: String,
}

/// Compares `fresh` to `baseline`, printing the delta table and
/// collecting violations.
fn compare_pair(label: &str, fresh: &BenchDoc, baseline: &BenchDoc) -> Vec<Violation> {
    let mut violations = Vec::new();
    println!("== {label}");
    println!(
        "   {:<44} {:>14} {:>14} {:>8}  verdict",
        "benchmark", "baseline ns", "fresh ns", "delta"
    );
    for base in &baseline.benchmarks {
        let Some(fresh_b) = mean_of(fresh, &base.id) else {
            violations.push(Violation {
                message: format!("{label}: `{}` missing from the fresh run", base.id),
            });
            println!(
                "   {:<44} {:>14.1} {:>14} {:>8}  MISSING",
                base.id, base.mean_ns, "-", "-"
            );
            continue;
        };
        if base.mean_ns == 0.0 || fresh_b.mean_ns == 0.0 {
            // --test smoke mode writes 0.0 means; nothing to compare.
            println!(
                "   {:<44} {:>14.1} {:>14.1} {:>8}  skipped (smoke)",
                base.id, base.mean_ns, fresh_b.mean_ns, "-"
            );
            continue;
        }
        let delta = (fresh_b.mean_ns - base.mean_ns) / base.mean_ns;
        let verdict = if delta > TOLERANCE {
            violations.push(Violation {
                message: format!(
                    "{label}: `{}` regressed {:+.1}% (baseline {:.1} ns, fresh {:.1} ns, band ±{:.0}%)",
                    base.id,
                    delta * 100.0,
                    base.mean_ns,
                    fresh_b.mean_ns,
                    TOLERANCE * 100.0
                ),
            });
            "REGRESSED"
        } else if delta < -TOLERANCE {
            violations.push(Violation {
                message: format!(
                    "{label}: `{}` improved {:+.1}% past the ±{:.0}% band — refresh the committed reference (make bench-json)",
                    base.id,
                    delta * 100.0,
                    TOLERANCE * 100.0
                ),
            });
            "STALE BASELINE"
        } else {
            "ok"
        };
        println!(
            "   {:<44} {:>14.1} {:>14.1} {:>+7.1}%  {verdict}",
            base.id,
            base.mean_ns,
            fresh_b.mean_ns,
            delta * 100.0
        );
    }
    violations
}

/// Whether `doc` was produced on a host that can demonstrate parallel
/// speedup at all. A single logical core runs every jobs=N arm on the
/// same core; its ratios measure scheduler overhead, not scaling, so
/// the scaling gates report them without enforcing.
fn can_scale(doc: &BenchDoc) -> bool {
    doc.logical_cores.is_none_or(|c| c > 1)
}

/// A generic narrow/wide scaling assertion over one document.
fn check_ratio(
    label: &str,
    doc: &BenchDoc,
    gate: &str,
    wide_id: &str,
    narrow_id: &str,
    factor: f64,
) -> Vec<Violation> {
    let (Some(wide), Some(narrow)) = (mean_of(doc, wide_id), mean_of(doc, narrow_id)) else {
        return Vec::new();
    };
    if wide.mean_ns == 0.0 || narrow.mean_ns == 0.0 {
        return Vec::new();
    }
    let ratio = narrow.mean_ns / wide.mean_ns;
    if !can_scale(doc) {
        println!("   {gate}: {narrow_id} / {wide_id} = {ratio:.3} (single core: not enforced)");
        return Vec::new();
    }
    println!("   {gate}: {narrow_id} / {wide_id} = {ratio:.3} (required ≤ {factor})");
    if ratio <= factor {
        Vec::new()
    } else {
        vec![Violation {
            message: format!(
                "{label}: `{narrow_id}` ran at {ratio:.2}× the `{wide_id}` mean; \
                 the {gate} gate requires ≤ {factor}×"
            ),
        }]
    }
}

/// The hard scaling assertion over one document's fleet arms.
fn check_scaling(label: &str, doc: &BenchDoc) -> Vec<Violation> {
    check_ratio(
        label,
        doc,
        "scaling",
        FLEET_WIDE,
        FLEET_NARROW,
        SCALING_FACTOR,
    )
}

/// The analyzer-throughput assertion over one document's
/// `rchlint_throughput` arms.
fn check_throughput(label: &str, doc: &BenchDoc) -> Vec<Violation> {
    check_ratio(
        label,
        doc,
        "rchlint-throughput",
        THROUGHPUT_WIDE,
        THROUGHPUT_NARROW,
        THROUGHPUT_FACTOR,
    )
}

/// The warm-path cache assertions over one document's memo arms:
/// repeated shapes must be ≥ [`MEMO_SPEEDUP`]× faster warm than cold,
/// and unique shapes must not pay more than the tolerance band for
/// having the caches on.
fn check_memo(label: &str, doc: &BenchDoc) -> Vec<Violation> {
    let mut violations = Vec::new();
    if let (Some(warm), Some(cold)) = (mean_of(doc, MEMO_WARM), mean_of(doc, MEMO_COLD)) {
        if warm.mean_ns > 0.0 && cold.mean_ns > 0.0 {
            let speedup = cold.mean_ns / warm.mean_ns;
            println!(
                "   memo: {MEMO_COLD} / {MEMO_WARM} = {speedup:.2}x (required ≥ {MEMO_SPEEDUP}x)"
            );
            if speedup < MEMO_SPEEDUP {
                violations.push(Violation {
                    message: format!(
                        "{label}: the warm-path cache bought only {speedup:.2}x on the \
                         repeated-shape fleet; the memo gate requires ≥ {MEMO_SPEEDUP}x"
                    ),
                });
            }
        }
    }
    if let (Some(on), Some(off)) = (mean_of(doc, MEMO_UNIQUE), mean_of(doc, MEMO_UNIQUE_COLD)) {
        if on.mean_ns > 0.0 && off.mean_ns > 0.0 {
            let overhead = on.mean_ns / off.mean_ns - 1.0;
            println!(
                "   memo: {MEMO_UNIQUE} / {MEMO_UNIQUE_COLD} = {:+.1}% (allowed ≤ +{:.0}%)",
                overhead * 100.0,
                MEMO_UNIQUE_TOLERANCE * 100.0
            );
            if overhead > MEMO_UNIQUE_TOLERANCE {
                violations.push(Violation {
                    message: format!(
                        "{label}: the caches cost {:+.1}% on the unique-shape fleet \
                         (allowed ≤ +{:.0}%) — the admission path regressed the miss path",
                        overhead * 100.0,
                        MEMO_UNIQUE_TOLERANCE * 100.0
                    ),
                });
            }
        }
    }
    violations
}

fn main() -> ExitCode {
    rch_experiments::version_flag();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!("usage: bench_gate <fresh.json> <baseline.json> [...more pairs]");
        return ExitCode::from(2);
    }

    let mut violations: Vec<Violation> = Vec::new();
    let mut core_mismatch = false;
    for pair in args.chunks(2) {
        let (fresh_path, base_path) = (&pair[0], &pair[1]);
        let read = |path: &str| match std::fs::read_to_string(path) {
            Ok(text) => Some(parse_doc(&text)),
            Err(e) => {
                eprintln!("bench_gate: cannot read {path}: {e}");
                None
            }
        };
        let (Some(fresh), Some(baseline)) = (read(fresh_path), read(base_path)) else {
            return ExitCode::from(2);
        };
        if let (Some(f), Some(b)) = (fresh.logical_cores, baseline.logical_cores) {
            if f != b {
                core_mismatch = true;
                println!(
                    "== {base_path}: machine mismatch — baseline has {b} logical core(s) \
                     (jobs={}), this machine has {f} (jobs={})",
                    baseline.droidsim_jobs.as_deref().unwrap_or("unset"),
                    fresh.droidsim_jobs.as_deref().unwrap_or("unset"),
                );
            }
        }
        violations.extend(compare_pair(base_path, &fresh, &baseline));
        violations.extend(check_scaling("fresh run", &fresh));
        violations.extend(check_scaling(base_path, &baseline));
        violations.extend(check_throughput("fresh run", &fresh));
        violations.extend(check_throughput(base_path, &baseline));
        violations.extend(check_memo("fresh run", &fresh));
        violations.extend(check_memo(base_path, &baseline));
    }

    if violations.is_empty() {
        println!(
            "bench gate: all benchmarks within ±{:.0}%",
            TOLERANCE * 100.0
        );
        return ExitCode::SUCCESS;
    }
    if core_mismatch {
        println!(
            "bench gate: {} violation(s) on mismatched hardware — reported as warnings only:",
            violations.len()
        );
        for v in &violations {
            println!("  warning: {}", v.message);
        }
        return ExitCode::SUCCESS;
    }
    eprintln!("bench gate: {} violation(s):", violations.len());
    for v in &violations {
        eprintln!("  {}", v.message);
    }
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "machine": {"logical_cores": 8, "droidsim_jobs": "unset"},
  "benchmarks": [
    {"id": "fleet_parallel/jobs/1", "mean_ns": 16000000.0, "iterations": 155},
    {"id": "fleet_parallel/jobs/8", "mean_ns": 6400000.0, "iterations": 300}
  ]
}
"#;

    #[test]
    fn parses_machine_and_benchmarks() {
        let doc = parse_doc(DOC);
        assert_eq!(doc.logical_cores, Some(8));
        assert_eq!(doc.droidsim_jobs.as_deref(), Some("unset"));
        assert_eq!(doc.benchmarks.len(), 2);
        assert_eq!(doc.benchmarks[0].id, "fleet_parallel/jobs/1");
        assert_eq!(doc.benchmarks[0].mean_ns, 16_000_000.0);
        assert_eq!(doc.benchmarks[1].iterations, 300);
    }

    #[test]
    fn tolerates_missing_machine_block() {
        let doc = parse_doc("{\n  \"benchmarks\": [\n    {\"id\": \"x\", \"mean_ns\": 5.0, \"iterations\": 1}\n  ]\n}\n");
        assert_eq!(doc.logical_cores, None);
        assert_eq!(doc.benchmarks.len(), 1);
    }

    #[test]
    fn in_band_run_passes() {
        let baseline = parse_doc(DOC);
        let mut fresh = baseline.clone();
        for b in &mut fresh.benchmarks {
            b.mean_ns *= 1.10; // +10 % is inside the ±15 % band
        }
        assert!(compare_pair("t", &fresh, &baseline).is_empty());
    }

    #[test]
    fn regression_and_stale_baseline_both_violate() {
        let baseline = parse_doc(DOC);
        let mut fresh = baseline.clone();
        fresh.benchmarks[0].mean_ns *= 1.30;
        fresh.benchmarks[1].mean_ns *= 0.50;
        let violations = compare_pair("t", &fresh, &baseline);
        assert_eq!(violations.len(), 2);
        assert!(violations[0].message.contains("regressed"));
        assert!(violations[1]
            .message
            .contains("refresh the committed reference"));
    }

    #[test]
    fn missing_fresh_benchmark_violates() {
        let baseline = parse_doc(DOC);
        let mut fresh = baseline.clone();
        fresh.benchmarks.pop();
        let violations = compare_pair("t", &fresh, &baseline);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("missing"));
    }

    #[test]
    fn scaling_gate_enforces_half() {
        let good = parse_doc(DOC); // 6.4 ms vs 16 ms = 0.4×
        assert!(check_scaling("t", &good).is_empty());
        let mut bad = good.clone();
        bad.benchmarks[1].mean_ns = 9_000_000.0; // 0.5625×
        let violations = check_scaling("t", &bad);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("scaling gate"));
    }

    #[test]
    fn throughput_gate_enforces_parallel_linting_on_multicore_only() {
        let doc = |cores: u64, narrow_ns: f64| {
            parse_doc(&format!(
                "{{\n  \"machine\": {{\"logical_cores\": {cores}, \"droidsim_jobs\": \"unset\"}},\n  \
                 \"benchmarks\": [\n    \
                 {{\"id\": \"fleet_parallel/rchlint_throughput/jobs/1\", \"mean_ns\": 10000000.0, \"iterations\": 50}},\n    \
                 {{\"id\": \"fleet_parallel/rchlint_throughput/jobs/8\", \"mean_ns\": {narrow_ns}, \"iterations\": 50}}\n  ]\n}}\n"
            ))
        };
        assert!(check_throughput("t", &doc(8, 5_000_000.0)).is_empty());
        let violations = check_throughput("t", &doc(8, 9_000_000.0));
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("rchlint-throughput"));
        // A single-core host cannot demonstrate scaling: report only.
        assert!(check_throughput("t", &doc(1, 9_000_000.0)).is_empty());
        assert!(check_scaling(
            "t",
            &parse_doc(&DOC.replace("\"logical_cores\": 8", "\"logical_cores\": 1"))
        )
        .is_empty());
    }

    const MEMO_DOC: &str = r#"{
  "machine": {"logical_cores": 8, "droidsim_jobs": "unset"},
  "benchmarks": [
    {"id": "fleet_parallel/memo/warm", "mean_ns": 1000000.0, "iterations": 100},
    {"id": "fleet_parallel/memo/cold", "mean_ns": 2000000.0, "iterations": 100},
    {"id": "fleet_parallel/memo/unique", "mean_ns": 2050000.0, "iterations": 100},
    {"id": "fleet_parallel/memo/unique_cold", "mean_ns": 2000000.0, "iterations": 100}
  ]
}
"#;

    #[test]
    fn memo_gate_enforces_speedup_and_unique_overhead() {
        let good = parse_doc(MEMO_DOC); // 2.0x warm speedup, +2.5% unique
        assert!(check_memo("t", &good).is_empty());

        let mut slow_warm = good.clone();
        slow_warm.benchmarks[0].mean_ns = 1_500_000.0; // 1.33x < 1.5x
        let violations = check_memo("t", &slow_warm);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("memo gate"));

        let mut costly_unique = good.clone();
        costly_unique.benchmarks[2].mean_ns = 2_500_000.0; // +25% > +20%
        let violations = check_memo("t", &costly_unique);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("unique-shape"));
    }

    #[test]
    fn memo_gate_skips_absent_and_smoke_arms() {
        // A doc with no memo arms (the migration bench) has nothing to
        // check; zero means (smoke mode) are skipped too.
        assert!(check_memo("t", &parse_doc(DOC)).is_empty());
        let mut smoke = parse_doc(MEMO_DOC);
        for b in &mut smoke.benchmarks {
            b.mean_ns = 0.0;
        }
        assert!(check_memo("t", &smoke).is_empty());
    }

    #[test]
    fn smoke_mode_zero_means_are_skipped() {
        let baseline = parse_doc(DOC);
        let mut fresh = baseline.clone();
        for b in &mut fresh.benchmarks {
            b.mean_ns = 0.0;
        }
        assert!(compare_pair("t", &fresh, &baseline).is_empty());
        assert!(check_scaling("t", &fresh).is_empty());
    }
}
