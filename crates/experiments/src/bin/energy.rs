//! Regenerates the paper's energy result; see `rch_experiments::energy`.
fn main() {
    print!("{}", rch_experiments::energy::run().render());
}
