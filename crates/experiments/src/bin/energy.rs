//! Regenerates the paper's energy result; see `rch_experiments::energy`.
fn main() {
    rch_experiments::version_flag();
    print!("{}", rch_experiments::energy::run().render());
}
