//! Runs the design-choice ablation study; see `rch_experiments::ablation`.
fn main() {
    print!("{}", rch_experiments::ablation::run().render());
}
