//! Runs the design-choice ablation study; see `rch_experiments::ablation`.
//!
//! `--jobs N` (or `DROIDSIM_JOBS=N`) partitions the arms across N
//! workers; the table is identical for any worker count.
fn main() {
    let cfg = rch_experiments::fleet_config_from_args();
    print!(
        "{}",
        rch_experiments::ablation::run_with_config(&cfg).render()
    );
}
