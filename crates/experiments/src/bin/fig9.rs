//! Regenerates the paper's fig9 result; see `rch_experiments::fig9`.
fn main() {
    rch_experiments::version_flag();
    print!("{}", rch_experiments::fig9::run().render());
}
