//! Regenerates the paper's fig9 result; see `rch_experiments::fig9`.
fn main() {
    print!("{}", rch_experiments::fig9::run().render());
}
