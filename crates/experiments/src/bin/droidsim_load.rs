//! `droidsim-load` — the daemon's load generator and verification
//! client.
//!
//! ```text
//! droidsim-load [--socket PATH] [--total N] [--clients N]
//!               [--job table5|fault-matrix] [--size N] [--rate-pct N]
//!               [--seed N] [--distinct N] [--inner-jobs N]
//!               [--mixed-priorities] [--wait-ms N] [--reconnect-ms N]
//!               [--chaos-drop-pct N] [--no-verify] [--no-memo]
//!               [--shutdown drain|now] [--version]
//! ```
//!
//! Submits `--total` jobs (default: **2× the daemon's queue capacity**,
//! queried over `cmd=health`) from `--clients` concurrent connections,
//! then waits for every acknowledged job to settle and audits the
//! daemon's zero-silent-drop contract:
//!
//! * every submission got an explicit answer — `accepted` or
//!   `rejected reason=…`;
//! * every acknowledged job reached a terminal state (a daemon kill and
//!   restart in the middle is fine: the client reconnects and the
//!   restarted daemon must resume the acknowledged backlog);
//! * unless `--no-verify`, every `done` digest equals the jobs=1
//!   reference run of the same spec, computed in-process.
//!
//! The summary reports p50/p95/p99 submit-to-done latency over the
//! jobs that completed — the operator-facing number a warm daemon is
//! supposed to improve. `--no-memo` disables the warm-path memo caches
//! for the *in-process* reference-digest computation (the daemon's own
//! `--no-memo` flag governs the daemon side); digests must match either
//! way.
//!
//! The client fan-out claims job indices through the same
//! `run_claiming_pool` skeleton the fleet drivers use. With
//! `--mixed-priorities` submissions cycle low/normal/high, which under
//! a full queue exercises displacement (`shed` is then an accepted
//! outcome); the default uniform-normal load tolerates no shedding.
//!
//! **Chaos arm.** Every submission carries a `dedupe_key`
//! (`load-<seed>-<index>`), and all traffic flows through the
//! `RetryingClient`, so a daemon restart or injected socket reset
//! mid-burst is survived transparently. With `--chaos-drop-pct N`, a
//! deterministic N % of indices first *lose their own ack* — submit,
//! drop the connection before reading the response — then blindly
//! resubmit; the answer must be `accepted` or `duplicate` of exactly
//! one job id. The audit additionally asserts no two indices share a
//! job id: zero lost, zero duplicated. On exit the daemon's
//! `cmd=health` line is printed, showing which state
//! (`running|draining|degraded|stopped`) the chaos left it in.
//!
//! Exit codes: 0 — contract held; 1 — a violation (silent drop, lost
//! acknowledgement, duplicated execution, digest mismatch); 2 — usage
//! error.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use droidsim_daemon::{
    Admission, Client, JobKind, JobSpec, JobState, Priority, RetryingClient, ShutdownMode,
};
use droidsim_fleet::run_claiming_pool;
use rch_experiments::daemon_exec::reference_digest;

struct LoadCli {
    socket: PathBuf,
    total: Option<usize>,
    clients: usize,
    job: String,
    size: usize,
    rate_pct: u8,
    seed: u64,
    distinct: usize,
    inner_jobs: usize,
    mixed_priorities: bool,
    wait_ms: u64,
    reconnect_ms: u64,
    chaos_drop_pct: u8,
    verify: bool,
    no_memo: bool,
    shutdown: Option<ShutdownMode>,
}

fn parse_cli(args: impl IntoIterator<Item = String>) -> Result<LoadCli, String> {
    let mut cli = LoadCli {
        socket: PathBuf::from("droidsimd.sock"),
        total: None,
        clients: 4,
        job: "table5".to_owned(),
        size: 4,
        rate_pct: 5,
        seed: 0x10AD,
        distinct: 4,
        inner_jobs: 1,
        mixed_priorities: false,
        wait_ms: 120_000,
        reconnect_ms: 30_000,
        chaos_drop_pct: 0,
        verify: true,
        no_memo: false,
        shutdown: None,
    };
    let mut args = args.into_iter();
    let value = |flag: &str, inline: Option<String>, args: &mut dyn Iterator<Item = String>| {
        inline
            .or_else(|| args.next())
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let number = |flag: &str, v: &str| -> Result<u64, String> {
        v.parse()
            .map_err(|_| format!("{flag}: not a number: {v:?}"))
    };
    while let Some(a) = args.next() {
        let (flag, inline) = match a.split_once('=') {
            Some((f, v)) => (f.to_owned(), Some(v.to_owned())),
            None => (a, None),
        };
        let flag = flag.as_str();
        match flag {
            "--socket" => cli.socket = PathBuf::from(value(flag, inline, &mut args)?),
            "--total" => cli.total = Some(number(flag, &value(flag, inline, &mut args)?)? as usize),
            "--clients" => {
                cli.clients = (number(flag, &value(flag, inline, &mut args)?)? as usize).max(1);
            }
            "--job" => {
                let v = value(flag, inline, &mut args)?;
                if !["table5", "fault-matrix"].contains(&v.as_str()) {
                    return Err(format!("--job: unknown kind {v:?} (table5|fault-matrix)"));
                }
                cli.job = v;
            }
            "--size" => {
                cli.size = (number(flag, &value(flag, inline, &mut args)?)? as usize).max(1);
            }
            "--rate-pct" => {
                let pct = number(flag, &value(flag, inline, &mut args)?)?;
                if pct > 100 {
                    return Err(format!("--rate-pct: {pct} is not a percentage"));
                }
                cli.rate_pct = pct as u8;
            }
            "--seed" => cli.seed = number(flag, &value(flag, inline, &mut args)?)?,
            "--distinct" => {
                cli.distinct = (number(flag, &value(flag, inline, &mut args)?)? as usize).max(1);
            }
            "--inner-jobs" => {
                cli.inner_jobs = (number(flag, &value(flag, inline, &mut args)?)? as usize).max(1);
            }
            "--mixed-priorities" => cli.mixed_priorities = true,
            "--wait-ms" => cli.wait_ms = number(flag, &value(flag, inline, &mut args)?)?,
            "--reconnect-ms" => cli.reconnect_ms = number(flag, &value(flag, inline, &mut args)?)?,
            "--chaos-drop-pct" => {
                let pct = number(flag, &value(flag, inline, &mut args)?)?;
                if pct > 100 {
                    return Err(format!("--chaos-drop-pct: {pct} is not a percentage"));
                }
                cli.chaos_drop_pct = pct as u8;
            }
            "--no-verify" => cli.verify = false,
            "--no-memo" => cli.no_memo = true,
            "--shutdown" => {
                let v = value(flag, inline, &mut args)?;
                cli.shutdown = Some(
                    ShutdownMode::parse(&v)
                        .ok_or_else(|| format!("--shutdown: unknown mode {v:?} (drain|now)"))?,
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(cli)
}

/// What one submission ended as, from the client's ledger.
enum Slot {
    /// Explicitly rejected with the daemon's reason.
    Rejected(String),
    /// Acknowledged; terminal state not yet observed.
    Accepted(u64),
    /// Acknowledged and settled.
    Settled(u64, JobState),
    /// The contract was violated for this index.
    Violation(String),
}

fn spec_for(cli: &LoadCli, index: usize) -> JobSpec {
    let kind = if cli.job == "fault-matrix" {
        JobKind::FaultMatrix {
            tasks: cli.size,
            rate_pct: cli.rate_pct,
        }
    } else {
        JobKind::Table5 { apps: cli.size }
    };
    let mut spec = JobSpec::new(kind)
        .with_seed(cli.seed + (index % cli.distinct) as u64)
        .with_tag(format!("load-{index}"))
        // Every submission is idempotent-keyed, so any retry schedule
        // (lost acks, daemon restarts) converges on one execution.
        .with_dedupe_key(format!("load-{:x}-{index}", cli.seed));
    spec.inner_jobs = cli.inner_jobs;
    if cli.mixed_priorities {
        spec = spec.with_priority(Priority::ALL[index % Priority::ALL.len()]);
    }
    spec
}

/// Deterministic per-index chaos decision: splitmix64 of (seed, index)
/// so the same seed replays the same drop schedule.
fn chaos_hits(seed: u64, index: usize, pct: u8) -> bool {
    if pct == 0 {
        return false;
    }
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(index as u64 + 1))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % 100) < pct as u64
}

fn retrying(cli: &LoadCli) -> RetryingClient {
    RetryingClient::new(&cli.socket).with_deadline(Duration::from_millis(cli.reconnect_ms))
}

fn main() {
    rch_experiments::version_flag();
    let cli = parse_cli(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if cli.no_memo {
        droidsim_kernel::memo::set_enabled(false);
    }

    // Size the burst off the daemon's own capacity: 2x forces the
    // admission path to answer under overload.
    let mut probe = Client::connect_retry(&cli.socket, Duration::from_millis(cli.reconnect_ms))
        .unwrap_or_else(|e| {
            eprintln!("error: connect {}: {e}", cli.socket.display());
            std::process::exit(2);
        });
    let capacity: usize = probe
        .health()
        .ok()
        .and_then(|h| num_field(&h, "queue_capacity"))
        .unwrap_or(16);
    drop(probe);
    let total = cli.total.unwrap_or(capacity * 2);

    // The jobs=1 references, one per distinct seed, computed before the
    // burst so the comparison window contains only daemon work.
    let references: Vec<Option<u64>> = (0..cli.distinct)
        .map(|d| {
            if !cli.verify {
                return None;
            }
            match reference_digest(&spec_for(&cli, d)) {
                Ok(digest) => Some(digest),
                Err(e) => {
                    eprintln!("error: reference digest (seed offset {d}): {e}");
                    std::process::exit(2);
                }
            }
        })
        .collect();

    println!(
        "droidsim-load: {total} x {} (size {}, {} distinct seed(s)) via {} client(s) -> {}",
        cli.job,
        cli.size,
        cli.distinct,
        cli.clients,
        cli.socket.display()
    );

    // Submit burst: client threads claim index chunks through the same
    // pool skeleton the fleet drivers use. The submit instant per index
    // anchors the submit-to-done latency the summary reports.
    let slots: Vec<Mutex<Option<Slot>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let submitted_at: Vec<Mutex<Option<Instant>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let dedupe_converged = std::sync::atomic::AtomicUsize::new(0);
    run_claiming_pool(cli.clients, total, |range| {
        let mut rc = retrying(&cli);
        for i in range {
            let spec = spec_for(&cli, i);
            let sent = Instant::now();
            // Chaos arm: lose our own ack — the daemon hears the
            // submit, we never read the answer — then blindly resubmit
            // the same dedupe key.
            let mut ack_lost = false;
            if chaos_hits(cli.seed, i, cli.chaos_drop_pct) {
                let owned = spec.kv_fields();
                let mut fields: Vec<(&str, &str)> = vec![("cmd", "submit")];
                fields.extend(owned.iter().map(|(k, v)| (*k, v.as_str())));
                ack_lost = rc.send_and_drop(&fields).is_ok();
            }
            let slot = match rc.submit(&spec) {
                Ok(Admission::Accepted { id, .. }) => {
                    *submitted_at[i].lock().unwrap() = Some(sent);
                    Slot::Accepted(id)
                }
                Ok(Admission::Duplicate { id }) => {
                    // An earlier submit of this key landed without its
                    // ack: either our deliberate chaos drop, or the
                    // RetryingClient re-sending after an injected
                    // socket fault ate the response. Either way this is
                    // the dedupe contract working — and the id-owner
                    // audit below still catches any cross-index
                    // conflation.
                    dedupe_converged.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    *submitted_at[i].lock().unwrap() = Some(sent);
                    Slot::Accepted(id)
                }
                Ok(Admission::Rejected { reason }) => {
                    if ack_lost {
                        // The lost-ack submit may still have been
                        // accepted before the rejection (e.g. the queue
                        // filled in between): ask the daemon once more.
                        match rc.submit(&spec) {
                            Ok(Admission::Accepted { id, .. }) => {
                                *submitted_at[i].lock().unwrap() = Some(sent);
                                Slot::Accepted(id)
                            }
                            Ok(Admission::Duplicate { id }) => {
                                dedupe_converged.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                *submitted_at[i].lock().unwrap() = Some(sent);
                                Slot::Accepted(id)
                            }
                            _ => Slot::Rejected(reason),
                        }
                    } else {
                        Slot::Rejected(reason)
                    }
                }
                Err(e) => Slot::Violation(format!("no answer to submit: {e}")),
            };
            *slots[i].lock().unwrap() = Some(slot);
        }
    });

    // Settle phase: poll every acknowledged job to a terminal state,
    // riding out a daemon kill/restart via reconnection. The elapsed
    // time from the submit instant to the terminal observation is the
    // per-job submit-to-done latency.
    let settled_after: Vec<Mutex<Option<Duration>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    run_claiming_pool(cli.clients, total, |range| {
        let mut rc = retrying(&cli);
        for i in range {
            let id = match slots[i].lock().unwrap().as_ref() {
                Some(Slot::Accepted(id)) => *id,
                _ => continue,
            };
            let deadline = Instant::now() + Duration::from_millis(cli.wait_ms);
            let settled = loop {
                let status = rc.wait(id, Duration::from_millis(2_000));
                match status {
                    Ok(s) if s.state.is_terminal() => {
                        if let Some(sent) = *submitted_at[i].lock().unwrap() {
                            *settled_after[i].lock().unwrap() = Some(sent.elapsed());
                        }
                        break Slot::Settled(id, s.state);
                    }
                    Ok(_) if Instant::now() >= deadline => {
                        break Slot::Violation(format!(
                            "job {id}: acknowledged but unsettled after {} ms",
                            cli.wait_ms
                        ));
                    }
                    Ok(_) => {}
                    Err(e) => break Slot::Violation(format!("job {id}: {e}")),
                }
            };
            *slots[i].lock().unwrap() = Some(settled);
        }
    });

    // Audit.
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut done = 0usize;
    let mut shed = 0usize;
    let mut cancelled = 0usize;
    let mut failed = 0usize;
    let mut verified = 0usize;
    let mut reject_reasons: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    let mut violations: Vec<String> = Vec::new();
    let mut done_latencies_ms: Vec<f64> = Vec::new();
    // Zero-duplication oracle: every acknowledged index must own a
    // distinct job id — two indices sharing one would mean the dedupe
    // map conflated different keys.
    let mut id_owner: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    for (i, slot) in slots.iter().enumerate() {
        if let Some(Slot::Accepted(id) | Slot::Settled(id, _)) = slot.lock().unwrap().as_ref() {
            if let Some(prev) = id_owner.insert(*id, i) {
                violations.push(format!(
                    "job {id}: acknowledged for both index {prev} and index {i} \
                     (duplicated execution)"
                ));
            }
        }
    }
    for (i, slot) in slots.iter().enumerate() {
        match slot.lock().unwrap().take() {
            Some(Slot::Rejected(reason)) => {
                rejected += 1;
                *reject_reasons.entry(reason).or_insert(0) += 1;
            }
            Some(Slot::Settled(id, state)) => {
                accepted += 1;
                match &state {
                    JobState::Done { digest } => {
                        done += 1;
                        if let Some(latency) = *settled_after[i].lock().unwrap() {
                            done_latencies_ms.push(latency.as_secs_f64() * 1_000.0);
                        }
                        if let Some(expect) = references[i % cli.distinct] {
                            if *digest == expect {
                                verified += 1;
                            } else {
                                violations.push(format!(
                                    "job {id}: digest {digest:016x} != jobs=1 reference {expect:016x}"
                                ));
                            }
                        }
                    }
                    JobState::Shed { reason } => {
                        shed += 1;
                        if !cli.mixed_priorities {
                            violations
                                .push(format!("job {id}: shed ({reason}) under uniform priority"));
                        }
                    }
                    JobState::Cancelled { reason } => {
                        cancelled += 1;
                        violations.push(format!("job {id}: cancelled ({reason}) by nobody"));
                    }
                    JobState::Failed { reason } => {
                        failed += 1;
                        violations.push(format!("job {id}: failed ({reason})"));
                    }
                    _ => violations.push(format!("job {id}: non-terminal state recorded")),
                }
            }
            Some(Slot::Accepted(id)) => {
                accepted += 1;
                violations.push(format!("job {id}: acknowledgement never audited"));
            }
            Some(Slot::Violation(v)) => violations.push(format!("index {i}: {v}")),
            None => violations.push(format!("index {i}: never submitted")),
        }
    }

    println!(
        "droidsim-load: accepted={accepted} rejected={rejected} | done={done} shed={shed} \
         cancelled={cancelled} failed={failed}"
    );
    let converged = dedupe_converged.load(std::sync::atomic::Ordering::Relaxed);
    if cli.chaos_drop_pct > 0 || converged > 0 {
        println!(
            "droidsim-load: chaos: {converged} lost ack(s) converged via dedupe \
             (drop-pct={})",
            cli.chaos_drop_pct
        );
    }
    if !done_latencies_ms.is_empty() {
        let p = |q: f64| droidsim_metrics::stats::percentile(&done_latencies_ms, q);
        println!(
            "droidsim-load: submit-to-done latency p50={:.1}ms p95={:.1}ms p99={:.1}ms \
             ({} sample(s))",
            p(0.50),
            p(0.95),
            p(0.99),
            done_latencies_ms.len()
        );
    }
    if !reject_reasons.is_empty() {
        let reasons: Vec<String> = reject_reasons
            .iter()
            .map(|(r, n)| format!("{r}={n}"))
            .collect();
        println!("droidsim-load: rejection reasons: {}", reasons.join(" "));
    }
    if cli.verify {
        println!("droidsim-load: {verified}/{done} digest(s) match the jobs=1 reference");
    }
    if accepted + rejected + violations.len() < total {
        violations.push(format!(
            "{} submission(s) unaccounted for",
            total - accepted - rejected
        ));
    }
    // The daemon's own view on the way out: which state the burst (and
    // any chaos) left it in.
    match retrying(&cli).health() {
        Ok(h) => {
            let line: Vec<String> = h.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!("droidsim-load: daemon health: {}", line.join(" "));
        }
        Err(e) => println!("droidsim-load: daemon health unavailable: {e}"),
    }
    if let Some(mode) = cli.shutdown {
        match retrying(&cli).shutdown(mode) {
            Ok(()) => println!("droidsim-load: daemon shut down ({})", mode.name()),
            Err(e) => violations.push(format!("shutdown: {e}")),
        }
    }
    if violations.is_empty() {
        println!("droidsim-load OK: zero silent drops, zero lost acknowledgements");
    } else {
        for v in &violations {
            eprintln!("droidsim-load VIOLATION: {v}");
        }
        eprintln!("droidsim-load FAILED: {} violation(s)", violations.len());
        std::process::exit(1);
    }
}

/// Looks up a numeric field in decoded response pairs.
fn num_field(fields: &[(String, String)], key: &str) -> Option<usize> {
    droidsim_kernel::journal::field(fields, key).and_then(|v| v.parse().ok())
}
