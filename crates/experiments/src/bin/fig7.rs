//! Regenerates the paper's fig7 result; see `rch_experiments::fig7`.
fn main() {
    print!("{}", rch_experiments::fig7::run().render());
}
