//! Regenerates the paper's fig7 result; see `rch_experiments::fig7`.
fn main() {
    rch_experiments::version_flag();
    print!("{}", rch_experiments::fig7::run().render());
}
