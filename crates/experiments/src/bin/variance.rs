//! Checks the paper's §5.1 measurement protocol under injected jitter.
fn main() {
    print!("{}", rch_experiments::variance::run().render());
}
