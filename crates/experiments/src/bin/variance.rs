//! Checks the paper's §5.1 measurement protocol under injected jitter.
fn main() {
    rch_experiments::version_flag();
    print!("{}", rch_experiments::variance::run().render());
}
