//! Regenerates every table and figure of the paper in one run.
//!
//! The fleet-ported harnesses (Fig. 10, Table 5, the ablation) honour
//! `--jobs N` / `DROIDSIM_JOBS=N`; every result is identical for any
//! worker count.
fn main() {
    let cfg = rch_experiments::fleet_config_from_args();
    println!("==== Table 3 ====");
    print!("{}", rch_experiments::table3::run().render());
    println!("\n==== Fig. 7 ====");
    print!("{}", rch_experiments::fig7::run().render());
    println!("\n==== Fig. 8 ====");
    print!("{}", rch_experiments::fig8::run().render());
    println!("\n==== Fig. 9 ====");
    print!("{}", rch_experiments::fig9::run().render());
    println!("\n==== Fig. 10 ====");
    print!("{}", rch_experiments::fig10::run_with_config(&cfg).render());
    println!("\n==== Fig. 11 ====");
    print!("{}", rch_experiments::fig11::run().render());
    println!("\n==== Fig. 12 / Table 4 ====");
    print!("{}", rch_experiments::fig12::run().render());
    println!("\n==== Fig. 13 ====");
    print!("{}", rch_experiments::fig13::run().render());
    println!("\n==== Table 5 / Fig. 14 ====");
    print!(
        "{}",
        rch_experiments::table5::run_with_config(&cfg).render()
    );
    println!("\n==== §5.6 Energy ====");
    print!("{}", rch_experiments::energy::run().render());
    println!("\n==== Ablation (beyond the paper) ====");
    print!(
        "{}",
        rch_experiments::ablation::run_with_config(&cfg).render()
    );
}
