//! Regenerates the paper's fig10 result; see `rch_experiments::fig10`.
//!
//! `--jobs N` (or `DROIDSIM_JOBS=N`) partitions the sweep points across
//! N workers; the rows are identical for any worker count.
//!
//! Crash safety: `--keep-going` / `--max-retries N` /
//! `--task-budget-ms N` / `--journal PATH` / `--resume PATH` select the
//! supervised fleet (see the `table5` binary for the flag contract).
//! Exits nonzero if any sweep point stays quarantined after retries.
fn main() {
    let cli = rch_experiments::FleetCli::from_args();
    let cfg = cli.config(0);
    if cli.supervised {
        let run = rch_experiments::fig10::run_supervised(&cfg, &cli.options).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        print!("{}", run.render());
        match run.digest() {
            Some(d) => println!("=> fleet: jobs={} sweep digest {:016x}", cfg.jobs, d),
            None => {
                println!(
                    "=> fleet: jobs={} sweep digest PARTIAL ({} point(s) quarantined)",
                    cfg.jobs,
                    run.fleet.report.quarantined.len()
                );
                std::process::exit(1);
            }
        }
    } else {
        print!("{}", rch_experiments::fig10::run_with_config(&cfg).render());
    }
}
