//! Regenerates the paper's fig10 result; see `rch_experiments::fig10`.
fn main() {
    print!("{}", rch_experiments::fig10::run().render());
}
