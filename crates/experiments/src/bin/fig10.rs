//! Regenerates the paper's fig10 result; see `rch_experiments::fig10`.
//!
//! `--jobs N` (or `DROIDSIM_JOBS=N`) partitions the sweep points across
//! N workers; the rows are identical for any worker count.
fn main() {
    let cfg = rch_experiments::fleet_config_from_args();
    print!("{}", rch_experiments::fig10::run_with_config(&cfg).render());
}
