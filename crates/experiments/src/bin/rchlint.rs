//! `rchlint` — the static migration-safety analyzer.
//!
//! ```text
//! rchlint [--corpus tp27|top100|dataloss|all] [--format human|json|sarif]
//!         [--output PATH] [--allow [APP:]CODE]... [--only APP]
//!         [--clean-only] [--deny-warnings] [--differential]
//!         [--table PATH] [--jobs N]
//! ```
//!
//! Default mode lints every corpus app with the `RCH0xx` passes
//! (structural `RCH001`–`RCH006` plus the data-loss dataflow family
//! `RCH007`–`RCH012`) and prints diagnostics plus the run ledger.
//! `--differential` instead replays each app through the dynamic §6
//! oracle — under stock, RCHDroid and RuntimeDroid — and fails on any
//! field-level disagreement with the static verdict, printing a
//! one-line repro recipe per disagreement; when the run covers the
//! `dataloss` corpus, `--table PATH` additionally writes the per-class
//! loss-rate CSV (`results/table_dataloss.csv`).
//!
//! Determinism contract: the report digest — and, in `--format json`,
//! every byte on stdout / in `--output` — is identical for any
//! `--jobs` value. Jobs-dependent status lines therefore go to stderr
//! in JSON mode.
//!
//! Exit codes: 0 clean; 1 findings of error severity (or warnings
//! under `--deny-warnings`) or a differential disagreement; 2 usage
//! error.

use droidsim_analysis::{analyze_specs, Suppressions};
use droidsim_fleet::combine_ordered;
use rch_experiments::differential;
use rch_workloads::{dataloss_specs, top100_specs, tp27_specs, GenericAppSpec};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

#[derive(Debug)]
struct LintCli {
    corpus: String,
    format: Format,
    output: Option<String>,
    allow: Suppressions,
    only: Option<String>,
    clean_only: bool,
    deny_warnings: bool,
    differential: bool,
    table: Option<String>,
}

/// Parses the tokens [`rch_experiments::FleetCli`] did not consume
/// (its passthrough remainder) — so this parser never sees a fleet
/// flag and owns the unknown-flag rejection for everything else.
fn parse_cli(args: impl IntoIterator<Item = String>) -> Result<LintCli, String> {
    let mut cli = LintCli {
        corpus: "all".to_owned(),
        format: Format::Human,
        output: None,
        allow: Suppressions::none(),
        only: None,
        clean_only: false,
        deny_warnings: false,
        differential: false,
        table: None,
    };
    let mut args = args.into_iter();
    let value = |flag: &str, inline: Option<String>, args: &mut dyn Iterator<Item = String>| {
        inline
            .or_else(|| args.next())
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        let (flag, inline) = match a.split_once('=') {
            Some((f, v)) => (f.to_owned(), Some(v.to_owned())),
            None => (a, None),
        };
        match flag.as_str() {
            "--corpus" => {
                let v = value("--corpus", inline, &mut args)?;
                if !["tp27", "top100", "dataloss", "all"].contains(&v.as_str()) {
                    return Err(format!(
                        "--corpus: unknown corpus {v:?} (tp27|top100|dataloss|all)"
                    ));
                }
                cli.corpus = v;
            }
            "--format" => {
                cli.format = match value("--format", inline, &mut args)?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    v => return Err(format!("--format: unknown format {v:?} (human|json|sarif)")),
                };
            }
            "--output" => cli.output = Some(value("--output", inline, &mut args)?),
            "--allow" => cli.allow.add_rule(&value("--allow", inline, &mut args)?)?,
            "--only" => cli.only = Some(value("--only", inline, &mut args)?),
            "--clean-only" => cli.clean_only = true,
            "--deny-warnings" => cli.deny_warnings = true,
            "--differential" => cli.differential = true,
            "--table" => cli.table = Some(value("--table", inline, &mut args)?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(cli)
}

fn corpora(corpus: &str) -> Vec<&'static str> {
    match corpus {
        "all" => vec!["tp27", "top100", "dataloss"],
        "tp27" => vec!["tp27"],
        "top100" => vec!["top100"],
        "dataloss" => vec!["dataloss"],
        _ => unreachable!("validated at parse time"),
    }
}

fn lint_specs(cli: &LintCli) -> Result<Vec<GenericAppSpec>, String> {
    let mut specs = Vec::new();
    for c in corpora(&cli.corpus) {
        specs.extend(match c {
            "tp27" => tp27_specs(),
            "top100" => top100_specs(),
            _ => dataloss_specs(),
        });
    }
    if let Some(name) = &cli.only {
        specs.retain(|s| &s.name == name);
        if specs.is_empty() {
            return Err(format!(
                "--only: no app named {name:?} in corpus {}",
                cli.corpus
            ));
        }
    }
    if cli.clean_only {
        specs.retain(|s| !s.has_issue());
    }
    Ok(specs)
}

fn emit(cli: &LintCli, rendered: &str) -> Result<(), String> {
    match &cli.output {
        Some(path) => std::fs::write(path, rendered).map_err(|e| format!("--output {path}: {e}")),
        None => {
            print!("{rendered}");
            Ok(())
        }
    }
}

fn main() {
    let fleet = rch_experiments::FleetCli::from_args_passthrough();
    let cfg = fleet.config(0);
    let cli = parse_cli(fleet.extra.clone()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    let mut failed = false;
    if cli.differential {
        let mut digests = Vec::new();
        for corpus in corpora(&cli.corpus) {
            let report = differential::run_corpus(corpus, cli.only.as_deref(), &cfg)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                });
            print!("{}", report.render());
            failed |= !report.disagreements().is_empty();
            digests.push(report.digest());
        }
        println!(
            "=> fleet: jobs={} differential digest {:016x}",
            cfg.jobs,
            combine_ordered(digests),
        );
        if let Some(path) = &cli.table {
            let csv = differential::dataloss_table_csv(&differential::dataloss_table());
            if let Err(e) = std::fs::write(path, csv) {
                eprintln!("error: --table {path}: {e}");
                std::process::exit(2);
            }
            println!("=> table: wrote per-class loss rates to {path}");
        }
    } else {
        let specs = lint_specs(&cli).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        let report = analyze_specs(&specs, &cfg, &cli.allow);
        let rendered = match cli.format {
            Format::Human => report.render_human(),
            Format::Json => report.render_json(),
            Format::Sarif => report.render_sarif(),
        };
        if let Err(e) = emit(&cli, &rendered) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        let digest_line = format!(
            "=> fleet: jobs={} analysis digest {:016x}",
            cfg.jobs,
            report.digest()
        );
        // Jobs-dependent: must not contaminate the byte-stable JSON
        // stream CI diffs across worker counts.
        if cli.format != Format::Human || cli.output.is_some() {
            eprintln!("{digest_line}");
        } else {
            println!("{digest_line}");
        }
        failed = report.errors() > 0 || (cli.deny_warnings && report.warnings() > 0);
    }
    if failed {
        std::process::exit(1);
    }
}
