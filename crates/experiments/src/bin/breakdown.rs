//! Prints the per-step cost decomposition of every handling path.
fn main() {
    print!("{}", rch_experiments::breakdown::run().render());
}
