//! Prints the per-step cost decomposition of every handling path.
fn main() {
    rch_experiments::version_flag();
    print!("{}", rch_experiments::breakdown::run().render());
}
