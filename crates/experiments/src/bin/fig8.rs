//! Regenerates the paper's fig8 result; see `rch_experiments::fig8`.
fn main() {
    print!("{}", rch_experiments::fig8::run().render());
}
