//! Regenerates the paper's fig8 result; see `rch_experiments::fig8`.
fn main() {
    rch_experiments::version_flag();
    print!("{}", rch_experiments::fig8::run().render());
}
