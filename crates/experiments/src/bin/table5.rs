//! Regenerates the paper's table5 result; see `rch_experiments::table5`.
fn main() {
    print!("{}", rch_experiments::table5::run().render());
}
