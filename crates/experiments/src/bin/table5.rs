//! Regenerates the paper's table5 result; see `rch_experiments::table5`.
//!
//! `--jobs N` (or `DROIDSIM_JOBS=N`) partitions the 100 apps across N
//! workers; the rows and digest are identical for any worker count.
//!
//! Crash safety (any of these flags selects the supervised fleet):
//! `--keep-going` isolates per-app panics instead of aborting,
//! `--max-retries N` / `--task-budget-ms N` tune retries and the stall
//! watchdog, `--journal PATH` checkpoints completed apps, and
//! `--resume PATH` continues an interrupted study from its journal —
//! the resumed digest equals an uninterrupted run's. Exits nonzero if
//! any app stays quarantined after retries.
fn main() {
    let cli = rch_experiments::FleetCli::from_args();
    let cfg = cli.config(0);
    if cli.supervised {
        let run = rch_experiments::table5::run_supervised(&cfg, &cli.options).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        print!("{}", run.render());
        match run.digest() {
            Some(d) => println!("=> fleet: jobs={} study digest {:016x}", cfg.jobs, d),
            None => {
                println!(
                    "=> fleet: jobs={} study digest PARTIAL ({} app(s) quarantined)",
                    cfg.jobs,
                    run.fleet.report.quarantined.len()
                );
                std::process::exit(1);
            }
        }
    } else {
        let study = rch_experiments::table5::run_with_config(&cfg);
        print!("{}", study.render());
        println!(
            "=> fleet: jobs={} study digest {:016x}",
            cfg.jobs,
            study.digest()
        );
    }
}
