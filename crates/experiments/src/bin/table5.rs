//! Regenerates the paper's table5 result; see `rch_experiments::table5`.
//!
//! `--jobs N` (or `DROIDSIM_JOBS=N`) partitions the 100 apps across N
//! workers; the rows and digest are identical for any worker count.
fn main() {
    let cfg = rch_experiments::fleet_config_from_args();
    let study = rch_experiments::table5::run_with_config(&cfg);
    print!("{}", study.render());
    println!(
        "=> fleet: jobs={} study digest {:016x}",
        cfg.jobs,
        study.digest()
    );
}
