//! `droidsimd` — the resident fleet daemon.
//!
//! ```text
//! droidsimd [--socket PATH] [--capacity N] [--workers N]
//!           [--journal-dir DIR] [--headroom-floor-kib N]
//!           [--admission-fault-pct N] [--io-fault-pct N]
//!           [--enospc-window N] [--seed N] [--tick-ms N]
//!           [--max-conns N] [--read-timeout-ms N]
//!           [--max-line-bytes N] [--max-wait-ms N]
//!           [--no-memo] [--version]
//! ```
//!
//! Serves simulation jobs (`table5`, `fig10`, `ablation`,
//! `fault-matrix`) over a local Unix socket: one `key=value` request
//! line in, one response line out — `nc -U` is a complete client, and
//! `droidsim-load` is the load-generating one. Admission is explicit
//! (`accepted` is journaled-then-acked; refusals carry a reason),
//! the queue is bounded and priority-aware, and with `--journal-dir`
//! a killed daemon restarted on the same directory resumes every
//! acknowledged incomplete job to the digest an uninterrupted run
//! produces.
//!
//! `--headroom-floor-kib N` arms the `/proc/meminfo` pressure probe:
//! below N KiB of `MemAvailable` the watchdog sheds the lowest-priority
//! queued class and the door rejects non-high submissions.
//! `--admission-fault-pct N` injects that rate of artificial admission
//! rejections (deterministic under `--seed`) — a testing aid proving
//! clients see explicit `rejected` responses, never silence.
//!
//! `--io-fault-pct N` arms the I/O fault shim at that rate across the
//! journal write/sync and socket read/write sites (deterministic under
//! `--seed`): the chaos configuration. `--enospc-window N` forces the
//! first N journal writes to fail with ENOSPC, driving the daemon
//! through a full degraded → recovered round trip once the watchdog's
//! probes consume the window. `--max-conns`, `--read-timeout-ms`,
//! `--max-line-bytes` and `--max-wait-ms` tune the connection
//! governor; see `cmd=health` for the resulting daemon state.
//!
//! `--no-memo` disables the warm-path memo caches (resolution,
//! inflation, mapping plans) for the whole process — every job takes
//! the cold path. The `stats` endpoint's `memo_*` fields then stay at
//! zero; digests are identical either way (the memo ≡ cold contract).
//!
//! Exit codes: 0 after a clean `cmd=shutdown`; 2 on a usage error.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use droidsim_daemon::{server, Daemon, DaemonConfig, HeadroomProbe, IoFaults};
use droidsim_faults::{FaultPlan, FaultSite};
use rch_experiments::StudyExecutor;

struct DaemonCli {
    socket: PathBuf,
    config: DaemonConfig,
    server: server::ServerConfig,
    no_memo: bool,
}

fn parse_cli(args: impl IntoIterator<Item = String>) -> Result<DaemonCli, String> {
    let mut socket = PathBuf::from("droidsimd.sock");
    let mut config = DaemonConfig::new();
    let mut server_cfg = server::ServerConfig::new();
    let mut fault_pct: u8 = 0;
    let mut io_fault_pct: u8 = 0;
    let mut enospc_window: u64 = 0;
    let mut seed: u64 = 0x5EED;
    let mut no_memo = false;
    let mut args = args.into_iter();
    let value = |flag: &str, inline: Option<String>, args: &mut dyn Iterator<Item = String>| {
        inline
            .or_else(|| args.next())
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let number = |flag: &str, v: &str| -> Result<u64, String> {
        v.parse()
            .map_err(|_| format!("{flag}: not a number: {v:?}"))
    };
    while let Some(a) = args.next() {
        let (flag, inline) = match a.split_once('=') {
            Some((f, v)) => (f.to_owned(), Some(v.to_owned())),
            None => (a, None),
        };
        match flag.as_str() {
            "--socket" => socket = PathBuf::from(value("--socket", inline, &mut args)?),
            "--capacity" => {
                let v = value("--capacity", inline, &mut args)?;
                let n = number("--capacity", &v)? as usize;
                if n == 0 {
                    return Err("--capacity: must be at least 1".to_owned());
                }
                config = config.with_capacity(n);
            }
            "--workers" => {
                let v = value("--workers", inline, &mut args)?;
                let n = number("--workers", &v)? as usize;
                if n == 0 {
                    return Err("--workers: must be at least 1".to_owned());
                }
                config = config.with_workers(n);
            }
            "--journal-dir" => {
                config = config.with_journal_dir(value("--journal-dir", inline, &mut args)?);
            }
            "--headroom-floor-kib" => {
                let v = value("--headroom-floor-kib", inline, &mut args)?;
                config = config.with_headroom(HeadroomProbe::proc_meminfo(number(&flag, &v)?));
            }
            "--admission-fault-pct" => {
                let v = value("--admission-fault-pct", inline, &mut args)?;
                let pct = number(&flag, &v)?;
                if pct > 100 {
                    return Err(format!("{flag}: {pct} is not a percentage"));
                }
                fault_pct = pct as u8;
            }
            "--io-fault-pct" => {
                let v = value(&flag, inline, &mut args)?;
                let pct = number(&flag, &v)?;
                if pct > 100 {
                    return Err(format!("{flag}: {pct} is not a percentage"));
                }
                io_fault_pct = pct as u8;
            }
            "--enospc-window" => {
                let v = value(&flag, inline, &mut args)?;
                enospc_window = number(&flag, &v)?;
            }
            "--max-conns" => {
                let v = value(&flag, inline, &mut args)?;
                let n = number(&flag, &v)? as usize;
                if n == 0 {
                    return Err(format!("{flag}: must be at least 1"));
                }
                server_cfg = server_cfg.with_max_conns(n);
            }
            "--read-timeout-ms" => {
                let v = value(&flag, inline, &mut args)?;
                server_cfg =
                    server_cfg.with_read_timeout(Duration::from_millis(number(&flag, &v)?));
            }
            "--max-line-bytes" => {
                let v = value(&flag, inline, &mut args)?;
                let n = number(&flag, &v)? as usize;
                if n == 0 {
                    return Err(format!("{flag}: must be at least 1"));
                }
                server_cfg = server_cfg.with_max_line_bytes(n);
            }
            "--max-wait-ms" => {
                let v = value(&flag, inline, &mut args)?;
                server_cfg = server_cfg.with_max_wait_ms(number(&flag, &v)?);
            }
            "--seed" => {
                let v = value("--seed", inline, &mut args)?;
                seed = number("--seed", &v)?;
            }
            "--tick-ms" => {
                let v = value("--tick-ms", inline, &mut args)?;
                config = config.with_tick(Duration::from_millis(number("--tick-ms", &v)?));
            }
            "--no-memo" => no_memo = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if fault_pct > 0 {
        config = config.with_admission_faults(
            FaultPlan::seeded(seed).with_rate(FaultSite::Admission, f64::from(fault_pct) / 100.0),
        );
    }
    if io_fault_pct > 0 || enospc_window > 0 {
        let rate = f64::from(io_fault_pct) / 100.0;
        let mut plan = FaultPlan::seeded(seed)
            .with_rate(FaultSite::JournalWrite, rate)
            .with_rate(FaultSite::JournalSync, rate)
            .with_rate(FaultSite::SocketRead, rate)
            .with_rate(FaultSite::SocketWrite, rate);
        for nth in 1..=enospc_window {
            plan = plan.on_nth_probe(FaultSite::JournalWrite, nth);
        }
        // One shared shim: journal and socket faults draw from the same
        // seeded schedule, so a run is reproducible end to end.
        let io = IoFaults::new(plan);
        config = config.with_io_faults(io.clone());
        server_cfg = server_cfg.with_io_faults(io);
    }
    Ok(DaemonCli {
        socket,
        config,
        server: server_cfg,
        no_memo,
    })
}

fn main() {
    rch_experiments::version_flag();
    let cli = parse_cli(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if cli.no_memo {
        droidsim_kernel::memo::set_enabled(false);
    }
    if let Some(dir) = &cli.config.journal_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: --journal-dir {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    let journal = cli
        .config
        .journal_dir
        .as_ref()
        .map_or_else(|| "disabled".to_owned(), |d| d.display().to_string());
    let daemon = Arc::new(
        Daemon::start(cli.config.clone(), StudyExecutor).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
    );
    let resumed = daemon.stats().ledger.resumed;
    if resumed > 0 {
        println!("droidsimd: resumed {resumed} acknowledged incomplete job(s) from the journal");
    }
    println!(
        "droidsimd: listening on {} (workers {}, capacity {}, journal {journal})",
        cli.socket.display(),
        cli.config.workers,
        cli.config.queue_capacity,
    );
    if let Err(e) = server::serve_with(&daemon, &cli.socket, cli.server) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    // Give in-flight connection handlers a beat to flush their final
    // response (the `shutdown` ack races process exit otherwise).
    std::thread::sleep(Duration::from_millis(200));
    println!("droidsimd: stopped");
}
