//! Exports every figure's data as CSV: `export [dir]` (default ./results).
fn main() {
    rch_experiments::version_flag();
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".to_owned());
    let written =
        rch_experiments::report::export_all(std::path::Path::new(&dir)).expect("export succeeds");
    for path in written {
        println!("wrote {}", path.display());
    }
}
