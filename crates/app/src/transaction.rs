//! `ClientTransaction`: the lifecycle-IPC protocol between the system
//! server and the activity thread.
//!
//! Since Android P, the ATMS drives app-side lifecycle changes by sending
//! a `ClientTransaction` — a token plus an ordered list of lifecycle
//! items — which `ActivityThread` executes. This module models that
//! protocol: the stock relaunch, the RCHDroid shadow/sunny sequences and
//! plain lifecycle moves are all expressible as transactions, and
//! [`ActivityThread::execute_transaction`] runs them atomically against
//! the instance bound to the token.
//!
//! Modelling the wire protocol (rather than only method calls) keeps the
//! simulator's control flow shaped like the real system's: every
//! lifecycle change crosses the process boundary as explicit data, and
//! the transaction's parcel size is available to latency models.

use crate::activity::{Activity, ActivityInstanceId};
use crate::model::AppModel;
use crate::thread::{ActivityThread, ThreadError};
use droidsim_atms::ActivityRecordId;
use droidsim_bundle::{Bundle, Parcel};
use droidsim_config::Configuration;

/// One item of a client transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleItem {
    /// Create a fresh instance for the token (`LaunchActivityItem`),
    /// optionally with a saved-state bundle.
    Launch {
        /// Configuration the instance is created for.
        config: Configuration,
        /// Saved state to restore.
        saved_state: Option<Bundle>,
    },
    /// Destroy the current instance then launch a new one with the given
    /// saved state (`ActivityRelaunchItem`).
    Relaunch {
        /// Configuration for the new instance.
        config: Configuration,
    },
    /// Move to the foreground (`ResumeActivityItem`); `sunny` is
    /// RCHDroid's flag.
    Resume {
        /// Resume into the Sunny state.
        sunny: bool,
    },
    /// Move out of the foreground (`PauseActivityItem` +
    /// `StopActivityItem`).
    Stop,
    /// Enter the Shadow state (RCHDroid's stop-with-shadow-flag).
    EnterShadow,
    /// Destroy the instance (`DestroyActivityItem`).
    Destroy,
    /// Deliver `onConfigurationChanged` (`ActivityConfigurationChangeItem`)
    /// for self-handling apps.
    ConfigurationChanged,
}

/// A token-addressed batch of lifecycle items.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientTransaction {
    /// The activity record the transaction addresses.
    pub token: ActivityRecordId,
    /// Items, executed in order.
    pub items: Vec<LifecycleItem>,
}

impl ClientTransaction {
    /// Creates an empty transaction for a token.
    pub fn new(token: ActivityRecordId) -> Self {
        ClientTransaction {
            token,
            items: Vec::new(),
        }
    }

    /// Appends an item.
    pub fn with(mut self, item: LifecycleItem) -> Self {
        self.items.push(item);
        self
    }

    /// The stock relaunch sequence (destroy + recreate with saved state).
    pub fn relaunch(token: ActivityRecordId, config: Configuration) -> Self {
        ClientTransaction::new(token)
            .with(LifecycleItem::Relaunch { config })
            .with(LifecycleItem::Resume { sunny: false })
    }

    /// The size in bytes of the transaction flattened for the binder —
    /// available to size-dependent latency models.
    pub fn parcel_size(&self) -> usize {
        let mut parcel = Parcel::new();
        parcel.write_str(&format!("token:{}", self.token));
        for item in &self.items {
            match item {
                LifecycleItem::Launch {
                    config,
                    saved_state,
                } => {
                    parcel.write_str(&format!("launch:{config}"));
                    if let Some(saved) = saved_state {
                        parcel.write_bundle(saved);
                    }
                }
                LifecycleItem::Relaunch { config } => {
                    parcel.write_str(&format!("relaunch:{config}"));
                }
                LifecycleItem::Resume { sunny } => parcel.write_str(&format!("resume:{sunny}")),
                LifecycleItem::Stop => parcel.write_str("stop"),
                LifecycleItem::EnterShadow => parcel.write_str("shadow"),
                LifecycleItem::Destroy => parcel.write_str("destroy"),
                LifecycleItem::ConfigurationChanged => parcel.write_str("config-changed"),
            }
        }
        parcel.len()
    }
}

impl ActivityThread {
    /// Executes a transaction against the instance bound to its token.
    /// Returns the instance the transaction ended up addressing (a
    /// `Launch`/`Relaunch` rebinds the token to the new instance).
    ///
    /// # Errors
    ///
    /// [`ThreadError`] on the first failing item; earlier items' effects
    /// stand (matching Android, where a failing transaction leaves the
    /// app in whatever state it reached).
    pub fn execute_transaction(
        &mut self,
        model: &dyn AppModel,
        transaction: &ClientTransaction,
    ) -> Result<ActivityInstanceId, ThreadError> {
        let mut instance = self.instance_for_token(transaction.token);
        for item in &transaction.items {
            match item {
                LifecycleItem::Launch {
                    config,
                    saved_state,
                } => {
                    let id = self.perform_launch_activity(
                        model,
                        transaction.token,
                        config.clone(),
                        saved_state.as_ref(),
                    );
                    instance = Some(id);
                }
                LifecycleItem::Relaunch { config } => {
                    let current = instance.ok_or(ThreadError::UnknownInstance(
                        ActivityInstanceId::new(u64::MAX),
                    ))?;
                    // Android saves the instance state before destroying.
                    let saved = self.instance(current)?.save_instance_state(model);
                    self.destroy_activity(current)?;
                    let id = self.perform_launch_activity(
                        model,
                        transaction.token,
                        config.clone(),
                        Some(&saved),
                    );
                    instance = Some(id);
                }
                LifecycleItem::Resume { sunny } => {
                    let current = instance.ok_or(ThreadError::UnknownInstance(
                        ActivityInstanceId::new(u64::MAX),
                    ))?;
                    self.resume_sequence(current, *sunny)?;
                }
                LifecycleItem::Stop => {
                    let current = instance.ok_or(ThreadError::UnknownInstance(
                        ActivityInstanceId::new(u64::MAX),
                    ))?;
                    self.pause_stop_sequence(current)?;
                }
                LifecycleItem::EnterShadow => {
                    let current = instance.ok_or(ThreadError::UnknownInstance(
                        ActivityInstanceId::new(u64::MAX),
                    ))?;
                    self.enter_shadow(current, model)?;
                }
                LifecycleItem::Destroy => {
                    let current = instance.ok_or(ThreadError::UnknownInstance(
                        ActivityInstanceId::new(u64::MAX),
                    ))?;
                    self.destroy_activity(current)?;
                }
                LifecycleItem::ConfigurationChanged => {
                    let current = instance.ok_or(ThreadError::UnknownInstance(
                        ActivityInstanceId::new(u64::MAX),
                    ))?;
                    let activity: &mut Activity = self.instance_mut(current)?;
                    model.on_configuration_changed(activity);
                }
            }
        }
        instance.ok_or(ThreadError::UnknownInstance(ActivityInstanceId::new(
            u64::MAX,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimpleApp;
    use crate::state::ActivityState;
    use droidsim_view::ViewOp;

    fn setup() -> (ActivityThread, SimpleApp, ActivityRecordId) {
        (
            ActivityThread::new(),
            SimpleApp::with_views(2),
            ActivityRecordId::new(7),
        )
    }

    #[test]
    fn launch_resume_transaction() {
        let (mut thread, model, token) = setup();
        let txn = ClientTransaction::new(token)
            .with(LifecycleItem::Launch {
                config: Configuration::phone_portrait(),
                saved_state: None,
            })
            .with(LifecycleItem::Resume { sunny: false });
        let instance = thread.execute_transaction(&model, &txn).unwrap();
        assert_eq!(
            thread.instance(instance).unwrap().state(),
            ActivityState::Resumed
        );
        assert_eq!(thread.instance_for_token(token), Some(instance));
    }

    #[test]
    fn relaunch_transaction_preserves_saved_state() {
        let (mut thread, model, token) = setup();
        let launch = ClientTransaction::new(token)
            .with(LifecycleItem::Launch {
                config: Configuration::phone_portrait(),
                saved_state: None,
            })
            .with(LifecycleItem::Resume { sunny: false });
        let first = thread.execute_transaction(&model, &launch).unwrap();
        {
            let a = thread.instance_mut(first).unwrap();
            let root = a.tree.find_by_id_name("root").unwrap();
            a.tree.apply(root, ViewOp::ScrollTo(640)).unwrap();
        }

        let relaunch = ClientTransaction::relaunch(token, Configuration::phone_landscape());
        let second = thread.execute_transaction(&model, &relaunch).unwrap();
        assert_ne!(second, first);
        assert!(!thread.instance(first).unwrap().state().is_alive());
        let a = thread.instance(second).unwrap();
        let root = a.tree.find_by_id_name("root").unwrap();
        assert_eq!(a.tree.view(root).unwrap().attrs.scroll_y, 640);
        assert_eq!(a.state(), ActivityState::Resumed);
    }

    #[test]
    fn shadow_sunny_sequence_as_transactions() {
        let (mut thread, model, token) = setup();
        let launch = ClientTransaction::new(token)
            .with(LifecycleItem::Launch {
                config: Configuration::phone_portrait(),
                saved_state: None,
            })
            .with(LifecycleItem::Resume { sunny: false });
        let old = thread.execute_transaction(&model, &launch).unwrap();

        // RCHDroid step ①: shadow the old instance.
        let shadow_txn = ClientTransaction::new(token).with(LifecycleItem::EnterShadow);
        thread.execute_transaction(&model, &shadow_txn).unwrap();
        assert_eq!(thread.instance(old).unwrap().state(), ActivityState::Shadow);

        // Step ②/③: a new token's sunny launch from the shadow bundle.
        let sunny_token = ActivityRecordId::new(8);
        let bundle = thread.instance(old).unwrap().shadow_bundle.clone();
        let sunny_txn = ClientTransaction::new(sunny_token)
            .with(LifecycleItem::Launch {
                config: Configuration::phone_landscape(),
                saved_state: bundle,
            })
            .with(LifecycleItem::Resume { sunny: true });
        let sunny = thread.execute_transaction(&model, &sunny_txn).unwrap();
        assert_eq!(
            thread.instance(sunny).unwrap().state(),
            ActivityState::Sunny
        );
        assert_eq!(thread.alive_instances().len(), 2);
    }

    #[test]
    fn items_without_a_bound_instance_error() {
        let (mut thread, model, token) = setup();
        let txn = ClientTransaction::new(token).with(LifecycleItem::Resume { sunny: false });
        assert!(thread.execute_transaction(&model, &txn).is_err());
    }

    #[test]
    fn parcel_size_grows_with_saved_state() {
        let token = ActivityRecordId::new(1);
        let slim = ClientTransaction::relaunch(token, Configuration::phone_portrait());
        let mut bundle = Bundle::new();
        bundle.put_string("blob", &"x".repeat(4096));
        let fat = ClientTransaction::new(token).with(LifecycleItem::Launch {
            config: Configuration::phone_portrait(),
            saved_state: Some(bundle),
        });
        assert!(fat.parcel_size() > slim.parcel_size() + 4000);
    }

    #[test]
    fn configuration_changed_item_reaches_the_model() {
        let (mut thread, model, token) = setup();
        let launch = ClientTransaction::new(token)
            .with(LifecycleItem::Launch {
                config: Configuration::phone_portrait(),
                saved_state: None,
            })
            .with(LifecycleItem::Resume { sunny: false })
            .with(LifecycleItem::ConfigurationChanged);
        // SimpleApp's on_configuration_changed is a no-op; the point is
        // the item dispatches without an error.
        thread.execute_transaction(&model, &launch).unwrap();
    }
}
