//! One activity instance: state + view tree + member ("Java field") state.

use crate::model::AppModel;
use crate::state::{ActivityState, StateError};
use droidsim_atms::ActivityRecordId;
use droidsim_bundle::Bundle;
use droidsim_config::Configuration;
use droidsim_view::{inflate, InflateStats, ViewTree};

droidsim_kernel::define_id! {
    /// Identifies one activity *instance* inside an app process (distinct
    /// from the server-side record token it is bound to).
    pub struct ActivityInstanceId
}

/// Bundle key for the view hierarchy state.
pub const KEY_HIERARCHY: &str = "android:viewHierarchyState";
/// Bundle key for the app's own saved state.
pub const KEY_APP: &str = "app:savedState";

/// An activity instance living on the activity thread.
///
/// `member_state` models the instance's Java fields: state the app keeps
/// *outside* any view. On a restart a fresh instance starts with empty
/// fields; whatever was not written to the saved-state bundle is simply
/// gone — the paper's "state loss" failure class.
#[derive(Debug)]
pub struct Activity {
    id: ActivityInstanceId,
    token: ActivityRecordId,
    component: String,
    state: ActivityState,
    config: Configuration,
    /// The instance's view hierarchy.
    pub tree: ViewTree,
    /// The instance's fields (user state held in memory).
    pub member_state: Bundle,
    /// Snapshot taken when entering the shadow state (§3.2: "the activity
    /// thread will snapshot its states and store the state into a data
    /// bundle").
    pub shadow_bundle: Option<Bundle>,
    /// Fragments currently attached (see [`crate::fragment`]).
    pub(crate) fragments: Vec<crate::fragment::AttachedFragment>,
    inflate_stats: InflateStats,
}

impl Activity {
    /// Creates an instance bound to a server-side record token. The
    /// instance is inert until [`Activity::perform_create`] runs.
    pub fn new(
        id: ActivityInstanceId,
        token: ActivityRecordId,
        component: &str,
        config: Configuration,
    ) -> Self {
        Activity {
            id,
            token,
            component: component.to_owned(),
            state: ActivityState::Created,
            config,
            tree: ViewTree::new(),
            member_state: Bundle::new(),
            shadow_bundle: None,
            fragments: Vec::new(),
            inflate_stats: InflateStats::default(),
        }
    }

    /// The instance id.
    pub fn id(&self) -> ActivityInstanceId {
        self.id
    }

    /// The bound record token.
    pub fn token(&self) -> ActivityRecordId {
        self.token
    }

    /// The component name.
    pub fn component(&self) -> &str {
        &self.component
    }

    /// The current lifecycle state.
    pub fn state(&self) -> ActivityState {
        self.state
    }

    /// The configuration this instance was created for.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// Stats from the last `onCreate` inflation (cost-model input).
    pub fn inflate_stats(&self) -> InflateStats {
        self.inflate_stats
    }

    /// Runs `onCreate`: inflates the model's main layout for this
    /// instance's configuration, lets the model add dynamic views, and —
    /// if a saved-state bundle is supplied — restores the view hierarchy
    /// and hands the app bundle to the model.
    pub fn perform_create(&mut self, model: &dyn AppModel, saved: Option<&Bundle>) {
        // Inflate straight from the resolved template reference — the
        // old deep clone of the whole template per create was the single
        // largest allocation on the relaunch path.
        let (tree, stats) = match model
            .resources()
            .resolve_layout(model.main_layout(), &self.config)
        {
            Ok(template) => inflate(template, model.resources(), &self.config),
            Err(_) => {
                let fallback = droidsim_resources::LayoutTemplate::new(
                    "empty",
                    droidsim_resources::LayoutNode::new("FrameLayout").with_id("content"),
                );
                inflate(&fallback, model.resources(), &self.config)
            }
        };
        self.tree = tree;
        self.inflate_stats = stats;
        self.fragments.clear();
        self.state = ActivityState::Created;
        model.on_create(self);
        if let Some(saved) = saved {
            if let Some(hierarchy) = saved.bundle(KEY_HIERARCHY) {
                self.tree.restore_hierarchy_state(hierarchy);
            }
            if model.implements_save_instance_state() {
                if let Some(app) = saved.bundle(KEY_APP) {
                    model.on_restore_instance_state(self, app);
                }
            }
        }
    }

    /// Checked lifecycle transition.
    ///
    /// # Errors
    ///
    /// [`StateError`] for edges Fig. 4 forbids.
    pub fn transition(&mut self, to: ActivityState) -> Result<(), StateError> {
        self.state = self.state.transition_to(to)?;
        match to {
            ActivityState::Shadow => self.tree.dispatch_shadow_state_changed(true),
            ActivityState::Sunny => self.tree.dispatch_sunny_state_changed(true),
            ActivityState::Destroyed => self.tree.release(),
            _ => {
                if self.tree.is_shadow() {
                    self.tree.dispatch_shadow_state_changed(false);
                }
            }
        }
        Ok(())
    }

    /// Walks the legal path from the current state to `Destroyed`
    /// (pausing/stopping as needed) and releases the view tree. This is
    /// what a relaunch or `finish()` does.
    pub fn destroy(&mut self) {
        use ActivityState::{Created, Destroyed, Paused, Resumed, Shadow, Started, Stopped, Sunny};
        loop {
            match self.state {
                Destroyed => break,
                Resumed | Sunny => {
                    self.state = Paused;
                }
                Created | Started => {
                    // Not yet visible: Android destroys directly.
                    self.state = Destroyed;
                }
                Paused => self.state = Stopped,
                Stopped | Shadow => self.state = Destroyed,
            }
        }
        self.tree.release();
    }

    /// `onSaveInstanceState`: saves the view hierarchy state and, when the
    /// app implements the callback, the app's own bundle.
    pub fn save_instance_state(&self, model: &dyn AppModel) -> Bundle {
        let mut out = Bundle::new();
        out.put_bundle(KEY_HIERARCHY, self.tree.save_hierarchy_state());
        if model.implements_save_instance_state() {
            let mut app = Bundle::new();
            model.on_save_instance_state(self, &mut app);
            out.put_bundle(KEY_APP, app);
        }
        out
    }

    /// Approximate heap footprint: instance overhead + view tree + bundles.
    pub fn heap_bytes(&self) -> u64 {
        let bundles = self.member_state.parcel_size() as u64
            + self
                .shadow_bundle
                .as_ref()
                .map_or(0, |b| b.parcel_size() as u64);
        4 * 1024 + self.tree.heap_bytes() + bundles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimpleApp;
    use droidsim_view::ViewOp;

    fn created_activity() -> (Activity, SimpleApp) {
        let model = SimpleApp::with_views(3);
        let mut a = Activity::new(
            ActivityInstanceId::new(0),
            ActivityRecordId::new(0),
            model.component_name(),
            Configuration::phone_portrait(),
        );
        a.perform_create(&model, None);
        (a, model)
    }

    #[test]
    fn create_inflates_layout() {
        let (a, _) = created_activity();
        // decor + root + 3 image views + button
        assert_eq!(a.tree.view_count(), 6);
        assert_eq!(a.inflate_stats().views_created, 5);
        assert_eq!(a.state(), ActivityState::Created);
    }

    #[test]
    fn full_lifecycle_reaches_sunny() {
        let (mut a, _) = created_activity();
        a.transition(ActivityState::Started).unwrap();
        a.transition(ActivityState::Sunny).unwrap();
        assert!(a.state().is_foreground());
        assert!(a.tree.is_sunny());
    }

    #[test]
    fn destroy_releases_tree_from_any_state() {
        let (mut a, _) = created_activity();
        a.transition(ActivityState::Started).unwrap();
        a.transition(ActivityState::Resumed).unwrap();
        a.destroy();
        assert_eq!(a.state(), ActivityState::Destroyed);
        assert!(a.tree.is_released());
    }

    #[test]
    fn save_restore_round_trip_via_bundle() {
        let (mut a, model) = created_activity();
        // Scroll position is genuine user state for a container.
        let root = a.tree.find_by_id_name("root").unwrap();
        a.tree.apply(root, ViewOp::ScrollTo(480)).unwrap();
        let saved = a.save_instance_state(&model);

        let mut b = Activity::new(
            ActivityInstanceId::new(1),
            ActivityRecordId::new(1),
            model.component_name(),
            Configuration::phone_landscape(),
        );
        b.perform_create(&model, Some(&saved));
        let root_b = b.tree.find_by_id_name("root").unwrap();
        assert_eq!(b.tree.view(root_b).unwrap().attrs.scroll_y, 480);
    }

    #[test]
    fn label_text_is_content_and_does_not_round_trip() {
        // Android's freezesText contract: a Button label set by the app
        // is content, not user state — it is rebuilt by the new
        // configuration's resources, not restored from the bundle.
        let (mut a, model) = created_activity();
        let button = a.tree.find_by_id_name("button").unwrap();
        a.tree
            .apply(button, ViewOp::SetText("pressed".into()))
            .unwrap();
        let saved = a.save_instance_state(&model);

        let mut b = Activity::new(
            ActivityInstanceId::new(1),
            ActivityRecordId::new(1),
            model.component_name(),
            Configuration::phone_landscape(),
        );
        b.perform_create(&model, Some(&saved));
        let button_b = b.tree.find_by_id_name("button").unwrap();
        assert_eq!(
            b.tree.view(button_b).unwrap().attrs.text.as_deref(),
            Some("Load")
        );
    }

    #[test]
    fn member_state_is_lost_without_save_callback() {
        let (mut a, model) = created_activity();
        a.member_state.put_string("secret", "not in any view");
        assert!(!model.implements_save_instance_state());
        let saved = a.save_instance_state(&model);
        assert!(saved.bundle(KEY_APP).is_none());

        let mut b = Activity::new(
            ActivityInstanceId::new(1),
            ActivityRecordId::new(1),
            model.component_name(),
            Configuration::phone_landscape(),
        );
        b.perform_create(&model, Some(&saved));
        assert!(b.member_state.is_empty(), "the field state is gone");
    }

    #[test]
    fn shadow_transition_flags_tree() {
        let (mut a, _) = created_activity();
        a.transition(ActivityState::Started).unwrap();
        a.transition(ActivityState::Resumed).unwrap();
        a.transition(ActivityState::Paused).unwrap();
        a.transition(ActivityState::Shadow).unwrap();
        assert!(a.tree.is_shadow());
        assert!(a.state().is_alive());
    }

    #[test]
    fn heap_counts_tree_and_bundles() {
        let (mut a, _) = created_activity();
        let before = a.heap_bytes();
        let img = a.tree.find_by_id_name("image_0").unwrap();
        // Replaces the 64 KiB placeholder with a 1 MiB drawable.
        a.tree
            .apply(img, ViewOp::SetDrawable("big.png".into(), 1 << 20))
            .unwrap();
        assert!(a.heap_bytes() >= before + 900_000);
    }
}
