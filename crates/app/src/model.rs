//! The black-box app-model trait and a simple built-in model.

use crate::activity::Activity;
use droidsim_bundle::Bundle;
use droidsim_config::ConfigChanges;
use droidsim_kernel::SimDuration;
use droidsim_resources::{LayoutNode, LayoutTemplate, Qualifiers, ResourceTable, ResourceValue};
use droidsim_view::{ViewError, ViewOp};

/// What an asynchronous task does when it returns on the UI thread: a
/// user-defined callback that applies view mutations (and possibly shows a
/// dialog bound to the starting activity's window).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AsyncResult {
    /// Mutations applied to views, addressed by `android:id` name.
    pub ops: Vec<(String, ViewOp)>,
    /// Whether the callback shows a dialog: if the starting activity's
    /// window is gone, this raises `WindowLeaked` instead of
    /// `NullPointer`.
    pub shows_dialog: bool,
}

/// A background task specification: how long it runs and what its
/// completion callback does.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncSpec {
    /// Virtual run time of the background work.
    pub duration: SimDuration,
    /// The completion callback's effect.
    pub result: AsyncResult,
}

impl AsyncSpec {
    /// A task that updates one view after `duration`.
    pub fn updating(duration: SimDuration, id_name: &str, op: ViewOp) -> Self {
        AsyncSpec {
            duration,
            result: AsyncResult {
                ops: vec![(id_name.to_owned(), op)],
                shows_dialog: false,
            },
        }
    }
}

/// Black-box app logic.
///
/// The framework calls these hooks exactly where Android calls the
/// corresponding app code; it never looks inside. Every method except
/// [`AppModel::component_name`], [`AppModel::resources`] and
/// [`AppModel::main_layout`] has a stock-Android default (no
/// `configChanges` declared, no `onSaveInstanceState` implemented, async
/// callbacks apply their recorded ops directly to the starting instance's
/// views — the exact pattern of Fig. 1a).
pub trait AppModel {
    /// The component this model implements (`package/.Activity`).
    fn component_name(&self) -> &str;

    /// The app's resource table (layouts for each configuration, strings,
    /// drawables).
    fn resources(&self) -> &ResourceTable;

    /// The layout inflated by `onCreate`.
    fn main_layout(&self) -> &str;

    /// The `android:configChanges` mask: diffs covered by it are delivered
    /// to [`AppModel::on_configuration_changed`] instead of restarting.
    /// 74 % of top apps leave this empty (§2.2).
    fn handled_changes(&self) -> ConfigChanges {
        ConfigChanges::NONE
    }

    /// Whether the app implements `onSaveInstanceState` for its member
    /// state. Most of the TP-set apps do not — that is the bug class.
    fn implements_save_instance_state(&self) -> bool {
        false
    }

    /// Extra `onCreate` work after layout inflation (dynamic views,
    /// fragment attachment). Default: nothing.
    fn on_create(&self, _activity: &mut Activity) {}

    /// Saves the app's member state. Only called when
    /// [`AppModel::implements_save_instance_state`] is true. Default:
    /// saves every member-state entry (the canonical implementation).
    fn on_save_instance_state(&self, activity: &Activity, out: &mut Bundle) {
        out.merge(activity.member_state.clone());
    }

    /// Restores what [`AppModel::on_save_instance_state`] saved.
    fn on_restore_instance_state(&self, activity: &mut Activity, saved: &Bundle) {
        activity.member_state.merge(saved.clone());
    }

    /// In-place reaction for self-handled changes (`configChanges`
    /// declared): the app updates its views itself. Default: nothing.
    fn on_configuration_changed(&self, _activity: &mut Activity) {}

    /// The async completion callback, running on the UI thread against the
    /// instance that started the task. Default: apply the recorded ops by
    /// id name — views resolved through the *instance's own tree*, which
    /// is why a destroyed instance crashes.
    ///
    /// # Errors
    ///
    /// Propagates [`ViewError`]s; `NullPointer`/`WindowLeaked` crash the
    /// app under stock handling.
    fn on_async_result(
        &self,
        activity: &mut Activity,
        result: &AsyncResult,
    ) -> Result<(), ViewError> {
        if activity.tree.is_released() {
            // The callback dereferences a view reference captured before
            // the restart.
            let root = activity.tree.root();
            return Err(if result.shows_dialog {
                ViewError::WindowLeaked { view: root }
            } else {
                ViewError::NullPointer { view: root }
            });
        }
        for (id_name, op) in &result.ops {
            let Some(view) = activity.tree.find_by_id_name(id_name) else {
                continue; // the new layout may not contain the view
            };
            activity.tree.apply(view, op.clone())?;
        }
        // A dialog needs a live window token. Shadow/stopped instances
        // still have one (their window is merely invisible); only a
        // destroyed activity's token is dead — and that case returned
        // `WindowLeaked` above.
        Ok(())
    }
}

/// A minimal concrete app: the paper's benchmark app shape — a column of
/// `ImageView`s plus a `Button` (§5.1, second app-set).
///
/// # Examples
///
/// ```
/// use droidsim_app::{AppModel, SimpleApp};
///
/// let app = SimpleApp::with_views(4);
/// assert_eq!(app.component_name(), "com.bench/.Main");
/// assert_eq!(app.image_count(), 4);
/// ```
#[derive(Debug)]
pub struct SimpleApp {
    component: String,
    resources: ResourceTable,
    image_count: usize,
    handled: ConfigChanges,
    saves_state: bool,
}

impl SimpleApp {
    /// The benchmark app with `n` ImageViews and one Button.
    pub fn with_views(n: usize) -> Self {
        SimpleApp::builder(n).build()
    }

    /// Starts building a customised benchmark app.
    pub fn builder(image_count: usize) -> SimpleAppBuilder {
        SimpleAppBuilder {
            image_count,
            handled: ConfigChanges::NONE,
            saves_state: false,
        }
    }

    /// Number of ImageViews in the layout.
    pub fn image_count(&self) -> usize {
        self.image_count
    }

    /// The async spec of the benchmark app's button: a 5-second task that
    /// updates every ImageView (§5.1: "when touching the button, an
    /// AsyncTask will be issued to update the ImageViews in five seconds").
    pub fn button_task(&self) -> AsyncSpec {
        AsyncSpec {
            duration: SimDuration::from_secs(5),
            result: AsyncResult {
                ops: (0..self.image_count)
                    .map(|i| {
                        (
                            format!("image_{i}"),
                            ViewOp::SetDrawable(format!("loaded_{i}.png"), 256 * 1024),
                        )
                    })
                    .collect(),
                shows_dialog: false,
            },
        }
    }
}

/// Builder for [`SimpleApp`].
#[derive(Debug)]
pub struct SimpleAppBuilder {
    image_count: usize,
    handled: ConfigChanges,
    saves_state: bool,
}

impl SimpleAppBuilder {
    /// Declares an `android:configChanges` mask.
    pub fn handles(mut self, mask: ConfigChanges) -> Self {
        self.handled = mask;
        self
    }

    /// Makes the app implement `onSaveInstanceState`.
    pub fn saves_state(mut self) -> Self {
        self.saves_state = true;
        self
    }

    /// Builds the app and its two layout variants (portrait and
    /// landscape, mirroring the artifact's `layout-port`/`layout-land`).
    pub fn build(self) -> SimpleApp {
        let mut resources = ResourceTable::new();
        for (qualifiers, suffix) in [
            (Qualifiers::any(), "port"),
            (
                Qualifiers::any().with_orientation(droidsim_config::Orientation::Landscape),
                "land",
            ),
        ] {
            let images = (0..self.image_count).map(|i| {
                LayoutNode::new("ImageView")
                    .with_id(&format!("image_{i}"))
                    .with_attr("src", "@drawable/placeholder")
            });
            let root = LayoutNode::new(if suffix == "port" {
                "LinearLayout"
            } else {
                "GridLayout"
            })
            .with_id("root")
            .with_children(images)
            .with_child(
                LayoutNode::new("Button")
                    .with_id("button")
                    .with_attr("text", "Load"),
            );
            resources.put(
                "activity_main",
                qualifiers,
                ResourceValue::Layout(LayoutTemplate::new("activity_main", root)),
            );
        }
        resources.put(
            "placeholder",
            Qualifiers::any(),
            ResourceValue::drawable("placeholder.png", 64 * 1024),
        );
        SimpleApp {
            component: "com.bench/.Main".to_owned(),
            resources,
            image_count: self.image_count,
            handled: self.handled,
            saves_state: self.saves_state,
        }
    }
}

impl AppModel for SimpleApp {
    fn component_name(&self) -> &str {
        &self.component
    }

    fn resources(&self) -> &ResourceTable {
        &self.resources
    }

    fn main_layout(&self) -> &str {
        "activity_main"
    }

    fn handled_changes(&self) -> ConfigChanges {
        self.handled
    }

    fn implements_save_instance_state(&self) -> bool {
        self.saves_state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityInstanceId;
    use droidsim_atms::ActivityRecordId;
    use droidsim_config::Configuration;

    fn activity_for(model: &SimpleApp) -> Activity {
        let mut a = Activity::new(
            ActivityInstanceId::new(0),
            ActivityRecordId::new(0),
            model.component_name(),
            Configuration::phone_portrait(),
        );
        a.perform_create(model, None);
        a
    }

    #[test]
    fn benchmark_layout_has_images_and_button() {
        let model = SimpleApp::with_views(4);
        let a = activity_for(&model);
        for i in 0..4 {
            assert!(a.tree.find_by_id_name(&format!("image_{i}")).is_some());
        }
        assert!(a.tree.find_by_id_name("button").is_some());
    }

    #[test]
    fn landscape_layout_uses_grid() {
        let model = SimpleApp::with_views(2);
        let mut a = Activity::new(
            ActivityInstanceId::new(0),
            ActivityRecordId::new(0),
            model.component_name(),
            Configuration::phone_landscape(),
        );
        a.perform_create(&model, None);
        let root = a.tree.find_by_id_name("root").unwrap();
        assert_eq!(a.tree.view(root).unwrap().kind.class_name(), "GridLayout");
    }

    #[test]
    fn async_callback_applies_ops() {
        let model = SimpleApp::with_views(2);
        let mut a = activity_for(&model);
        let result = model.button_task().result;
        model.on_async_result(&mut a, &result).unwrap();
        let img = a.tree.find_by_id_name("image_0").unwrap();
        assert_eq!(
            a.tree.view(img).unwrap().attrs.drawable.as_ref().unwrap().0,
            "loaded_0.png"
        );
        // The generic invalidate hook saw every updated image.
        assert_eq!(a.tree.drain_invalidations().len(), 2);
    }

    #[test]
    fn async_callback_on_destroyed_instance_crashes() {
        let model = SimpleApp::with_views(1);
        let mut a = activity_for(&model);
        a.destroy();
        let err = model
            .on_async_result(&mut a, &model.button_task().result)
            .unwrap_err();
        assert!(err.is_crash());
    }

    #[test]
    fn dialog_after_destroy_leaks_window() {
        let model = SimpleApp::with_views(1);
        let mut a = activity_for(&model);
        a.destroy();
        let result = AsyncResult {
            ops: vec![],
            shows_dialog: true,
        };
        let err = model.on_async_result(&mut a, &result).unwrap_err();
        assert!(matches!(err, ViewError::WindowLeaked { .. }));
    }

    #[test]
    fn missing_views_are_skipped_not_crashed() {
        let model = SimpleApp::with_views(1);
        let mut a = activity_for(&model);
        let result = AsyncResult {
            ops: vec![("nonexistent".to_owned(), ViewOp::SetText("x".into()))],
            shows_dialog: false,
        };
        model.on_async_result(&mut a, &result).unwrap();
    }

    #[test]
    fn builder_configures_flags() {
        let app = SimpleApp::builder(1)
            .handles(ConfigChanges::ALL)
            .saves_state()
            .build();
        assert_eq!(app.handled_changes(), ConfigChanges::ALL);
        assert!(app.implements_save_instance_state());
    }

    #[test]
    fn button_task_targets_every_image() {
        let app = SimpleApp::with_views(8);
        let spec = app.button_task();
        assert_eq!(spec.result.ops.len(), 8);
        assert_eq!(spec.duration, SimDuration::from_secs(5));
    }
}
