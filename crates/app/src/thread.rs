//! The activity thread: instance table, async tasks, UI message queue.

use crate::activity::{Activity, ActivityInstanceId};
use crate::model::{AppModel, AsyncResult, AsyncSpec};
use crate::state::{ActivityState, StateError};
use core::fmt;
use droidsim_atms::ActivityRecordId;
use droidsim_bundle::Bundle;
use droidsim_config::Configuration;
use droidsim_kernel::{IdGen, SimTime};
use droidsim_looper::{AsyncTaskId, AsyncTaskPool, MessageQueue};
use droidsim_view::ViewError;
use std::collections::BTreeMap;

/// A completed background task heading for the UI thread: which instance's
/// callback runs and what it does.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncWork {
    /// The instance whose callback was captured when the task started.
    pub instance: ActivityInstanceId,
    /// The callback's effect.
    pub result: AsyncResult,
}

/// Messages on the UI thread's queue.
#[derive(Debug, Clone, PartialEq)]
pub enum UiMessage {
    /// An async task finished; run its callback.
    AsyncResult(AsyncWork),
}

/// Activity-thread errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ThreadError {
    /// No such instance.
    UnknownInstance(ActivityInstanceId),
    /// Illegal lifecycle transition.
    State(StateError),
    /// A view operation failed (possibly a crash).
    View(ViewError),
}

impl fmt::Display for ThreadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadError::UnknownInstance(id) => write!(f, "unknown activity instance {id}"),
            ThreadError::State(e) => write!(f, "{e}"),
            ThreadError::View(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ThreadError {}

impl From<StateError> for ThreadError {
    fn from(e: StateError) -> Self {
        ThreadError::State(e)
    }
}

impl From<ViewError> for ThreadError {
    fn from(e: ViewError) -> Self {
        ThreadError::View(e)
    }
}

/// One app process's activity thread.
///
/// Owns the activity instances, the in-flight async tasks and the UI
/// message queue. The paper's `ActivityThread` patch (+91 LoC) adds the
/// `current_shadow`/`current_sunny` pointers and hooks three functions;
/// the pointers live here, the behaviour is driven by the change handler.
///
/// # Examples
///
/// ```
/// use droidsim_app::{ActivityThread, SimpleApp};
/// use droidsim_atms::ActivityRecordId;
/// use droidsim_config::Configuration;
///
/// let model = SimpleApp::with_views(2);
/// let mut thread = ActivityThread::new();
/// let id = thread.perform_launch_activity(
///     &model,
///     ActivityRecordId::new(0),
///     Configuration::phone_portrait(),
///     None,
/// );
/// thread.resume_sequence(id, false).unwrap();
/// assert!(thread.instance(id).unwrap().state().is_foreground());
/// ```
#[derive(Debug)]
pub struct ActivityThread {
    instances: BTreeMap<ActivityInstanceId, Activity>,
    ids: IdGen,
    current_shadow: Option<ActivityInstanceId>,
    current_sunny: Option<ActivityInstanceId>,
    tasks: AsyncTaskPool<AsyncWork>,
    ui_queue: MessageQueue<UiMessage>,
}

impl ActivityThread {
    /// Creates an empty thread.
    pub fn new() -> Self {
        ActivityThread {
            instances: BTreeMap::new(),
            ids: IdGen::new(),
            current_shadow: None,
            current_sunny: None,
            tasks: AsyncTaskPool::new(),
            ui_queue: MessageQueue::new(),
        }
    }

    /// `performLaunchActivity`: creates an instance bound to `token` and
    /// runs its `onCreate` with the optional saved-state bundle (for
    /// relaunches this is the pre-restart state; for RCHDroid sunny starts
    /// it is the shadow bundle).
    pub fn perform_launch_activity(
        &mut self,
        model: &dyn AppModel,
        token: ActivityRecordId,
        config: Configuration,
        saved: Option<&Bundle>,
    ) -> ActivityInstanceId {
        let id = ActivityInstanceId::new(self.ids.next());
        let mut activity = Activity::new(id, token, model.component_name(), config);
        activity.perform_create(model, saved);
        self.instances.insert(id, activity);
        id
    }

    /// Walks an instance to the foreground: `Created/Stopped → Started →
    /// Resumed` (or `Sunny` when `sunny` is set — `handleResumeActivity`
    /// with the sunny flag).
    ///
    /// # Errors
    ///
    /// [`ThreadError::UnknownInstance`] / [`ThreadError::State`].
    pub fn resume_sequence(
        &mut self,
        id: ActivityInstanceId,
        sunny: bool,
    ) -> Result<(), ThreadError> {
        let a = self.instance_mut(id)?;
        if matches!(a.state(), ActivityState::Created | ActivityState::Stopped) {
            a.transition(ActivityState::Started)?;
        }
        match a.state() {
            ActivityState::Started => {
                a.transition(if sunny {
                    ActivityState::Sunny
                } else {
                    ActivityState::Resumed
                })?;
            }
            ActivityState::Paused => {
                a.transition(ActivityState::Resumed)?;
            }
            ActivityState::Shadow if sunny => {
                a.transition(ActivityState::Sunny)?;
            }
            _ => {}
        }
        if sunny {
            self.current_sunny = Some(id);
        }
        Ok(())
    }

    /// Walks an instance into the background: `Resumed/Sunny → Paused →
    /// Stopped`.
    ///
    /// # Errors
    ///
    /// [`ThreadError::UnknownInstance`] / [`ThreadError::State`].
    pub fn pause_stop_sequence(&mut self, id: ActivityInstanceId) -> Result<(), ThreadError> {
        let a = self.instance_mut(id)?;
        if a.state().is_foreground() {
            a.transition(ActivityState::Paused)?;
        }
        if a.state() == ActivityState::Paused {
            a.transition(ActivityState::Stopped)?;
        }
        Ok(())
    }

    /// Puts an instance into the Shadow state, snapshotting its saved
    /// state into the shadow bundle (§3.2). The instance becomes the
    /// thread's current shadow.
    ///
    /// # Errors
    ///
    /// [`ThreadError::UnknownInstance`] / [`ThreadError::State`].
    pub fn enter_shadow(
        &mut self,
        id: ActivityInstanceId,
        model: &dyn AppModel,
    ) -> Result<(), ThreadError> {
        let a = self.instance_mut(id)?;
        if a.state().is_foreground() {
            a.transition(ActivityState::Paused)?;
        }
        let snapshot = a.save_instance_state(model);
        let a = self.instance_mut(id)?;
        a.shadow_bundle = Some(snapshot);
        a.transition(ActivityState::Shadow)?;
        if self.current_sunny == Some(id) {
            self.current_sunny = None;
        }
        self.current_shadow = Some(id);
        Ok(())
    }

    /// Destroys an instance (releasing its views). In-flight async tasks
    /// are **not** cancelled — faithfully reproducing the failure mode the
    /// paper targets.
    ///
    /// # Errors
    ///
    /// [`ThreadError::UnknownInstance`].
    pub fn destroy_activity(&mut self, id: ActivityInstanceId) -> Result<(), ThreadError> {
        let a = self.instance_mut(id)?;
        a.destroy();
        if self.current_shadow == Some(id) {
            self.current_shadow = None;
        }
        if self.current_sunny == Some(id) {
            self.current_sunny = None;
        }
        Ok(())
    }

    /// Starts a background task whose callback targets `instance`.
    ///
    /// # Errors
    ///
    /// [`ThreadError::UnknownInstance`].
    pub fn start_async(
        &mut self,
        instance: ActivityInstanceId,
        spec: AsyncSpec,
        now: SimTime,
    ) -> Result<AsyncTaskId, ThreadError> {
        if !self.instances.contains_key(&instance) {
            return Err(ThreadError::UnknownInstance(instance));
        }
        Ok(self.tasks.spawn(
            now,
            spec.duration,
            AsyncWork {
                instance,
                result: spec.result,
            },
        ))
    }

    /// Moves finished tasks onto the UI queue (worker thread → looper).
    pub fn pump_async(&mut self, now: SimTime) {
        for completion in self.tasks.completions_until(now) {
            self.ui_queue.post(
                completion.finished_at,
                UiMessage::AsyncResult(completion.payload),
            );
        }
    }

    /// Drains UI messages due at or before `now`.
    pub fn drain_ui(&mut self, now: SimTime) -> Vec<UiMessage> {
        self.ui_queue
            .drain_until(now)
            .into_iter()
            .map(|m| m.what)
            .collect()
    }

    /// Runs one async callback against its instance (the UI thread's
    /// dispatch step).
    ///
    /// # Errors
    ///
    /// [`ThreadError::View`] with a crash error if the instance is gone —
    /// the stock NullPointer scenario; [`ThreadError::UnknownInstance`] if
    /// the id was never valid.
    pub fn deliver_async(
        &mut self,
        model: &dyn AppModel,
        work: &AsyncWork,
    ) -> Result<(), ThreadError> {
        let a = self
            .instances
            .get_mut(&work.instance)
            .ok_or(ThreadError::UnknownInstance(work.instance))?;
        model.on_async_result(a, &work.result)?;
        Ok(())
    }

    /// The earliest instant at which new work becomes due (async deadline
    /// or queued UI message).
    pub fn next_wakeup(&self) -> Option<SimTime> {
        match (self.tasks.next_deadline(), self.ui_queue.next_due()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Looks up an instance.
    ///
    /// # Errors
    ///
    /// [`ThreadError::UnknownInstance`].
    pub fn instance(&self, id: ActivityInstanceId) -> Result<&Activity, ThreadError> {
        self.instances
            .get(&id)
            .ok_or(ThreadError::UnknownInstance(id))
    }

    /// Mutable instance lookup.
    ///
    /// # Errors
    ///
    /// [`ThreadError::UnknownInstance`].
    pub fn instance_mut(&mut self, id: ActivityInstanceId) -> Result<&mut Activity, ThreadError> {
        self.instances
            .get_mut(&id)
            .ok_or(ThreadError::UnknownInstance(id))
    }

    /// Runs `f` with mutable access to two *distinct* instances at once —
    /// the shape RCHDroid needs to couple and migrate between the shadow
    /// and sunny trees.
    ///
    /// # Errors
    ///
    /// [`ThreadError::UnknownInstance`] if either id is stale or the ids
    /// are equal.
    pub fn with_instance_pair<R>(
        &mut self,
        a: ActivityInstanceId,
        b: ActivityInstanceId,
        f: impl FnOnce(&mut Activity, &mut Activity) -> R,
    ) -> Result<R, ThreadError> {
        if a == b {
            return Err(ThreadError::UnknownInstance(b));
        }
        let mut act_a = self
            .instances
            .remove(&a)
            .ok_or(ThreadError::UnknownInstance(a))?;
        let result = match self.instances.get_mut(&b) {
            Some(act_b) => Ok(f(&mut act_a, act_b)),
            None => Err(ThreadError::UnknownInstance(b)),
        };
        self.instances.insert(a, act_a);
        result
    }

    /// The current shadow instance pointer (+91 LoC patch field).
    pub fn current_shadow(&self) -> Option<ActivityInstanceId> {
        self.current_shadow
    }

    /// The current sunny instance pointer (+91 LoC patch field).
    pub fn current_sunny(&self) -> Option<ActivityInstanceId> {
        self.current_sunny
    }

    /// Explicitly repoints the shadow pointer (coin flip bookkeeping).
    pub fn set_current_shadow(&mut self, id: Option<ActivityInstanceId>) {
        self.current_shadow = id;
    }

    /// Explicitly repoints the sunny pointer (coin flip bookkeeping).
    pub fn set_current_sunny(&mut self, id: Option<ActivityInstanceId>) {
        self.current_sunny = id;
    }

    /// Number of in-flight async tasks.
    pub fn async_task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Alive (non-destroyed) instances.
    pub fn alive_instances(&self) -> Vec<ActivityInstanceId> {
        self.instances
            .values()
            .filter(|a| a.state().is_alive())
            .map(Activity::id)
            .collect()
    }

    /// Total heap footprint of alive instances, in bytes.
    pub fn heap_bytes(&self) -> u64 {
        self.instances
            .values()
            .filter(|a| a.state().is_alive())
            .map(Activity::heap_bytes)
            .sum()
    }

    /// Finds the instance bound to a record token.
    pub fn instance_for_token(&self, token: ActivityRecordId) -> Option<ActivityInstanceId> {
        self.instances
            .values()
            .filter(|a| a.state().is_alive())
            .find(|a| a.token() == token)
            .map(Activity::id)
    }
}

impl Default for ActivityThread {
    fn default() -> Self {
        ActivityThread::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimpleApp;

    fn launched() -> (ActivityThread, SimpleApp, ActivityInstanceId) {
        let model = SimpleApp::with_views(2);
        let mut thread = ActivityThread::new();
        let id = thread.perform_launch_activity(
            &model,
            ActivityRecordId::new(0),
            Configuration::phone_portrait(),
            None,
        );
        thread.resume_sequence(id, false).unwrap();
        (thread, model, id)
    }

    #[test]
    fn launch_and_resume() {
        let (thread, _, id) = launched();
        assert_eq!(thread.instance(id).unwrap().state(), ActivityState::Resumed);
        assert_eq!(thread.alive_instances(), vec![id]);
    }

    #[test]
    fn async_round_trip_updates_views() {
        let (mut thread, model, id) = launched();
        let spec = model.button_task();
        thread.start_async(id, spec, SimTime::ZERO).unwrap();
        assert_eq!(thread.async_task_count(), 1);
        assert_eq!(thread.next_wakeup(), Some(SimTime::from_secs(5)));

        thread.pump_async(SimTime::from_secs(5));
        let messages = thread.drain_ui(SimTime::from_secs(5));
        assert_eq!(messages.len(), 1);
        let UiMessage::AsyncResult(work) = &messages[0];
        thread.deliver_async(&model, work).unwrap();
        let a = thread.instance(id).unwrap();
        let img = a.tree.find_by_id_name("image_1").unwrap();
        assert_eq!(
            a.tree.view(img).unwrap().attrs.drawable.as_ref().unwrap().0,
            "loaded_1.png"
        );
    }

    #[test]
    fn async_after_destroy_crashes() {
        let (mut thread, model, id) = launched();
        thread
            .start_async(id, model.button_task(), SimTime::ZERO)
            .unwrap();
        // The restart destroys the instance but does NOT cancel the task.
        thread.destroy_activity(id).unwrap();
        assert_eq!(thread.async_task_count(), 1);

        thread.pump_async(SimTime::from_secs(5));
        let messages = thread.drain_ui(SimTime::from_secs(5));
        let UiMessage::AsyncResult(work) = &messages[0];
        let err = thread.deliver_async(&model, work).unwrap_err();
        match err {
            ThreadError::View(v) => assert!(v.is_crash()),
            other => panic!("expected a crash, got {other}"),
        }
    }

    #[test]
    fn enter_shadow_snapshots_state() {
        let (mut thread, model, id) = launched();
        thread
            .instance_mut(id)
            .unwrap()
            .member_state
            .put_i32("field", 7);
        thread.enter_shadow(id, &model).unwrap();
        let a = thread.instance(id).unwrap();
        assert_eq!(a.state(), ActivityState::Shadow);
        assert!(a.shadow_bundle.is_some());
        assert_eq!(thread.current_shadow(), Some(id));
    }

    #[test]
    fn shadow_instance_still_receives_async_results() {
        let (mut thread, model, id) = launched();
        thread
            .start_async(id, model.button_task(), SimTime::ZERO)
            .unwrap();
        thread.enter_shadow(id, &model).unwrap();

        thread.pump_async(SimTime::from_secs(5));
        let messages = thread.drain_ui(SimTime::from_secs(5));
        let UiMessage::AsyncResult(work) = &messages[0];
        // The shadow instance is alive: the callback succeeds.
        thread.deliver_async(&model, work).unwrap();
        let a = thread.instance_mut(id).unwrap();
        assert_eq!(
            a.tree.drain_invalidations().len(),
            2,
            "updates caught for migration"
        );
    }

    #[test]
    fn destroy_clears_pointers() {
        let (mut thread, model, id) = launched();
        thread.enter_shadow(id, &model).unwrap();
        thread.destroy_activity(id).unwrap();
        assert_eq!(thread.current_shadow(), None);
        assert!(thread.alive_instances().is_empty());
    }

    #[test]
    fn token_lookup_skips_dead_instances() {
        let (mut thread, model, id) = launched();
        let token = thread.instance(id).unwrap().token();
        assert_eq!(thread.instance_for_token(token), Some(id));
        thread.destroy_activity(id).unwrap();
        assert_eq!(thread.instance_for_token(token), None);
        let _ = model;
    }

    #[test]
    fn sunny_resume_sets_pointer() {
        let model = SimpleApp::with_views(1);
        let mut thread = ActivityThread::new();
        let id = thread.perform_launch_activity(
            &model,
            ActivityRecordId::new(1),
            Configuration::phone_landscape(),
            None,
        );
        thread.resume_sequence(id, true).unwrap();
        assert_eq!(thread.instance(id).unwrap().state(), ActivityState::Sunny);
        assert_eq!(thread.current_sunny(), Some(id));
    }

    #[test]
    fn start_async_on_unknown_instance_errors() {
        let (mut thread, model, _) = launched();
        let bogus = ActivityInstanceId::new(99);
        let err = thread
            .start_async(bogus, model.button_task(), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, ThreadError::UnknownInstance(bogus));
    }
}
