//! The app-process side of activity management: lifecycle states, activity
//! instances, the black-box app-model trait, and the activity thread.
//!
//! This is the half of the Android framework that lives inside each app's
//! process (Fig. 2a of the paper): the **activity thread** owns activity
//! *instances*, each with a view tree, and is the only thread allowed to
//! touch views; async work finishes by posting back to it.
//!
//! The paper's patch surface here (Table 2):
//!
//! * `Activity` (+81 LoC) — Shadow/Sunny state plumbing,
//!   `getAllSunnyViews`/`setSunnyViews` (exposed on the view tree),
//! * `ActivityThread` (+91 LoC) — current shadow/sunny instance pointers,
//!   modified `performActivityConfigurationChanged`,
//!   `performLaunchActivity` (loads the shadow bundle) and
//!   `handleResumeActivity` (builds the mapping), plus the GC routine hook.
//!
//! Apps are **black boxes**: the framework sees only an [`AppModel`] that
//! supplies resources/layouts and reacts to lifecycle callbacks and async
//! results by applying [`ViewOp`](droidsim_view::ViewOp)s. The framework
//! never inspects why an op happens — RCHDroid's lazy migration works
//! purely off intercepted invalidations.

pub mod activity;
pub mod fragment;
pub mod model;
pub mod state;
pub mod thread;
pub mod transaction;

pub use activity::{Activity, ActivityInstanceId};
pub use fragment::{AttachedFragment, FragmentError, FragmentSpec};
pub use model::{AppModel, AsyncResult, AsyncSpec, SimpleApp};
pub use state::{ActivityState, StateError};
pub use thread::{ActivityThread, AsyncWork, ThreadError, UiMessage};
pub use transaction::{ClientTransaction, LifecycleItem};
