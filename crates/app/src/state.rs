//! The activity lifecycle state machine (Fig. 4 of the paper).
//!
//! Solid-line states are stock Android; `Shadow` and `Sunny` are the two
//! states RCHDroid adds. A `Shadow` activity is invisible but alive — it
//! still receives async callbacks. A `Sunny` activity is the foreground
//! instance, equivalent to `Resumed` except that its view tree mirrors
//! changes migrated from the coupled shadow tree.

use core::fmt;
use serde::{Deserialize, Serialize};

/// One activity instance's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityState {
    /// `onCreate` ran.
    Created,
    /// `onStart` ran; becoming visible.
    Started,
    /// Foreground, interactive.
    Resumed,
    /// Lost focus but may be partially visible.
    Paused,
    /// Fully hidden.
    Stopped,
    /// Destroyed; the instance and its views are released.
    Destroyed,
    /// RCHDroid: stopped with the shadow flag — invisible, alive,
    /// receiving async callbacks, exempt from system kill until GC'd.
    Shadow,
    /// RCHDroid: resumed with the sunny flag — the foreground instance
    /// coupled to a shadow.
    Sunny,
}

/// An illegal lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateError {
    /// State the instance was in.
    pub from: ActivityState,
    /// State the caller requested.
    pub to: ActivityState,
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal lifecycle transition {} -> {}",
            self.from, self.to
        )
    }
}

impl std::error::Error for StateError {}

impl ActivityState {
    /// Whether the instance is alive (its view tree not released).
    pub fn is_alive(self) -> bool {
        self != ActivityState::Destroyed
    }

    /// Whether the instance is visible to the user.
    pub fn is_visible(self) -> bool {
        matches!(
            self,
            ActivityState::Resumed | ActivityState::Paused | ActivityState::Sunny
        )
    }

    /// Whether the instance is in the foreground and interactive.
    pub fn is_foreground(self) -> bool {
        matches!(self, ActivityState::Resumed | ActivityState::Sunny)
    }

    /// Whether the transition `self → to` is legal per Fig. 4.
    pub fn can_transition_to(self, to: ActivityState) -> bool {
        use ActivityState::{Created, Destroyed, Paused, Resumed, Shadow, Started, Stopped, Sunny};
        matches!(
            (self, to),
            // Stock forward path.
            (Created, Started)
                | (Started, Resumed)
                | (Resumed, Paused)
                | (Paused, Resumed)
                | (Paused, Stopped)
                | (Stopped, Started)  // restart after stop
                | (Stopped, Destroyed)
                | (Paused, Destroyed) // finish while paused
                // RCHDroid additions (dotted states in Fig. 4):
                | (Stopped, Shadow)   // stopped with the shadow flag
                | (Paused, Shadow)    // fast path during a runtime change
                | (Resumed, Sunny)    // resumed with the sunny flag
                | (Started, Sunny)    // first resume goes directly to sunny
                | (Shadow, Sunny)     // coin flip
                | (Sunny, Shadow)     // coin flip
                | (Sunny, Resumed)    // decoupled (shadow GC'd)
                | (Sunny, Paused)     // normal lifecycle continues
                | (Shadow, Destroyed) // shadow GC
        )
    }

    /// Checked transition.
    ///
    /// # Errors
    ///
    /// [`StateError`] if Fig. 4 does not permit the edge.
    pub fn transition_to(self, to: ActivityState) -> Result<ActivityState, StateError> {
        if self.can_transition_to(to) {
            Ok(to)
        } else {
            Err(StateError { from: self, to })
        }
    }
}

impl fmt::Display for ActivityState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ActivityState::Created => "Created",
            ActivityState::Started => "Started",
            ActivityState::Resumed => "Resumed",
            ActivityState::Paused => "Paused",
            ActivityState::Stopped => "Stopped",
            ActivityState::Destroyed => "Destroyed",
            ActivityState::Shadow => "Shadow",
            ActivityState::Sunny => "Sunny",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ActivityState::*;

    #[test]
    fn stock_happy_path() {
        let mut s = Created;
        for next in [Started, Resumed, Paused, Stopped, Destroyed] {
            s = s.transition_to(next).unwrap();
        }
        assert_eq!(s, Destroyed);
        assert!(!s.is_alive());
    }

    #[test]
    fn shadow_entry_and_gc() {
        let s = Stopped.transition_to(Shadow).unwrap();
        assert!(s.is_alive());
        assert!(!s.is_visible());
        assert_eq!(s.transition_to(Destroyed).unwrap(), Destroyed);
    }

    #[test]
    fn sunny_is_foreground() {
        let s = Started.transition_to(Sunny).unwrap();
        assert!(s.is_foreground());
        assert!(s.is_visible());
    }

    #[test]
    fn coin_flip_edges() {
        assert_eq!(Shadow.transition_to(Sunny).unwrap(), Sunny);
        assert_eq!(Sunny.transition_to(Shadow).unwrap(), Shadow);
    }

    #[test]
    fn illegal_edges_are_rejected() {
        assert!(Created.transition_to(Resumed).is_err());
        assert!(Destroyed.transition_to(Started).is_err());
        assert!(Resumed.transition_to(Shadow).is_err(), "must pause first");
        assert!(
            Shadow.transition_to(Resumed).is_err(),
            "shadow exits via sunny or GC"
        );
        let err = Created.transition_to(Destroyed).unwrap_err();
        assert_eq!(
            err.to_string(),
            "illegal lifecycle transition Created -> Destroyed"
        );
    }

    #[test]
    fn visibility_classification() {
        assert!(Resumed.is_visible());
        assert!(Paused.is_visible());
        assert!(!Stopped.is_visible());
        assert!(!Shadow.is_visible(), "shadow is invisible by definition");
    }
}
