//! Fragments: dynamically attached sub-interfaces.
//!
//! §2.2 of the paper singles fragments out as the place where app-level
//! (static-analysis) approaches break: "the views are distributed and
//! assigned in different fragments. The fragments can be dynamically
//! attached to the main activity, which causes dynamic changes to the
//! view tree." This module models exactly that: a [`FragmentSpec`]
//! describes a fragment (its layout resource and target container), and
//! [`Activity::attach_fragment`](crate::Activity::attach_fragment)
//! inflates it into the live tree at runtime — so fragment views are
//! *not* part of the activity's main layout resource.
//!
//! Consequences the simulator derives:
//!
//! * stock restart — fragment views are re-created only if the app's
//!   `onCreate` re-attaches them (framework-managed fragments do; the
//!   buggy pattern is manual attachment on a code path that does not
//!   re-run),
//! * RCHDroid — the sunny instance runs the same `onCreate`, re-attaching
//!   the fragments; the essence mapping then links fragment views by id
//!   like any others, so their state migrates,
//! * RuntimeDroid — static view reconstruction re-inflates the *layout
//!   resource*, which does not contain fragment views: the whole fragment
//!   subtree is dropped (the paper's criticism).

use crate::activity::Activity;
use droidsim_config::Configuration;
use droidsim_resources::ResourceTable;
use droidsim_view::{inflate, ViewError, ViewId};
use serde::{Deserialize, Serialize};

/// A fragment description: which layout it inflates and where it mounts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentSpec {
    /// The fragment's tag (unique within an activity).
    pub tag: String,
    /// The layout resource inflated as the fragment's view.
    pub layout: String,
    /// The `android:id` name of the container view it attaches into.
    pub container: String,
}

impl FragmentSpec {
    /// Creates a spec.
    pub fn new(tag: &str, layout: &str, container: &str) -> Self {
        FragmentSpec {
            tag: tag.to_owned(),
            layout: layout.to_owned(),
            container: container.to_owned(),
        }
    }
}

/// A fragment attached to an activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttachedFragment {
    /// The spec it was attached from.
    pub spec: FragmentSpec,
    /// The root view of the fragment's subtree in the activity's tree.
    pub root_view: ViewId,
}

/// Fragment errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentError {
    /// The target container view does not exist.
    UnknownContainer(String),
    /// A fragment with this tag is already attached.
    DuplicateTag(String),
    /// No fragment with this tag is attached.
    UnknownTag(String),
    /// The fragment's layout resource failed to resolve.
    MissingLayout(String),
    /// View-tree failure during attach/detach.
    View(ViewError),
}

impl core::fmt::Display for FragmentError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FragmentError::UnknownContainer(c) => write!(f, "no container view `{c}`"),
            FragmentError::DuplicateTag(t) => write!(f, "fragment `{t}` already attached"),
            FragmentError::UnknownTag(t) => write!(f, "no fragment `{t}` attached"),
            FragmentError::MissingLayout(l) => write!(f, "fragment layout `{l}` not found"),
            FragmentError::View(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FragmentError {}

impl From<ViewError> for FragmentError {
    fn from(e: ViewError) -> Self {
        FragmentError::View(e)
    }
}

impl Activity {
    /// Attaches a fragment: inflates its layout for this instance's
    /// configuration and grafts the subtree under the container view.
    ///
    /// # Errors
    ///
    /// [`FragmentError`] variants as documented on the type.
    pub fn attach_fragment(
        &mut self,
        resources: &ResourceTable,
        spec: &FragmentSpec,
    ) -> Result<AttachedFragment, FragmentError> {
        if self.fragments.iter().any(|f| f.spec.tag == spec.tag) {
            return Err(FragmentError::DuplicateTag(spec.tag.clone()));
        }
        let container = self
            .tree
            .find_by_id_name(&spec.container)
            .ok_or_else(|| FragmentError::UnknownContainer(spec.container.clone()))?;
        let config: Configuration = self.config().clone();
        let template = resources
            .resolve_layout(&spec.layout, &config)
            .map_err(|_| FragmentError::MissingLayout(spec.layout.clone()))?
            .clone();
        let (fragment_tree, _) = inflate(&template, resources, &config);
        let root_view = graft(&fragment_tree, &mut self.tree, container)?;
        let attached = AttachedFragment {
            spec: spec.clone(),
            root_view,
        };
        self.fragments.push(attached.clone());
        Ok(attached)
    }

    /// Detaches a fragment, removing its whole subtree.
    ///
    /// # Errors
    ///
    /// [`FragmentError::UnknownTag`] if no such fragment is attached.
    pub fn detach_fragment(&mut self, tag: &str) -> Result<(), FragmentError> {
        let pos = self
            .fragments
            .iter()
            .position(|f| f.spec.tag == tag)
            .ok_or_else(|| FragmentError::UnknownTag(tag.to_owned()))?;
        let fragment = self.fragments.remove(pos);
        self.tree.remove_view(fragment.root_view)?;
        Ok(())
    }

    /// The fragments currently attached.
    pub fn fragments(&self) -> &[AttachedFragment] {
        &self.fragments
    }

    /// Finds an attached fragment by tag.
    pub fn fragment(&self, tag: &str) -> Option<&AttachedFragment> {
        self.fragments.iter().find(|f| f.spec.tag == tag)
    }
}

/// Copies `source`'s tree (excluding its decor view) under `target_parent`
/// in `dest`, returning the id of the grafted root.
fn graft(
    source: &droidsim_view::ViewTree,
    dest: &mut droidsim_view::ViewTree,
    target_parent: ViewId,
) -> Result<ViewId, ViewError> {
    // The source root (decor) has exactly the inflated layout root as its
    // child; graft from there.
    let source_root = *source
        .view(source.root())?
        .children
        .first()
        .ok_or(ViewError::UnknownView(source.root()))?;
    graft_subtree(source, source_root, dest, target_parent)
}

fn graft_subtree(
    source: &droidsim_view::ViewTree,
    node: ViewId,
    dest: &mut droidsim_view::ViewTree,
    parent: ViewId,
) -> Result<ViewId, ViewError> {
    let src = source.view(node)?;
    let new_id = dest.add_view(parent, src.kind.clone(), src.id_name_str())?;
    {
        let dst = dest.view_mut(new_id)?;
        dst.attrs = src.attrs.clone();
        dst.saves_state = src.saves_state;
        dst.freezes_text = src.freezes_text;
    }
    for &child in &src.children {
        graft_subtree(source, child, dest, new_id)?;
    }
    Ok(new_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityInstanceId;
    use crate::model::{AppModel, SimpleApp};
    use droidsim_atms::ActivityRecordId;
    use droidsim_resources::{LayoutNode, LayoutTemplate, Qualifiers, ResourceValue};
    use droidsim_view::ViewOp;

    fn resources_with_fragment() -> ResourceTable {
        let mut resources = SimpleApp::with_views(1).resources().clone();
        resources.put(
            "fragment_login",
            Qualifiers::any(),
            ResourceValue::Layout(LayoutTemplate::new(
                "fragment_login",
                LayoutNode::new("LinearLayout")
                    .with_id("login_root")
                    .with_child(LayoutNode::new("EditText").with_id("username"))
                    .with_child(LayoutNode::new("Button").with_id("submit")),
            )),
        );
        resources
    }

    fn activity() -> Activity {
        let model = SimpleApp::with_views(1);
        let mut a = Activity::new(
            ActivityInstanceId::new(0),
            ActivityRecordId::new(0),
            model.component_name(),
            droidsim_config::Configuration::phone_portrait(),
        );
        a.perform_create(&model, None);
        a
    }

    #[test]
    fn attach_grafts_the_fragment_subtree() {
        let mut a = activity();
        let resources = resources_with_fragment();
        let before = a.tree.view_count();
        let attached = a
            .attach_fragment(
                &resources,
                &FragmentSpec::new("login", "fragment_login", "root"),
            )
            .unwrap();
        assert_eq!(a.tree.view_count(), before + 3);
        assert!(a.tree.find_by_id_name("username").is_some());
        assert_eq!(a.fragment("login").unwrap().root_view, attached.root_view);
    }

    #[test]
    fn fragment_views_behave_like_normal_views() {
        let mut a = activity();
        let resources = resources_with_fragment();
        a.attach_fragment(
            &resources,
            &FragmentSpec::new("login", "fragment_login", "root"),
        )
        .unwrap();
        let username = a.tree.find_by_id_name("username").unwrap();
        a.tree
            .apply(username, ViewOp::SetText("alice".into()))
            .unwrap();
        // EditText in a fragment saves its state like any other.
        let state = a.tree.save_hierarchy_state();
        assert!(state.bundle("view:username").is_some());
    }

    #[test]
    fn detach_removes_the_subtree() {
        let mut a = activity();
        let resources = resources_with_fragment();
        a.attach_fragment(
            &resources,
            &FragmentSpec::new("login", "fragment_login", "root"),
        )
        .unwrap();
        a.detach_fragment("login").unwrap();
        assert!(a.tree.find_by_id_name("username").is_none());
        assert!(a.fragments().is_empty());
        assert_eq!(
            a.detach_fragment("login"),
            Err(FragmentError::UnknownTag("login".into()))
        );
    }

    #[test]
    fn duplicate_tags_are_rejected() {
        let mut a = activity();
        let resources = resources_with_fragment();
        let spec = FragmentSpec::new("login", "fragment_login", "root");
        a.attach_fragment(&resources, &spec).unwrap();
        assert_eq!(
            a.attach_fragment(&resources, &spec),
            Err(FragmentError::DuplicateTag("login".into()))
        );
    }

    #[test]
    fn missing_container_or_layout_error() {
        let mut a = activity();
        let resources = resources_with_fragment();
        assert_eq!(
            a.attach_fragment(
                &resources,
                &FragmentSpec::new("x", "fragment_login", "nope")
            ),
            Err(FragmentError::UnknownContainer("nope".into()))
        );
        assert_eq!(
            a.attach_fragment(&resources, &FragmentSpec::new("x", "no_layout", "root")),
            Err(FragmentError::MissingLayout("no_layout".into()))
        );
    }
}
