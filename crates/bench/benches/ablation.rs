//! Ablation bench: steady-state handling cost with each design choice
//! removed (see `rch_experiments::ablation`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use droidsim_device::HandlingMode;
use rch_experiments::ablation;
use rchdroid::RchOptions;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", ablation::run().render());

    let arms: [(&str, HandlingMode); 4] = [
        ("full", HandlingMode::rchdroid_default()),
        (
            "no_coin_flip",
            HandlingMode::rchdroid_ablated(RchOptions {
                coin_flip: false,
                ..RchOptions::default()
            }),
        ),
        (
            "no_lazy_migration",
            HandlingMode::rchdroid_ablated(RchOptions {
                lazy_migration: false,
                ..RchOptions::default()
            }),
        ),
        (
            "no_gc",
            HandlingMode::RchDroid(ablation::gc_disabled(), RchOptions::default()),
        ),
    ];
    let mut group = c.benchmark_group("ablation");
    for (label, mode) in arms {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &m| {
            b.iter(|| black_box(ablation::run_arm("bench", m)));
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
