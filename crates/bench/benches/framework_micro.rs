//! Micro-benches of the framework substrate itself: the operations whose
//! costs the paper's patch touches (inflation, hierarchy save/restore,
//! mapping build, lazy migration, coin-flip search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use droidsim_kernel::SimTime;
use droidsim_view::{ViewKind, ViewOp, ViewTree};
use rchdroid::MigrationEngine;
use std::hint::black_box;

fn tree_with(n: usize) -> ViewTree {
    let mut t = ViewTree::new();
    let root = t
        .add_view(t.root(), ViewKind::LinearLayout, Some("root"))
        .unwrap();
    for i in 0..n {
        t.add_view(root, ViewKind::ImageView, Some(&format!("v{i}")))
            .unwrap();
    }
    t
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("framework_micro");
    for n in [16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::new("hierarchy_save", n), &n, |b, &n| {
            let mut t = tree_with(n);
            let ids = t.iter_ids();
            for id in &ids[2..] {
                t.apply(*id, ViewOp::SetDrawable("x.png".into(), 64))
                    .unwrap();
            }
            b.iter(|| black_box(t.save_hierarchy_state()));
        });
        group.bench_with_input(BenchmarkId::new("mapping_build", n), &n, |b, &n| {
            b.iter_batched(
                || (tree_with(n), tree_with(n), MigrationEngine::new()),
                |(mut shadow, mut sunny, mut engine)| {
                    black_box(engine.build_mapping(&mut shadow, &mut sunny))
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("lazy_migration", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut shadow = tree_with(n);
                    let mut sunny = tree_with(n);
                    let mut engine = MigrationEngine::new();
                    engine.build_mapping(&mut shadow, &mut sunny);
                    for i in 0..n {
                        let v = shadow.find_by_id_name(&format!("v{i}")).unwrap();
                        shadow
                            .apply(v, ViewOp::SetDrawable("new.png".into(), 64))
                            .unwrap();
                    }
                    (shadow, sunny, engine)
                },
                |(mut shadow, mut sunny, mut engine)| {
                    black_box(
                        engine
                            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
                            .unwrap(),
                    )
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
