//! Micro-benches of the framework substrate itself: the operations whose
//! costs the paper's patch touches (inflation, hierarchy save/restore,
//! mapping build, lazy migration, coin-flip search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use droidsim_config::{Configuration, Orientation, UiMode};
use droidsim_kernel::{memo, SimTime};
use droidsim_resources::{Qualifiers, ResourceTable, ResourceValue};
use droidsim_view::{ViewKind, ViewOp, ViewTree};
use rchdroid::MigrationEngine;
use std::hint::black_box;

fn tree_with(n: usize) -> ViewTree {
    let mut t = ViewTree::new();
    let root = t
        .add_view(t.root(), ViewKind::LinearLayout, Some("root"))
        .unwrap();
    for i in 0..n {
        t.add_view(root, ViewKind::ImageView, Some(&format!("v{i}")))
            .unwrap();
    }
    t
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("framework_micro");
    for n in [16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::new("hierarchy_save", n), &n, |b, &n| {
            let mut t = tree_with(n);
            let ids = t.iter_ids();
            for id in &ids[2..] {
                t.apply(*id, ViewOp::SetDrawable("x.png".into(), 64))
                    .unwrap();
            }
            b.iter(|| black_box(t.save_hierarchy_state()));
        });
        group.bench_with_input(BenchmarkId::new("mapping_build", n), &n, |b, &n| {
            b.iter_batched(
                || (tree_with(n), tree_with(n), MigrationEngine::new()),
                |(mut shadow, mut sunny, mut engine)| {
                    black_box(engine.build_mapping(&mut shadow, &mut sunny))
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("lazy_migration", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut shadow = tree_with(n);
                    let mut sunny = tree_with(n);
                    let mut engine = MigrationEngine::new();
                    engine.build_mapping(&mut shadow, &mut sunny);
                    for i in 0..n {
                        let v = shadow.find_by_id_name(&format!("v{i}")).unwrap();
                        shadow
                            .apply(v, ViewOp::SetDrawable("new.png".into(), 64))
                            .unwrap();
                    }
                    (shadow, sunny, engine)
                },
                |(mut shadow, mut sunny, mut engine)| {
                    black_box(
                        engine
                            .migrate_invalidations(&mut shadow, &mut sunny, SimTime::ZERO)
                            .unwrap(),
                    )
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }

    // The resolution cold path: `put` keeps each name's variants in
    // descending-specificity order, so a cold resolve is a first-match
    // scan instead of a full max-by-specificity pass. Measured with the
    // memo cache off so the arm times the scan itself, not a cache hit.
    for names in [8usize, 64] {
        group.bench_with_input(
            BenchmarkId::new("resource_resolve_cold", names),
            &names,
            |b, &names| {
                let mut table = ResourceTable::new();
                for i in 0..names {
                    let name = format!("s{i}");
                    table.put(
                        &name,
                        Qualifiers::any(),
                        ResourceValue::String(format!("v{i}")),
                    );
                    table.put(
                        &name,
                        Qualifiers::any().with_orientation(Orientation::Landscape),
                        ResourceValue::String(format!("v{i}-land")),
                    );
                    table.put(
                        &name,
                        Qualifiers::any().with_ui_mode(UiMode::Night),
                        ResourceValue::String(format!("v{i}-night")),
                    );
                    table.put(
                        &name,
                        Qualifiers::any().with_min_smallest_width(600),
                        ResourceValue::String(format!("v{i}-sw600")),
                    );
                }
                let portrait = Configuration::phone_portrait();
                let landscape = Configuration::phone_landscape();
                memo::set_enabled(false);
                b.iter(|| {
                    let mut hits = 0usize;
                    for i in 0..names {
                        let name = format!("s{i}");
                        hits += usize::from(table.resolve_string(&name, &portrait).is_some());
                        hits += usize::from(table.resolve_string(&name, &landscape).is_some());
                    }
                    black_box(hits)
                });
                memo::set_enabled(true);
            },
        );
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
