//! Table 3: effectiveness on the TP-27 set.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let table = rch_experiments::table3::run();
    println!("{}", table.render());
    assert_eq!(table.fixed_count(), 25, "the paper's 25/27");

    c.bench_function("table3_full_27_app_study", |b| {
        b.iter(|| black_box(rch_experiments::table3::run().fixed_count()));
    });
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
