//! The fleet driver itself: one top-100 sample simulated serially and
//! with 2/4/8 workers. Every worker count must reduce to the identical
//! digest — the bench asserts that before timing anything — so the only
//! difference between the arms is wall-clock, never results.
//!
//! On a single-core machine the parallel arms degenerate to roughly the
//! serial cost plus scheduling overhead; on an N-core runner the 4-way
//! arm is the headline number for the speedup criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use droidsim_analysis::{analyze_specs, Suppressions};
use droidsim_config::{Configuration, Orientation, UiMode};
use droidsim_device::HandlingMode;
use droidsim_fleet::{
    combine_ordered, run_fleet, run_fleet_reduce, run_fleet_supervised, Digest, FleetConfig,
    FleetOptions, TaskCtx,
};
use droidsim_kernel::memo;
use droidsim_resources::{LayoutNode, LayoutTemplate, Qualifiers, ResourceTable, ResourceValue};
use rch_experiments::{run_app, RunConfig};
use rch_workloads::{dataloss_specs, top100_sample, GenericAppSpec};
use rchdroid::MigrationEngine;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sample size: enough devices that partitioning matters, small enough
/// that a bench iteration stays under a second.
const APPS: usize = 12;

/// One sample app under both handling modes, digested.
fn app_digest(_ctx: TaskCtx, spec: &GenericAppSpec) -> u64 {
    let stock = run_app(spec, &RunConfig::new(HandlingMode::Android10));
    let rch = run_app(spec, &RunConfig::new(HandlingMode::rchdroid_default()));
    let mut d = Digest::new();
    d.write_str(&spec.name);
    d.write_f64(stock.mean_latency_ms());
    d.write_f64(rch.mean_latency_ms());
    d.write_f64(stock.memory_mib);
    d.write_f64(rch.memory_mib);
    d.finish()
}

/// Simulates the sample under both handling modes through the streaming
/// reducer: per-chunk local folds, one atomic merge per chunk, no
/// ordered result draining. This is the hot arm the scaling criterion
/// (jobs=8 ≤ 0.5× jobs=1) is judged on.
fn simulate(cfg: &FleetConfig, sample: &[GenericAppSpec]) -> u64 {
    run_fleet_reduce(cfg, sample, app_digest)
}

/// The legacy collect-then-fold reduction, kept as the oracle the
/// streaming arm must agree with at every worker count.
fn simulate_ordered(cfg: &FleetConfig, sample: &[GenericAppSpec]) -> u64 {
    combine_ordered(run_fleet(cfg, sample.to_vec(), |ctx, spec| {
        app_digest(ctx, &spec)
    }))
}

/// The same sample through the supervised runner at zero fault rate:
/// what the crash-safety envelope (catch_unwind per attempt, outcome
/// slots, ledger fold) costs when nothing goes wrong. No journal — disk
/// fsync is a deliberate per-checkpoint cost, not runner overhead.
fn simulate_supervised(cfg: &FleetConfig, opts: &FleetOptions, sample: &[GenericAppSpec]) -> u64 {
    run_fleet_supervised(
        cfg,
        opts,
        sample.to_vec(),
        |ctx, spec| app_digest(ctx, &spec),
        |d| *d,
    )
    .unwrap()
    .combined_digest()
    .unwrap()
}

/// Devices in the memo arms' fleet. The timed arms run serially
/// (jobs=1) so the warm/cold ratio is a pure cache effect — the
/// per-call thread-spawn constant of a multi-worker fleet would dilute
/// the ratio without exercising the caches any harder. Cross-worker
/// cache sharing is covered by the jobs=4 digest assertion before any
/// timing starts.
const MEMO_DEVICES: usize = 16;
const MEMO_JOBS: usize = 1;
const MEMO_SHARED_JOBS: usize = 4;

/// Resource table the memo workload resolves against, shaped like a
/// real multi-config APK: every string has a default and a landscape
/// variant (so the resolved view depends on the configuration bucket)
/// plus a pile of higher-specificity variants — locales, smallest-width
/// buckets, night mode — that a phone config never matches but a cold
/// resolution must scan past every single time.
fn memo_table() -> ResourceTable {
    let mut t = ResourceTable::new();
    for i in 0..8 {
        let name = format!("s{i}");
        for lang in ["de", "fr", "ja", "pt", "es", "it", "ru", "zh"] {
            t.put(
                &name,
                Qualifiers::any().with_language(lang),
                ResourceValue::String(format!("str-{i}-{lang}")),
            );
        }
        for sw in [600, 720, 840, 960] {
            t.put(
                &name,
                Qualifiers::any().with_min_smallest_width(sw),
                ResourceValue::String(format!("str-{i}-sw{sw}")),
            );
        }
        t.put(
            &name,
            Qualifiers::any().with_ui_mode(UiMode::Night),
            ResourceValue::String(format!("str-{i}-night")),
        );
        t.put(
            &name,
            Qualifiers::any().with_orientation(Orientation::Landscape),
            ResourceValue::String(format!("str-{i}-land")),
        );
        t.put(
            &name,
            Qualifiers::any(),
            ResourceValue::String(format!("str-{i}")),
        );
        let drawable = format!("d{i}");
        t.put(
            &drawable,
            Qualifiers::any().with_ui_mode(UiMode::Night),
            ResourceValue::Drawable {
                name: format!("d{i}-night.png"),
                bytes_hint: 4 << 10,
            },
        );
        for sw in [600, 840] {
            t.put(
                &drawable,
                Qualifiers::any().with_min_smallest_width(sw),
                ResourceValue::Drawable {
                    name: format!("d{i}-sw{sw}.png"),
                    bytes_hint: 8 << 10,
                },
            );
        }
        t.put(
            &drawable,
            Qualifiers::any(),
            ResourceValue::Drawable {
                name: format!("d{i}.png"),
                bytes_hint: 4 << 10,
            },
        );
    }
    t
}

/// A 241-node resolution-heavy layout: every row resolves two strings
/// and two drawables, so a cold inflation pays 192 table resolutions
/// where a warm one pays one key digest and a tree clone. `tag` varies
/// the template content: a fixed tag is the repeated-shape workload
/// (every device inflates the same template), a fresh tag per call
/// defeats the caches on purpose.
fn memo_template(tag: u64) -> LayoutTemplate {
    let mut root = LayoutNode::new("LinearLayout").with_id("root");
    for i in 0..48 {
        root = root.with_child(
            LayoutNode::new("LinearLayout")
                .with_id(&format!("row{i}"))
                .with_child(
                    LayoutNode::new("TextView")
                        .with_id(&format!("t{i}"))
                        .with_attr("text", &format!("@string/s{}", i % 8))
                        .with_attr("tag", &tag.to_string()),
                )
                .with_child(
                    LayoutNode::new("TextView")
                        .with_id(&format!("sub{i}"))
                        .with_attr("text", &format!("@string/s{}", (i + 3) % 8)),
                )
                .with_child(
                    LayoutNode::new("ImageView")
                        .with_id(&format!("img{i}"))
                        .with_attr("src", &format!("@drawable/d{}", i % 8)),
                )
                .with_child(
                    LayoutNode::new("ImageView")
                        .with_id(&format!("badge{i}"))
                        .with_attr("src", &format!("@drawable/d{}", (i + 5) % 8)),
                ),
        );
    }
    LayoutTemplate::new("memo_bench", root)
}

/// One device of the warm-path workload: inflate the template twice
/// (shadow + sunny instance), resolve through the table, build the
/// essence mapping between them — exactly the three memoized
/// derivations — and digest everything observable.
fn memo_device(index: usize, template: &LayoutTemplate, table: &ResourceTable) -> u64 {
    let config = if index.is_multiple_of(2) {
        Configuration::phone_portrait()
    } else {
        Configuration::phone_landscape()
    };
    let (mut shadow, stats) = droidsim_view::inflate(template, table, &config);
    let (mut sunny, _) = droidsim_view::inflate(template, table, &config);
    let mut engine = MigrationEngine::new();
    let mapped = engine.build_mapping(&mut shadow, &mut sunny);
    let mut d = Digest::new();
    d.write_u64(stats.views_created as u64);
    d.write_u64(stats.drawable_bytes);
    d.write_u64(stats.strings_resolved as u64);
    d.write_u64(mapped as u64);
    d.write_str(
        table
            .resolve_string(&format!("s{}", index % 8), &config)
            .unwrap_or("<missing>"),
    );
    d.finish()
}

/// The repeated-shape fleet: every device inflates the same template,
/// so once the touch-counted admission warms up, the steady state is
/// all cache hits.
fn memo_fleet_jobs(jobs: usize, template: &LayoutTemplate, table: &ResourceTable) -> u64 {
    run_fleet_reduce(
        &FleetConfig::new(jobs, 0),
        &(0..MEMO_DEVICES).collect::<Vec<_>>(),
        |_ctx, &i| memo_device(i, template, table),
    )
}

fn memo_fleet(template: &LayoutTemplate, table: &ResourceTable) -> u64 {
    memo_fleet_jobs(MEMO_JOBS, template, table)
}

/// The unique-shape fleet: a fresh template per *device*, so no inflate
/// key is ever probed more than the one shadow + sunny pair that owns
/// it. This is the admission policy's worst case on purpose — under the
/// inflater's three-touch admission both touches are tombstones (key
/// digest only, both inflates build cold, nothing is published). Only the
/// attribute content varies: the id structure is shared, so the mapping
/// plan is still content-addressed to the same shape — that hit is the
/// design working, not a leak in the workload.
fn memo_fleet_unique(nonce: &AtomicU64, table: &ResourceTable) -> u64 {
    let templates: Vec<LayoutTemplate> = (0..MEMO_DEVICES)
        .map(|_| memo_template(nonce.fetch_add(1, Ordering::Relaxed)))
        .collect();
    run_fleet_reduce(
        &FleetConfig::new(MEMO_JOBS, 0),
        &(0..MEMO_DEVICES).collect::<Vec<_>>(),
        |_ctx, &i| memo_device(i, &templates[i], table),
    )
}

/// The warm-path cache arms: `memo/warm` vs `memo/cold` is the ≥1.5×
/// speedup criterion on a repeated-shape fleet; `memo/unique` vs
/// `memo/unique_cold` is the no-regression criterion when nothing ever
/// repeats. The memo ≡ cold digest identity is asserted before any
/// timing.
fn bench_memo(c: &mut Criterion) {
    let table = memo_table();
    let template = memo_template(0);
    memo::set_enabled(false);
    let cold_digest = memo_fleet(&template, &table);
    memo::set_enabled(true);
    assert_eq!(
        memo_fleet(&template, &table),
        cold_digest,
        "memoized fleet digest diverged from the cold run"
    );
    assert_eq!(
        memo_fleet_jobs(MEMO_SHARED_JOBS, &template, &table),
        cold_digest,
        "memoized fleet digest diverged when workers share the caches"
    );

    let mut group = c.benchmark_group("fleet_parallel");
    group.bench_function("memo/warm", |b| {
        memo::set_enabled(true);
        b.iter(|| black_box(memo_fleet(&template, &table)));
    });
    group.bench_function("memo/cold", |b| {
        memo::set_enabled(false);
        b.iter(|| black_box(memo_fleet(&template, &table)));
        memo::set_enabled(true);
    });
    let nonce = AtomicU64::new(1);
    group.bench_function("memo/unique", |b| {
        memo::set_enabled(true);
        b.iter(|| black_box(memo_fleet_unique(&nonce, &table)));
    });
    group.bench_function("memo/unique_cold", |b| {
        memo::set_enabled(false);
        b.iter(|| black_box(memo_fleet_unique(&nonce, &table)));
        memo::set_enabled(true);
    });
    group.finish();
}

/// The analyzer's fleet throughput over the whole generated data-loss
/// corpus (`rchlint --corpus dataloss`): shape extraction (memoized),
/// the twelve lint passes and the three-mode verdicts for every app,
/// folded into the corpus report. Serial vs 8-way is the
/// `rchlint_throughput` scaling pair the bench gate tracks; the digest
/// identity across worker counts is asserted before any timing.
fn bench_rchlint(c: &mut Criterion) {
    let corpus = dataloss_specs();
    let allow = Suppressions::none();
    let analyze = |jobs: usize| analyze_specs(&corpus, &FleetConfig::new(jobs, 0), &allow);
    let serial_digest = analyze(1).digest();
    for jobs in [4usize, 8] {
        assert_eq!(
            analyze(jobs).digest(),
            serial_digest,
            "rchlint digest diverged at jobs={jobs}"
        );
    }
    let mut group = c.benchmark_group("fleet_parallel");
    for jobs in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("rchlint_throughput/jobs", jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| black_box(analyze(jobs).digest()));
            },
        );
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    let sample = top100_sample(APPS);
    let serial = simulate(&FleetConfig::new(1, 0), &sample);
    let serial_ordered = simulate_ordered(&FleetConfig::new(1, 0), &sample);
    let opts = FleetOptions::new();
    let mut group = c.benchmark_group("fleet_parallel");
    for jobs in [1usize, 2, 4, 8] {
        // Digest identity is the contract: any worker count must
        // reproduce the serial reduction bit for bit — on both the
        // streaming (unordered, index-tagged) and the legacy ordered
        // path.
        assert_eq!(
            simulate(&FleetConfig::new(jobs, 0), &sample),
            serial,
            "jobs={jobs} diverged from the serial streaming digest"
        );
        assert_eq!(
            simulate_ordered(&FleetConfig::new(jobs, 0), &sample),
            serial_ordered,
            "jobs={jobs} diverged from the serial ordered digest"
        );
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            let cfg = FleetConfig::new(jobs, 0);
            b.iter(|| black_box(simulate(&cfg, &sample)));
        });

        // Crash-recovery overhead: the supervised runner at 0 % faults
        // must stay within a few percent of the plain driver (<5 %
        // against the matching fleet_parallel/jobs arm). Each pair is
        // measured back to back so host drift over the bench run cannot
        // masquerade as runner overhead; the jobs=1 pair is the
        // meaningful one on small runners, where the multi-worker arms
        // are dominated by scheduler noise.
        if jobs == 1 || jobs == 4 {
            assert_eq!(
                simulate_supervised(&FleetConfig::new(jobs, 0), &opts, &sample),
                serial_ordered,
                "the supervised runner diverged from the plain digest at jobs={jobs}"
            );
            group.bench_with_input(
                BenchmarkId::new("fleet_crash_recovery/jobs", jobs),
                &jobs,
                |b, &jobs| {
                    let cfg = FleetConfig::new(jobs, 0);
                    b.iter(|| black_box(simulate_supervised(&cfg, &opts, &sample)));
                },
            );
        }
    }
    group.finish();
}

fn fast() -> Criterion {
    // Longer windows than the other benches: the plain-vs-supervised
    // overhead comparison needs the per-arm means stable to a few
    // percent, which 800 ms windows cannot deliver on a busy host.
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(2_500))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench, bench_memo, bench_rchlint
}
criterion_main!(benches);
