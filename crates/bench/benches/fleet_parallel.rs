//! The fleet driver itself: one top-100 sample simulated serially and
//! with 2/4/8 workers. Every worker count must reduce to the identical
//! digest — the bench asserts that before timing anything — so the only
//! difference between the arms is wall-clock, never results.
//!
//! On a single-core machine the parallel arms degenerate to roughly the
//! serial cost plus scheduling overhead; on an N-core runner the 4-way
//! arm is the headline number for the speedup criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use droidsim_device::HandlingMode;
use droidsim_fleet::{
    combine_ordered, run_fleet, run_fleet_reduce, run_fleet_supervised, Digest, FleetConfig,
    FleetOptions, TaskCtx,
};
use rch_experiments::{run_app, RunConfig};
use rch_workloads::{top100_sample, GenericAppSpec};
use std::hint::black_box;

/// Sample size: enough devices that partitioning matters, small enough
/// that a bench iteration stays under a second.
const APPS: usize = 12;

/// One sample app under both handling modes, digested.
fn app_digest(_ctx: TaskCtx, spec: &GenericAppSpec) -> u64 {
    let stock = run_app(spec, &RunConfig::new(HandlingMode::Android10));
    let rch = run_app(spec, &RunConfig::new(HandlingMode::rchdroid_default()));
    let mut d = Digest::new();
    d.write_str(&spec.name);
    d.write_f64(stock.mean_latency_ms());
    d.write_f64(rch.mean_latency_ms());
    d.write_f64(stock.memory_mib);
    d.write_f64(rch.memory_mib);
    d.finish()
}

/// Simulates the sample under both handling modes through the streaming
/// reducer: per-chunk local folds, one atomic merge per chunk, no
/// ordered result draining. This is the hot arm the scaling criterion
/// (jobs=8 ≤ 0.5× jobs=1) is judged on.
fn simulate(cfg: &FleetConfig, sample: &[GenericAppSpec]) -> u64 {
    run_fleet_reduce(cfg, sample, app_digest)
}

/// The legacy collect-then-fold reduction, kept as the oracle the
/// streaming arm must agree with at every worker count.
fn simulate_ordered(cfg: &FleetConfig, sample: &[GenericAppSpec]) -> u64 {
    combine_ordered(run_fleet(cfg, sample.to_vec(), |ctx, spec| {
        app_digest(ctx, &spec)
    }))
}

/// The same sample through the supervised runner at zero fault rate:
/// what the crash-safety envelope (catch_unwind per attempt, outcome
/// slots, ledger fold) costs when nothing goes wrong. No journal — disk
/// fsync is a deliberate per-checkpoint cost, not runner overhead.
fn simulate_supervised(cfg: &FleetConfig, opts: &FleetOptions, sample: &[GenericAppSpec]) -> u64 {
    run_fleet_supervised(
        cfg,
        opts,
        sample.to_vec(),
        |ctx, spec| app_digest(ctx, &spec),
        |d| *d,
    )
    .unwrap()
    .combined_digest()
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let sample = top100_sample(APPS);
    let serial = simulate(&FleetConfig::new(1, 0), &sample);
    let serial_ordered = simulate_ordered(&FleetConfig::new(1, 0), &sample);
    let opts = FleetOptions::new();
    let mut group = c.benchmark_group("fleet_parallel");
    for jobs in [1usize, 2, 4, 8] {
        // Digest identity is the contract: any worker count must
        // reproduce the serial reduction bit for bit — on both the
        // streaming (unordered, index-tagged) and the legacy ordered
        // path.
        assert_eq!(
            simulate(&FleetConfig::new(jobs, 0), &sample),
            serial,
            "jobs={jobs} diverged from the serial streaming digest"
        );
        assert_eq!(
            simulate_ordered(&FleetConfig::new(jobs, 0), &sample),
            serial_ordered,
            "jobs={jobs} diverged from the serial ordered digest"
        );
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            let cfg = FleetConfig::new(jobs, 0);
            b.iter(|| black_box(simulate(&cfg, &sample)));
        });

        // Crash-recovery overhead: the supervised runner at 0 % faults
        // must stay within a few percent of the plain driver (<5 %
        // against the matching fleet_parallel/jobs arm). Each pair is
        // measured back to back so host drift over the bench run cannot
        // masquerade as runner overhead; the jobs=1 pair is the
        // meaningful one on small runners, where the multi-worker arms
        // are dominated by scheduler noise.
        if jobs == 1 || jobs == 4 {
            assert_eq!(
                simulate_supervised(&FleetConfig::new(jobs, 0), &opts, &sample),
                serial_ordered,
                "the supervised runner diverged from the plain digest at jobs={jobs}"
            );
            group.bench_with_input(
                BenchmarkId::new("fleet_crash_recovery/jobs", jobs),
                &jobs,
                |b, &jobs| {
                    let cfg = FleetConfig::new(jobs, 0);
                    b.iter(|| black_box(simulate_supervised(&cfg, &opts, &sample)));
                },
            );
        }
    }
    group.finish();
}

fn fast() -> Criterion {
    // Longer windows than the other benches: the plain-vs-supervised
    // overhead comparison needs the per-arm means stable to a few
    // percent, which 800 ms windows cannot deliver on a busy host.
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(2_500))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
