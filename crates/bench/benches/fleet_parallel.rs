//! The fleet driver itself: one top-100 sample simulated serially and
//! with 2/4/8 workers. Every worker count must reduce to the identical
//! digest — the bench asserts that before timing anything — so the only
//! difference between the arms is wall-clock, never results.
//!
//! On a single-core machine the parallel arms degenerate to roughly the
//! serial cost plus scheduling overhead; on an N-core runner the 4-way
//! arm is the headline number for the speedup criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use droidsim_device::HandlingMode;
use droidsim_fleet::{combine_ordered, run_fleet, Digest, FleetConfig};
use rch_experiments::{run_app, RunConfig};
use rch_workloads::top100_sample;
use std::hint::black_box;

/// Sample size: enough devices that partitioning matters, small enough
/// that a bench iteration stays under a second.
const APPS: usize = 12;

/// Simulates the sample under both handling modes and reduces the
/// per-app digests in item order.
fn simulate(cfg: &FleetConfig) -> u64 {
    let digests = run_fleet(cfg, top100_sample(APPS), |_ctx, spec| {
        let stock = run_app(&spec, &RunConfig::new(HandlingMode::Android10));
        let rch = run_app(&spec, &RunConfig::new(HandlingMode::rchdroid_default()));
        let mut d = Digest::new();
        d.write_str(&spec.name);
        d.write_f64(stock.mean_latency_ms());
        d.write_f64(rch.mean_latency_ms());
        d.write_f64(stock.memory_mib);
        d.write_f64(rch.memory_mib);
        d.finish()
    });
    combine_ordered(digests)
}

fn bench(c: &mut Criterion) {
    let serial = simulate(&FleetConfig::new(1, 0));
    let mut group = c.benchmark_group("fleet_parallel");
    for jobs in [1usize, 2, 4, 8] {
        // Digest identity is the contract: any worker count must
        // reproduce the serial reduction bit for bit.
        assert_eq!(
            simulate(&FleetConfig::new(jobs, 0)),
            serial,
            "jobs={jobs} diverged from the serial digest"
        );
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            let cfg = FleetConfig::new(jobs, 0);
            b.iter(|| black_box(simulate(&cfg)))
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
