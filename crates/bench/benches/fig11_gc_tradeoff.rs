//! Fig. 11: the GC THRESH_T trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fig = rch_experiments::fig11::run();
    println!("{}", fig.render());

    let mut group = c.benchmark_group("fig11_gc_tradeoff");
    for thresh in [10u64, 50] {
        group.bench_with_input(
            BenchmarkId::new("ten_minute_run", thresh),
            &thresh,
            |b, &t| b.iter(|| black_box(rch_experiments::fig11::run_one(t))),
        );
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
