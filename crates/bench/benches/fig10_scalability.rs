//! Fig. 10: handling time and migration time vs view count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fig = rch_experiments::fig10::run();
    println!("{}", fig.render());

    let mut group = c.benchmark_group("fig10_scalability");
    for views in rch_workloads::view_sweep() {
        group.bench_with_input(BenchmarkId::new("android10", views), &views, |b, &v| {
            b.iter(|| black_box(rch_bench::one_stock_change(v)));
        });
        group.bench_with_input(BenchmarkId::new("rchdroid_init", views), &views, |b, &v| {
            b.iter(|| black_box(rch_bench::one_rchdroid_init(v)));
        });
        group.bench_with_input(BenchmarkId::new("rchdroid_flip", views), &views, |b, &v| {
            b.iter(|| black_box(rch_bench::one_rchdroid_flip(v)));
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
