//! Robustness overhead: the supervised change-handling path under
//! injected fault rates of 0 %, 5 % and 20 %.
//!
//! The 0 % row prices the supervision machinery itself (probe counters,
//! the `catch_unwind` boundary, the watchdog's batch pricing) against
//! PR 1's unsupervised path; the 5 % and 20 % rows add the ladder's
//! recovery work — per-view containment on the flush path and full
//! stock-restart fallbacks on the change path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use droidsim_app::SimpleApp;
use droidsim_device::{Device, HandlingMode};
use droidsim_faults::FaultPlan;
use droidsim_kernel::SimDuration;
use std::hint::black_box;

/// The paper's benchmark app view count (Fig. 7/8/10).
const VIEWS: usize = 27;
/// Rotations (with an async task in flight) per measured run.
const CHANGES: usize = 6;

/// One full scripted run: launch, async task, `CHANGES` rotations with
/// deliveries pumped between them. Returns the fault ledger totals so
/// the work cannot be optimised away.
fn run(rate: f64, seed: u64) -> (u64, u64) {
    let mut d = Device::new(HandlingMode::rchdroid_default());
    let app = SimpleApp::with_views(VIEWS);
    let task = app.button_task();
    let c = d
        .install_and_launch(Box::new(app), 40 << 20, 1.0)
        .expect("launch");
    d.arm_faults(&c, FaultPlan::seeded(seed).with_rate_everywhere(rate))
        .expect("arm");
    d.start_async_on_foreground(task).expect("press");
    for _ in 0..CHANGES {
        let _ = d.rotate();
        d.advance(SimDuration::from_secs(2));
    }
    let m = d.fault_metrics(&c).expect("metrics");
    (m.contained_per_view, m.fallback_restarts)
}

fn bench_fault_rates(c: &mut Criterion) {
    let mut group = c.benchmark_group("robustness_faults");
    for &(label, rate) in &[("0pct", 0.0), ("5pct", 0.05), ("20pct", 0.20)] {
        group.bench_with_input(
            BenchmarkId::new("change_scenario", label),
            &rate,
            |b, &rate| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    black_box(run(black_box(rate), seed))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fault_rates);
criterion_main!(benches);
