//! Table 5 + Fig. 14 summaries: the Google-Play top-100 study.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let study = rch_experiments::table5::run();
    println!("{}", study.render());
    assert_eq!(study.issue_count(), 63);
    assert_eq!(study.fixed_count(), 59);

    let mut group = c.benchmark_group("table5_study");
    group.bench_function("full_100_app_study", |b| {
        b.iter(|| black_box(rch_experiments::table5::run().fixed_count()));
    });
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
