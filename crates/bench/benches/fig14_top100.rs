//! Fig. 14: handling time and memory across the top-100 set.

use criterion::{criterion_group, criterion_main, Criterion};
use droidsim_device::HandlingMode;
use rch_experiments::{run_app, RunConfig};
use rch_workloads::top100_specs;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // The full study is printed by the table5_study bench; here we track
    // the per-app cost of the heavy (large-app) scenario.
    let spec = top100_specs().swap_remove(27); // Twitter
    let mut group = c.benchmark_group("fig14_top100");
    group.bench_function("android10_large_app", |b| {
        b.iter(|| black_box(run_app(&spec, &RunConfig::new(HandlingMode::Android10))));
    });
    group.bench_function("rchdroid_large_app", |b| {
        b.iter(|| {
            black_box(run_app(
                &spec,
                &RunConfig::new(HandlingMode::rchdroid_default()),
            ))
        });
    });
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
