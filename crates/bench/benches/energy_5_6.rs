//! §5.6: the board-power measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let study = rch_experiments::energy::run();
    println!("{}", study.render());

    c.bench_function("energy_27_app_study", |b| {
        b.iter(|| black_box(rch_experiments::energy::run().rows.len()));
    });
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
