//! Eager vs. batched lazy migration under the Fig. 10 workload shape:
//! the paper's 27-view benchmark app with a chatty async task that
//! invalidates every view several times before the frame deadline.
//!
//! Eager mode pays one `copy_essence` per delivered invalidation;
//! the batched fast path coalesces repeated invalidations of the same
//! view in the dirty queue and drains each view once at flush time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use droidsim_kernel::{SimDuration, SimTime};
use droidsim_view::{ViewKind, ViewOp, ViewTree};
use rchdroid::{FlushPolicy, MigrationEngine};
use std::hint::black_box;

/// The paper's benchmark app view count (Fig. 7/8/10).
const VIEWS: usize = 27;
/// Invalidation rounds per view before the flush deadline.
const ROUNDS: usize = 8;

fn tree_with(n: usize) -> ViewTree {
    let mut t = ViewTree::new();
    let root = t
        .add_view(t.root(), ViewKind::LinearLayout, Some("root"))
        .unwrap();
    for i in 0..n {
        t.add_view(root, ViewKind::ImageView, Some(&format!("v{i}")))
            .unwrap();
    }
    t
}

struct Rig {
    shadow: ViewTree,
    sunny: ViewTree,
    engine: MigrationEngine,
    ids: Vec<droidsim_view::ViewId>,
    frames: Vec<String>,
}

fn coupled(policy: FlushPolicy) -> Rig {
    let mut shadow = tree_with(VIEWS);
    let mut sunny = tree_with(VIEWS);
    let mut engine = MigrationEngine::with_flush_policy(policy);
    // The checker replays the whole batch eagerly — benchmark the
    // production path, not the debug oracle.
    engine.set_equivalence_checking(false);
    engine.build_mapping(&mut shadow, &mut sunny);
    // Pre-resolve lookups so the measured loop is invalidation +
    // migration, not string formatting.
    let ids = (0..VIEWS)
        .map(|i| shadow.find_by_id_name(&format!("v{i}")).unwrap())
        .collect();
    let frames = (0..ROUNDS).map(|r| format!("frame_{r}.png")).collect();
    Rig {
        shadow,
        sunny,
        engine,
        ids,
        frames,
    }
}

/// One "delivery": every view is invalidated once, then the engine sees
/// the invalidations. Repeated `ROUNDS` times, ending with a flush so
/// the batched variant does its (single) drain inside the measurement.
fn chatty_task(rig: &mut Rig) -> usize {
    let mut migrated = 0;
    for round in 0..ROUNDS {
        for &v in &rig.ids {
            rig.shadow
                .apply(v, ViewOp::SetDrawable(rig.frames[round].clone(), 64))
                .unwrap();
        }
        let now = SimTime::ZERO + SimDuration::from_millis(round as u64);
        migrated += rig
            .engine
            .migrate_invalidations(&mut rig.shadow, &mut rig.sunny, now)
            .unwrap()
            .migrated;
    }
    migrated += rig
        .engine
        .flush(&mut rig.shadow, &mut rig.sunny)
        .unwrap()
        .migrated;
    migrated
}

fn bench(c: &mut Criterion) {
    // Headline comparison printed like the figure benches: one run of
    // each mode plus the coalescing counters the batched path records.
    {
        let mut rig = coupled(FlushPolicy::batched(
            VIEWS * ROUNDS,
            SimDuration::from_millis(16),
        ));
        chatty_task(&mut rig);
        println!(
            "migration_batching: {} views x {} rounds -> {}",
            VIEWS,
            ROUNDS,
            rig.engine.metrics()
        );
    }

    let mut group = c.benchmark_group("migration_batching");
    for (name, policy) in [
        ("eager", FlushPolicy::Eager),
        (
            "batched",
            FlushPolicy::batched(VIEWS * ROUNDS, SimDuration::from_millis(16)),
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::new(name, format!("{VIEWS}v x {ROUNDS}r")),
            &policy,
            |b, policy| {
                b.iter_batched(
                    || coupled(*policy),
                    |mut rig| black_box(chatty_task(&mut rig)),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
