//! Fig. 8: per-app memory usage on the TP-27 set.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fig = rch_experiments::fig8::run();
    println!("{}", fig.render());

    c.bench_function("fig08_memory_snapshot", |b| {
        let device = rch_bench::bench_device(droidsim_device::HandlingMode::rchdroid_default(), 16);
        b.iter(|| {
            black_box(
                device
                    .memory_snapshot("com.bench/.Main")
                    .unwrap()
                    .total_mib(),
            )
        });
    });
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
