//! Fig. 7: per-app handling time on the TP-27 set, both systems.
//! The bench runs the full 4-change scenario for a representative app
//! under each system and, once per session, prints the figure's series.

use criterion::{criterion_group, criterion_main, Criterion};
use droidsim_device::HandlingMode;
use rch_experiments::{run_app, RunConfig};
use rch_workloads::tp27_specs;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fig = rch_experiments::fig7::run();
    println!("{}", fig.render());

    let spec = {
        let mut s = tp27_specs().swap_remove(0);
        s.uses_async_task = false;
        s
    };
    let mut group = c.benchmark_group("fig07_handling_time_27");
    group.bench_function("android10_4_changes", |b| {
        b.iter(|| black_box(run_app(&spec, &RunConfig::new(HandlingMode::Android10))));
    });
    group.bench_function("rchdroid_4_changes", |b| {
        b.iter(|| {
            black_box(run_app(
                &spec,
                &RunConfig::new(HandlingMode::rchdroid_default()),
            ))
        });
    });
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
