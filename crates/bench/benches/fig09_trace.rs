//! Fig. 9: CPU/memory trace of the crash-vs-migrate scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use droidsim_device::HandlingMode;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fig = rch_experiments::fig9::run();
    println!("{}", fig.render());

    let mut group = c.benchmark_group("fig09_trace");
    group.bench_function("android10_scripted_timeline", |b| {
        b.iter(|| {
            black_box(rch_experiments::fig9::run_mode(
                HandlingMode::Android10,
                "A10",
            ))
        });
    });
    group.bench_function("rchdroid_scripted_timeline", |b| {
        b.iter(|| {
            black_box(rch_experiments::fig9::run_mode(
                HandlingMode::rchdroid_default(),
                "RCH",
            ))
        });
    });
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
