//! Fig. 12 + Table 4: the RuntimeDroid comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use droidsim_device::HandlingMode;
use rch_experiments::{run_app, RunConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fig = rch_experiments::fig12::run();
    println!("{}", fig.render());

    let spec = rch_workloads::GenericAppSpec::sized("AlarmKlock", "500K+", false);
    c.bench_function("fig12_runtimedroid_4_changes", |b| {
        b.iter(|| black_box(run_app(&spec, &RunConfig::new(HandlingMode::RuntimeDroid))));
    });
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench
}
criterion_main!(benches);
