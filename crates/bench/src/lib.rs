//! Shared helpers for the Criterion benches.
//!
//! Each bench in `benches/` regenerates one of the paper's tables or
//! figures (the *simulated* latencies are the figures' subject; Criterion
//! additionally measures the wall-clock cost of running each experiment,
//! which is what a CI perf gate would track). The helpers here build the
//! standard devices and scenarios so benches stay declarative.

use droidsim_app::SimpleApp;
use droidsim_device::{ChangeReport, Device, HandlingMode};

/// Builds a device with the benchmark app (`views` ImageViews) launched.
pub fn bench_device(mode: HandlingMode, views: usize) -> Device {
    let mut device = Device::new(mode);
    device
        .install_and_launch(
            Box::new(SimpleApp::with_views(views)),
            rch_workloads::BENCHMARK_BASE_MEMORY,
            1.0,
        )
        .expect("launch succeeds on a fresh device");
    device
}

/// One rotation on a fresh stock device: the Android-10 relaunch path.
pub fn one_stock_change(views: usize) -> ChangeReport {
    bench_device(HandlingMode::Android10, views)
        .rotate()
        .expect("handled")
}

/// One rotation on a fresh RCHDroid device: the init path.
pub fn one_rchdroid_init(views: usize) -> ChangeReport {
    bench_device(HandlingMode::rchdroid_default(), views)
        .rotate()
        .expect("handled")
}

/// Two rotations on a fresh RCHDroid device, returning the second (flip).
pub fn one_rchdroid_flip(views: usize) -> ChangeReport {
    let mut device = bench_device(HandlingMode::rchdroid_default(), views);
    device.rotate().expect("init");
    device.rotate().expect("flip")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_exercise_the_three_paths() {
        use droidsim_device::HandlingPath;
        assert_eq!(one_stock_change(4).path, HandlingPath::Relaunch);
        assert_eq!(one_rchdroid_init(4).path, HandlingPath::RchInit);
        assert_eq!(one_rchdroid_flip(4).path, HandlingPath::RchFlip);
    }
}
