//! Intents and launch flags.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitOrAssign};
use serde::{Deserialize, Serialize};

/// Launch flags carried by an [`Intent`].
///
/// `SUNNY` is RCHDroid's addition (the 4-LoC `Intent` patch of Table 2):
/// it marks an activity-start request as the second half of a runtime
/// change, telling the starter to take the coin-flipping path and to allow
/// a *second* instance of the activity already on top of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct IntentFlags(u32);

impl IntentFlags {
    /// No flags: default launch semantics.
    pub const NONE: IntentFlags = IntentFlags(0);
    /// `FLAG_ACTIVITY_NEW_TASK`.
    pub const NEW_TASK: IntentFlags = IntentFlags(1 << 0);
    /// `FLAG_ACTIVITY_SINGLE_TOP`.
    pub const SINGLE_TOP: IntentFlags = IntentFlags(1 << 1);
    /// `FLAG_ACTIVITY_CLEAR_TOP`.
    pub const CLEAR_TOP: IntentFlags = IntentFlags(1 << 2);
    /// RCHDroid: this start request creates/flips the sunny-state instance
    /// of the current foreground activity.
    pub const SUNNY: IntentFlags = IntentFlags(1 << 3);

    /// Whether every flag in `other` is set.
    pub const fn contains(self, other: IntentFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no flags are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Raw bits.
    pub const fn bits(self) -> u32 {
        self.0
    }
}

impl BitOr for IntentFlags {
    type Output = IntentFlags;

    fn bitor(self, rhs: IntentFlags) -> IntentFlags {
        IntentFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for IntentFlags {
    fn bitor_assign(&mut self, rhs: IntentFlags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for IntentFlags {
    type Output = IntentFlags;

    fn bitand(self, rhs: IntentFlags) -> IntentFlags {
        IntentFlags(self.0 & rhs.0)
    }
}

impl fmt::Display for IntentFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "default");
        }
        let mut parts = Vec::new();
        if self.contains(IntentFlags::NEW_TASK) {
            parts.push("NEW_TASK");
        }
        if self.contains(IntentFlags::SINGLE_TOP) {
            parts.push("SINGLE_TOP");
        }
        if self.contains(IntentFlags::CLEAR_TOP) {
            parts.push("CLEAR_TOP");
        }
        if self.contains(IntentFlags::SUNNY) {
            parts.push("SUNNY");
        }
        write!(f, "{}", parts.join("|"))
    }
}

/// An activity-start request.
///
/// # Examples
///
/// ```
/// use droidsim_atms::{Intent, IntentFlags};
///
/// let intent = Intent::new("com.example/.Main").with_flags(IntentFlags::SUNNY);
/// assert!(intent.flags.contains(IntentFlags::SUNNY));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Intent {
    /// Target component (`package/.Activity`).
    pub component: String,
    /// Launch flags.
    pub flags: IntentFlags,
}

impl Intent {
    /// Creates a default-flag intent for a component.
    pub fn new(component: &str) -> Self {
        Intent {
            component: component.to_owned(),
            flags: IntentFlags::NONE,
        }
    }

    /// Adds launch flags.
    pub fn with_flags(mut self, flags: IntentFlags) -> Self {
        self.flags |= flags;
        self
    }

    /// RCHDroid convenience: the sunny-start intent for a component.
    pub fn sunny(component: &str) -> Self {
        Intent::new(component).with_flags(IntentFlags::SUNNY)
    }
}

impl fmt::Display for Intent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Intent{{{} [{}]}}", self.component, self.flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_compose() {
        let f = IntentFlags::NEW_TASK | IntentFlags::SINGLE_TOP;
        assert!(f.contains(IntentFlags::NEW_TASK));
        assert!(!f.contains(IntentFlags::SUNNY));
        assert_eq!(f.to_string(), "NEW_TASK|SINGLE_TOP");
    }

    #[test]
    fn sunny_constructor_sets_flag() {
        let i = Intent::sunny("a/.B");
        assert!(i.flags.contains(IntentFlags::SUNNY));
        assert_eq!(i.component, "a/.B");
    }

    #[test]
    fn default_flags_display() {
        assert_eq!(Intent::new("x/.Y").flags.to_string(), "default");
    }
}
