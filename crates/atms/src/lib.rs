//! The activity task manager service (ATMS) — the system-server side of
//! activity management.
//!
//! Mirrors the structures of Fig. 2(b): the ATMS owns an *activity stack*
//! of *task records*; each task owns a stack of *activity records*; the
//! topmost record of the topmost task is the foreground interface. The
//! system server controls activity lifecycles through these records and
//! IPCs back to the app's activity thread.
//!
//! The paper's patch touches three classes here (Table 2):
//!
//! * `ActivityRecord` (+11 LoC) — a shadow-state field and accessors, and
//!   `ensureActivityConfiguration` modified to skip the relaunch when
//!   RCHDroid handles the change ([`Atms::ensure_activity_configuration`]
//!   takes the handling mode),
//! * `ActivityStack` (+29 LoC) — [`TaskRecord::find_shadow_activity`],
//! * `ActivityStarter` (+41 LoC) — the coin-flipping start path taken for
//!   intents carrying the new [`IntentFlags::SUNNY`] flag (itself the
//!   +4 LoC `Intent` patch).
//!
//! # Examples
//!
//! ```
//! use droidsim_atms::{Atms, Intent, StartDisposition};
//! use droidsim_config::Configuration;
//!
//! let mut atms = Atms::new(Configuration::phone_portrait());
//! let start = atms.start_activity(&Intent::new("com.example/.Main"));
//! assert!(matches!(start.disposition, StartDisposition::CreatedNew));
//! let record = atms.record(start.record).unwrap();
//! assert_eq!(record.component(), "com.example/.Main");
//! ```

pub mod intent;
pub mod record;
pub mod service;
pub mod stack;

pub use intent::{Intent, IntentFlags};
pub use record::{ActivityRecord, ActivityRecordId, RecordState};
pub use service::{Atms, AtmsError, ConfigDecision, StartDisposition, StartResult};
pub use stack::{ActivityStack, TaskId, TaskRecord};
