//! The ATMS facade: record arena + activity stack + starter logic.

use crate::intent::{Intent, IntentFlags};
use crate::record::{ActivityRecord, ActivityRecordId, RecordState};
use crate::stack::{ActivityStack, TaskId, TaskRecord};
use core::fmt;
use droidsim_config::{ConfigChanges, Configuration};
use droidsim_kernel::{IdGen, SimTime};
use std::collections::BTreeMap;

/// How an activity-start request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartDisposition {
    /// A new record was created and pushed.
    CreatedNew,
    /// The top record already matched (default/SINGLE_TOP semantics);
    /// nothing was created.
    ReusedTop,
    /// RCHDroid coin-flip: an alive shadow record was reordered to the top
    /// and its shadow state removed; the previous top became the shadow.
    FlippedShadow {
        /// The record that just became the shadow-state instance.
        now_shadow: ActivityRecordId,
    },
}

/// The outcome of [`Atms::start_activity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartResult {
    /// The record now at the top of the task (the foreground activity).
    pub record: ActivityRecordId,
    /// Its task.
    pub task: TaskId,
    /// How the request was satisfied.
    pub disposition: StartDisposition,
}

/// `ensureActivityConfiguration`'s verdict for one record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigDecision {
    /// The configurations are identical.
    NoChange,
    /// The app declared it handles every changed axis: deliver
    /// `onConfigurationChanged`, no relaunch.
    HandledByApp(ConfigChanges),
    /// Stock Android: destroy and recreate the activity.
    Relaunch(ConfigChanges),
    /// RCHDroid: the relaunch test is skipped; the change handler will run
    /// the shadow/sunny protocol instead.
    PreventedRelaunch(ConfigChanges),
}

/// ATMS errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtmsError {
    /// No record with this token.
    UnknownRecord(ActivityRecordId),
    /// No task with this id.
    UnknownTask(TaskId),
}

impl fmt::Display for AtmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtmsError::UnknownRecord(r) => write!(f, "unknown activity record {r}"),
            AtmsError::UnknownTask(t) => write!(f, "unknown task {t}"),
        }
    }
}

impl std::error::Error for AtmsError {}

/// The activity task manager service.
///
/// Owns the activity stack and the record arena, and implements the
/// starter logic — including the RCHDroid start path taken for intents
/// carrying [`IntentFlags::SUNNY`].
///
/// # Examples
///
/// ```
/// use droidsim_atms::{Atms, Intent, IntentFlags, StartDisposition};
/// use droidsim_config::Configuration;
/// use droidsim_kernel::SimTime;
///
/// let mut atms = Atms::new(Configuration::phone_portrait());
/// let first = atms.start_activity_at(&Intent::new("app/.Main"), SimTime::ZERO);
/// // A sunny start creates a *second* instance of the same component:
/// let sunny = atms.start_activity_at(&Intent::sunny("app/.Main"), SimTime::from_secs(1));
/// assert!(matches!(sunny.disposition, StartDisposition::CreatedNew));
/// assert!(atms.record(first.record).unwrap().is_shadow());
/// ```
#[derive(Debug, Clone)]
pub struct Atms {
    stack: ActivityStack,
    records: BTreeMap<ActivityRecordId, ActivityRecord>,
    record_ids: IdGen,
    global_config: Configuration,
    /// Default handled-changes mask applied to newly started components
    /// (set per-start via [`Atms::start_activity_with_mask`]).
    default_handled: ConfigChanges,
}

impl Atms {
    /// Creates an ATMS with the given boot configuration.
    pub fn new(global_config: Configuration) -> Self {
        Atms {
            stack: ActivityStack::new(),
            records: BTreeMap::new(),
            record_ids: IdGen::new(),
            global_config,
            default_handled: ConfigChanges::NONE,
        }
    }

    /// The current global configuration.
    pub fn global_config(&self) -> &Configuration {
        &self.global_config
    }

    /// Replaces the global configuration, returning the foreground record
    /// (the one that must now handle the change), if any.
    pub fn update_global_config(&mut self, config: Configuration) -> Option<ActivityRecordId> {
        self.global_config = config;
        self.foreground_record()
    }

    /// The foreground (top-of-top-task) record.
    pub fn foreground_record(&self) -> Option<ActivityRecordId> {
        self.stack.top_task().and_then(TaskRecord::top)
    }

    /// Brings an existing app's task to the front (the recents/app-switch
    /// gesture). Returns the record now in the foreground.
    pub fn bring_to_front(&mut self, component: &str) -> Option<ActivityRecordId> {
        let affinity = affinity_of(component);
        let task = self.stack.task_by_affinity(&affinity)?;
        self.stack.move_task_to_front(task);
        let record = self.stack.task(task)?.top()?;
        if let Some(r) = self.records.get_mut(&record) {
            r.state = RecordState::Resumed;
        }
        Some(record)
    }

    /// Starts an activity at time zero (tests/examples convenience).
    pub fn start_activity(&mut self, intent: &Intent) -> StartResult {
        self.start_activity_at(intent, SimTime::ZERO)
    }

    /// Starts an activity with default handled-mask.
    pub fn start_activity_at(&mut self, intent: &Intent, now: SimTime) -> StartResult {
        self.start_activity_with_mask(intent, now, self.default_handled)
    }

    /// Starts an activity, declaring the component's
    /// `android:configChanges` mask.
    ///
    /// Implements `ActivityStarter.startActivityUnchecked` +
    /// `setTaskFromIntentActivity`, including the paper's +41 LoC: when the
    /// intent carries [`IntentFlags::SUNNY`], first search the current task
    /// for an alive shadow record and coin-flip instead of creating.
    pub fn start_activity_with_mask(
        &mut self,
        intent: &Intent,
        now: SimTime,
        handled: ConfigChanges,
    ) -> StartResult {
        // NEW_TASK with an existing task reuses it, like Android; a task is
        // created only when none with the affinity exists yet.
        let affinity = affinity_of(&intent.component);
        let task_id = self
            .stack
            .task_by_affinity(&affinity)
            .unwrap_or_else(|| self.stack.create_task(&affinity));
        self.stack.move_task_to_front(task_id);

        if intent.flags.contains(IntentFlags::SUNNY) {
            return self.start_sunny(intent, task_id, now, handled);
        }

        // CLEAR_TOP: if an instance of the component exists anywhere in
        // the task, destroy everything above it and deliver to it.
        if intent.flags.contains(IntentFlags::CLEAR_TOP) {
            let existing = self.stack.task(task_id).and_then(|t| {
                t.records().iter().copied().find(|id| {
                    self.records
                        .get(id)
                        .is_some_and(|r| r.component() == intent.component && r.is_alive())
                })
            });
            if let Some(target) = existing {
                let above: Vec<ActivityRecordId> = self
                    .stack
                    .task(task_id)
                    .map(|t| {
                        t.records()
                            .iter()
                            .copied()
                            .skip_while(|&id| id != target)
                            .skip(1)
                            .collect()
                    })
                    .unwrap_or_default();
                for record in above {
                    let _ = self.destroy_record(record);
                }
                if let Some(r) = self.records.get_mut(&target) {
                    r.state = RecordState::Resumed;
                }
                return StartResult {
                    record: target,
                    task: task_id,
                    disposition: StartDisposition::ReusedTop,
                };
            }
        }

        // Stock semantics: with default or SINGLE_TOP flags, starting the
        // activity already on top is a no-op.
        let top = self.stack.task(task_id).and_then(TaskRecord::top);
        if let Some(top_id) = top {
            let matches_top = self
                .records
                .get(&top_id)
                .is_some_and(|r| r.component() == intent.component && !r.is_shadow());
            if matches_top {
                return StartResult {
                    record: top_id,
                    task: task_id,
                    disposition: StartDisposition::ReusedTop,
                };
            }
        }

        let record = self.create_record(&intent.component, handled);
        self.push_record(task_id, &affinity, record);
        StartResult {
            record,
            task: task_id,
            disposition: StartDisposition::CreatedNew,
        }
    }

    /// Pushes `record` onto `task_id`, recreating the task if it vanished
    /// in between (keeps the starter panic-free on the hot path).
    fn push_record(&mut self, task_id: TaskId, affinity: &str, record: ActivityRecordId) {
        let task_id = if self.stack.task(task_id).is_some() {
            task_id
        } else {
            self.stack.create_task(affinity)
        };
        if let Some(task) = self.stack.task_mut(task_id) {
            task.push(record);
        }
    }

    /// The SUNNY start path (RCHDroid §3.4).
    fn start_sunny(
        &mut self,
        intent: &Intent,
        task_id: TaskId,
        now: SimTime,
        handled: ConfigChanges,
    ) -> StartResult {
        let current_top = self.stack.task(task_id).and_then(TaskRecord::top);

        // Coin-flip: search the task for an alive shadow-state record.
        let shadow = self
            .stack
            .task(task_id)
            .and_then(|t| t.find_shadow_activity(|id| self.records.get(&id)));

        if let Some(shadow_id) = shadow {
            // Reorder it to the top, remove its shadow state, and flip the
            // previous top into the shadow state.
            if let Some(task) = self.stack.task_mut(task_id) {
                task.move_to_top(shadow_id);
            }
            if let Some(r) = self.records.get_mut(&shadow_id) {
                r.set_shadow(false, now);
                r.config = self.global_config.clone();
                r.state = RecordState::Resumed;
            }
            if let Some(prev) = current_top.filter(|&p| p != shadow_id) {
                if let Some(r) = self.records.get_mut(&prev) {
                    r.set_shadow(true, now);
                    r.state = RecordState::Stopped;
                }
            }
            let now_shadow = current_top.unwrap_or(shadow_id);
            return StartResult {
                record: shadow_id,
                task: task_id,
                disposition: StartDisposition::FlippedShadow { now_shadow },
            };
        }

        // First runtime change: create a *second* instance of the same
        // component (the stock same-as-top test is bypassed for SUNNY),
        // push it, and shadow the previous top.
        let record = self.create_record(&intent.component, handled);
        let affinity = affinity_of(&intent.component);
        self.push_record(task_id, &affinity, record);
        if let Some(prev) = current_top {
            if let Some(r) = self.records.get_mut(&prev) {
                r.set_shadow(true, now);
                r.state = RecordState::Stopped;
            }
        }
        StartResult {
            record,
            task: task_id,
            disposition: StartDisposition::CreatedNew,
        }
    }

    fn create_record(&mut self, component: &str, handled: ConfigChanges) -> ActivityRecordId {
        let id = ActivityRecordId::new(self.record_ids.next());
        self.records.insert(
            id,
            ActivityRecord::new(id, component, self.global_config.clone(), handled),
        );
        id
    }

    /// `ActivityRecord.ensureActivityConfiguration`: decides how `record`
    /// reacts to the current global configuration. `prevent_relaunch` is
    /// the paper's modification — RCHDroid "skips this test and always
    /// prevents restarting".
    ///
    /// The record's stored configuration is updated in every non-`NoChange`
    /// case.
    ///
    /// # Errors
    ///
    /// [`AtmsError::UnknownRecord`] for stale tokens.
    pub fn ensure_activity_configuration(
        &mut self,
        record: ActivityRecordId,
        prevent_relaunch: bool,
    ) -> Result<ConfigDecision, AtmsError> {
        let global = self.global_config.clone();
        let r = self
            .records
            .get_mut(&record)
            .ok_or(AtmsError::UnknownRecord(record))?;
        let diff = r.config.diff(&global);
        if diff.is_empty() {
            return Ok(ConfigDecision::NoChange);
        }
        r.config = global;
        if diff.is_subset_of(r.handled_changes) {
            Ok(ConfigDecision::HandledByApp(diff))
        } else if prevent_relaunch {
            Ok(ConfigDecision::PreventedRelaunch(diff))
        } else {
            Ok(ConfigDecision::Relaunch(diff))
        }
    }

    /// Marks a record's server-side lifecycle state.
    ///
    /// # Errors
    ///
    /// [`AtmsError::UnknownRecord`] for stale tokens.
    pub fn set_record_state(
        &mut self,
        record: ActivityRecordId,
        state: RecordState,
    ) -> Result<(), AtmsError> {
        self.records
            .get_mut(&record)
            .map(|r| r.state = state)
            .ok_or(AtmsError::UnknownRecord(record))
    }

    /// Destroys a record: marks it `Destroyed` and removes it from its
    /// task (removing the task too if it empties). Used both for normal
    /// `finish()` and for shadow GC.
    ///
    /// # Errors
    ///
    /// [`AtmsError::UnknownRecord`] for stale tokens.
    pub fn destroy_record(&mut self, record: ActivityRecordId) -> Result<(), AtmsError> {
        let r = self
            .records
            .get_mut(&record)
            .ok_or(AtmsError::UnknownRecord(record))?;
        r.state = RecordState::Destroyed;
        r.set_shadow(false, SimTime::ZERO);
        let task_ids: Vec<TaskId> = self.stack.tasks().iter().map(TaskRecord::id).collect();
        let mut emptied = None;
        for tid in task_ids {
            if let Some(task) = self.stack.task_mut(tid) {
                if task.remove(record) && task.is_empty() {
                    emptied = Some(tid);
                }
            }
        }
        if let Some(tid) = emptied {
            self.stack.remove_task(tid);
        }
        Ok(())
    }

    /// Rolls back a SUNNY start whose sunny instance could not be brought
    /// up (RCHDroid's fallback-restart path): the record the starter just
    /// put on top is destroyed, and `previous_top` — the record that was
    /// foreground before the start — is un-shadowed, resumed and
    /// reordered back to the top. After this the stack looks exactly as
    /// it did before [`Atms::start_activity_with_mask`] ran, so it never
    /// references an instance that failed to come up.
    ///
    /// # Errors
    ///
    /// [`AtmsError::UnknownRecord`] if `previous_top` is gone.
    pub fn rollback_sunny_start(
        &mut self,
        start: &StartResult,
        previous_top: ActivityRecordId,
        now: SimTime,
    ) -> Result<(), AtmsError> {
        match start.disposition {
            StartDisposition::CreatedNew | StartDisposition::FlippedShadow { .. } => {
                if start.record != previous_top {
                    let _ = self.destroy_record(start.record);
                }
            }
            StartDisposition::ReusedTop => {}
        }
        let r = self
            .records
            .get_mut(&previous_top)
            .ok_or(AtmsError::UnknownRecord(previous_top))?;
        r.set_shadow(false, now);
        r.state = RecordState::Resumed;
        let affinity = affinity_of(r.component());
        let task_id = self
            .stack
            .task_by_affinity(&affinity)
            .unwrap_or_else(|| self.stack.create_task(&affinity));
        if let Some(task) = self.stack.task_mut(task_id) {
            if !task.move_to_top(previous_top) {
                task.push(previous_top);
            }
        }
        self.stack.move_task_to_front(task_id);
        Ok(())
    }

    /// Looks up a record.
    pub fn record(&self, id: ActivityRecordId) -> Option<&ActivityRecord> {
        self.records.get(&id)
    }

    /// Mutable record lookup.
    pub fn record_mut(&mut self, id: ActivityRecordId) -> Option<&mut ActivityRecord> {
        self.records.get_mut(&id)
    }

    /// The stack (read-only).
    pub fn stack(&self) -> &ActivityStack {
        &self.stack
    }

    /// All alive shadow-state records (the paper maintains at most one per
    /// system; the invariant is asserted by tests and the RCHDroid
    /// handler).
    pub fn shadow_records(&self) -> Vec<ActivityRecordId> {
        self.records
            .values()
            .filter(|r| r.is_shadow() && r.is_alive())
            .map(ActivityRecord::id)
            .collect()
    }

    /// Number of alive records.
    pub fn alive_record_count(&self) -> usize {
        self.records.values().filter(|r| r.is_alive()).count()
    }
}

fn affinity_of(component: &str) -> String {
    component.split('/').next().unwrap_or(component).to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atms() -> Atms {
        Atms::new(Configuration::phone_portrait())
    }

    #[test]
    fn first_start_creates_task_and_record() {
        let mut a = atms();
        let res = a.start_activity(&Intent::new("com.x/.Main"));
        assert_eq!(res.disposition, StartDisposition::CreatedNew);
        assert_eq!(a.foreground_record(), Some(res.record));
        assert_eq!(a.alive_record_count(), 1);
    }

    #[test]
    fn default_flag_reuses_top_same_component() {
        let mut a = atms();
        let first = a.start_activity(&Intent::new("com.x/.Main"));
        let second = a.start_activity(&Intent::new("com.x/.Main"));
        assert_eq!(second.disposition, StartDisposition::ReusedTop);
        assert_eq!(second.record, first.record);
        assert_eq!(a.alive_record_count(), 1);
    }

    #[test]
    fn different_component_stacks_in_same_task() {
        let mut a = atms();
        a.start_activity(&Intent::new("com.x/.Main"));
        let detail = a.start_activity(&Intent::new("com.x/.Detail"));
        assert_eq!(detail.disposition, StartDisposition::CreatedNew);
        let task = a.stack().top_task().unwrap();
        assert_eq!(task.len(), 2);
        assert_eq!(task.top(), Some(detail.record));
    }

    #[test]
    fn sunny_start_creates_second_instance_and_shadows_previous() {
        let mut a = atms();
        let first = a.start_activity(&Intent::new("com.x/.Main"));
        let sunny = a.start_activity_at(&Intent::sunny("com.x/.Main"), SimTime::from_secs(1));
        assert_eq!(sunny.disposition, StartDisposition::CreatedNew);
        assert_ne!(sunny.record, first.record);
        assert!(a.record(first.record).unwrap().is_shadow());
        assert_eq!(a.shadow_records(), vec![first.record]);
        // Both instances of the SAME component coexist in one task.
        assert_eq!(a.stack().top_task().unwrap().len(), 2);
    }

    #[test]
    fn second_sunny_start_coin_flips() {
        let mut a = atms();
        let first = a.start_activity(&Intent::new("com.x/.Main"));
        let second = a.start_activity_at(&Intent::sunny("com.x/.Main"), SimTime::from_secs(1));
        let third = a.start_activity_at(&Intent::sunny("com.x/.Main"), SimTime::from_secs(2));
        // No third record: the shadow (first) was flipped back to sunny.
        assert_eq!(
            third.disposition,
            StartDisposition::FlippedShadow {
                now_shadow: second.record
            }
        );
        assert_eq!(third.record, first.record);
        assert_eq!(a.alive_record_count(), 2);
        assert!(!a.record(first.record).unwrap().is_shadow());
        assert!(a.record(second.record).unwrap().is_shadow());
        assert_eq!(a.foreground_record(), Some(first.record));
    }

    #[test]
    fn coin_flip_alternates_indefinitely() {
        let mut a = atms();
        let r0 = a.start_activity(&Intent::new("com.x/.Main")).record;
        let r1 = a
            .start_activity_at(&Intent::sunny("com.x/.Main"), SimTime::from_secs(1))
            .record;
        let mut expect = [r0, r1];
        for i in 2..10u64 {
            let res = a.start_activity_at(&Intent::sunny("com.x/.Main"), SimTime::from_secs(i));
            assert!(matches!(
                res.disposition,
                StartDisposition::FlippedShadow { .. }
            ));
            assert_eq!(res.record, expect[0]);
            expect.swap(0, 1);
            assert_eq!(a.alive_record_count(), 2, "never more than two instances");
            assert_eq!(a.shadow_records().len(), 1, "exactly one shadow");
        }
    }

    #[test]
    fn sunny_after_shadow_gc_creates_again() {
        let mut a = atms();
        let first = a.start_activity(&Intent::new("com.x/.Main")).record;
        let _second = a.start_activity_at(&Intent::sunny("com.x/.Main"), SimTime::from_secs(1));
        // GC the shadow (first).
        a.destroy_record(first).unwrap();
        let third = a.start_activity_at(&Intent::sunny("com.x/.Main"), SimTime::from_secs(2));
        assert_eq!(third.disposition, StartDisposition::CreatedNew);
        assert_ne!(third.record, first);
    }

    #[test]
    fn clear_top_pops_back_to_existing_instance() {
        let mut a = atms();
        let main = a.start_activity(&Intent::new("com.x/.Main")).record;
        a.start_activity(&Intent::new("com.x/.Detail"));
        a.start_activity(&Intent::new("com.x/.Settings"));
        assert_eq!(a.stack().top_task().unwrap().len(), 3);

        let res = a.start_activity(&Intent::new("com.x/.Main").with_flags(IntentFlags::CLEAR_TOP));
        assert_eq!(res.record, main);
        assert_eq!(res.disposition, StartDisposition::ReusedTop);
        assert_eq!(
            a.stack().top_task().unwrap().len(),
            1,
            "everything above destroyed"
        );
        assert_eq!(a.alive_record_count(), 1);
        assert_eq!(a.foreground_record(), Some(main));
    }

    #[test]
    fn clear_top_without_existing_instance_creates() {
        let mut a = atms();
        a.start_activity(&Intent::new("com.x/.Main"));
        let res = a.start_activity(&Intent::new("com.x/.Other").with_flags(IntentFlags::CLEAR_TOP));
        assert_eq!(res.disposition, StartDisposition::CreatedNew);
        assert_eq!(a.stack().top_task().unwrap().len(), 2);
    }

    #[test]
    fn ensure_configuration_relaunches_by_default() {
        let mut a = atms();
        let rec = a.start_activity(&Intent::new("com.x/.Main")).record;
        a.update_global_config(Configuration::phone_landscape());
        let d = a.ensure_activity_configuration(rec, false).unwrap();
        assert!(matches!(d, ConfigDecision::Relaunch(_)));
        // Config was applied: a second call sees no change.
        let d2 = a.ensure_activity_configuration(rec, false).unwrap();
        assert_eq!(d2, ConfigDecision::NoChange);
    }

    #[test]
    fn ensure_configuration_honours_handled_mask() {
        let mut a = atms();
        let rec = a
            .start_activity_with_mask(
                &Intent::new("com.x/.Main"),
                SimTime::ZERO,
                ConfigChanges::ALL,
            )
            .record;
        a.update_global_config(Configuration::phone_landscape());
        let d = a.ensure_activity_configuration(rec, false).unwrap();
        assert!(matches!(d, ConfigDecision::HandledByApp(_)));
    }

    #[test]
    fn ensure_configuration_prevented_for_rchdroid() {
        let mut a = atms();
        let rec = a.start_activity(&Intent::new("com.x/.Main")).record;
        a.update_global_config(Configuration::phone_landscape());
        let d = a.ensure_activity_configuration(rec, true).unwrap();
        assert!(matches!(d, ConfigDecision::PreventedRelaunch(_)));
    }

    #[test]
    fn destroy_record_empties_task() {
        let mut a = atms();
        let rec = a.start_activity(&Intent::new("com.x/.Main")).record;
        a.destroy_record(rec).unwrap();
        assert!(a.stack().is_empty());
        assert_eq!(a.alive_record_count(), 0);
        assert_eq!(a.foreground_record(), None);
    }

    #[test]
    fn unknown_record_errors() {
        let mut a = atms();
        let bogus = ActivityRecordId::new(99);
        assert_eq!(
            a.ensure_activity_configuration(bogus, false),
            Err(AtmsError::UnknownRecord(bogus))
        );
        assert!(a.destroy_record(bogus).is_err());
    }

    #[test]
    fn rollback_of_created_sunny_start_restores_the_stack() {
        let mut a = atms();
        let first = a.start_activity(&Intent::new("com.x/.Main")).record;
        let start = a.start_activity_at(&Intent::sunny("com.x/.Main"), SimTime::from_secs(1));
        assert!(a.record(first).unwrap().is_shadow());

        a.rollback_sunny_start(&start, first, SimTime::from_secs(1))
            .unwrap();
        assert_eq!(a.foreground_record(), Some(first));
        assert!(!a.record(first).unwrap().is_shadow());
        assert_eq!(a.record(first).unwrap().state, RecordState::Resumed);
        assert_eq!(a.alive_record_count(), 1, "the stillborn record is gone");
        assert!(a.shadow_records().is_empty());
        assert_eq!(a.stack().top_task().unwrap().len(), 1, "single top");
    }

    #[test]
    fn rollback_of_flipped_sunny_start_restores_the_stack() {
        let mut a = atms();
        let r0 = a.start_activity(&Intent::new("com.x/.Main")).record;
        let r1 = a
            .start_activity_at(&Intent::sunny("com.x/.Main"), SimTime::from_secs(1))
            .record;
        // Second change coin-flips r0 back to the top; r1 becomes shadow.
        let flip = a.start_activity_at(&Intent::sunny("com.x/.Main"), SimTime::from_secs(2));
        assert_eq!(flip.record, r0);

        // The flip could not be brought up on the thread side: roll back.
        a.rollback_sunny_start(&flip, r1, SimTime::from_secs(2))
            .unwrap();
        assert_eq!(a.foreground_record(), Some(r1), "previous top returns");
        assert!(!a.record(r1).unwrap().is_shadow());
        assert!(
            !a.record(r0).unwrap().is_alive(),
            "the dead flip target left the stack"
        );
        assert!(a.shadow_records().is_empty(), "no shadow-record leak");
        assert_eq!(a.stack().top_task().unwrap().len(), 1);
    }

    #[test]
    fn separate_apps_get_separate_tasks() {
        let mut a = atms();
        a.start_activity(&Intent::new("com.x/.Main"));
        a.start_activity(&Intent::new("com.y/.Main"));
        assert_eq!(a.stack().len(), 2);
        assert_eq!(a.stack().top_task().unwrap().affinity, "com.y");
    }
}
