//! The activity stack: tasks and per-task record stacks.

use crate::record::{ActivityRecord, ActivityRecordId};
use serde::{Deserialize, Serialize};

droidsim_kernel::define_id! {
    /// Identifies a task (≈ one app) in the activity stack.
    pub struct TaskId
}

/// One task: an app's back stack of activity records (Fig. 2b).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskRecord {
    id: TaskId,
    /// The task's affinity: the package whose activities it collects.
    pub affinity: String,
    /// Record tokens, bottom → top. The last element is the task's
    /// foreground activity.
    records: Vec<ActivityRecordId>,
}

impl TaskRecord {
    /// Creates an empty task.
    pub fn new(id: TaskId, affinity: &str) -> Self {
        TaskRecord {
            id,
            affinity: affinity.to_owned(),
            records: Vec::new(),
        }
    }

    /// The task id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The topmost record, if any.
    pub fn top(&self) -> Option<ActivityRecordId> {
        self.records.last().copied()
    }

    /// Pushes a record on top.
    pub fn push(&mut self, record: ActivityRecordId) {
        self.records.push(record);
    }

    /// Removes a record wherever it is in the stack. Returns whether it
    /// was present.
    pub fn remove(&mut self, record: ActivityRecordId) -> bool {
        let before = self.records.len();
        self.records.retain(|&r| r != record);
        self.records.len() != before
    }

    /// Moves an existing record to the top (the reorder step of the
    /// coin-flip). Returns whether it was present.
    pub fn move_to_top(&mut self, record: ActivityRecordId) -> bool {
        if self.remove(record) {
            self.records.push(record);
            true
        } else {
            false
        }
    }

    /// Records bottom → top.
    pub fn records(&self) -> &[ActivityRecordId] {
        &self.records
    }

    /// Number of records in the task.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the task has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `ActivityStack.findShadowActivityLocked` (the +29 LoC patch):
    /// searches this task's stack, top-down, for an alive shadow-state
    /// record, given access to the record arena.
    pub fn find_shadow_activity<'a>(
        &self,
        resolve: impl Fn(ActivityRecordId) -> Option<&'a ActivityRecord>,
    ) -> Option<ActivityRecordId> {
        self.records
            .iter()
            .rev()
            .filter_map(|&id| resolve(id))
            .find(|r| r.is_shadow() && r.is_alive())
            .map(ActivityRecord::id)
    }
}

/// The global activity stack: an ordered set of tasks, topmost last.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityStack {
    tasks: Vec<TaskRecord>,
    next_task_id: u64,
}

impl ActivityStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        ActivityStack::default()
    }

    /// The foreground task, if any.
    pub fn top_task(&self) -> Option<&TaskRecord> {
        self.tasks.last()
    }

    /// Mutable access to the foreground task.
    pub fn top_task_mut(&mut self) -> Option<&mut TaskRecord> {
        self.tasks.last_mut()
    }

    /// Finds a task by affinity.
    pub fn task_by_affinity(&self, affinity: &str) -> Option<TaskId> {
        self.tasks
            .iter()
            .find(|t| t.affinity == affinity)
            .map(TaskRecord::id)
    }

    /// Looks up a task.
    pub fn task(&self, id: TaskId) -> Option<&TaskRecord> {
        self.tasks.iter().find(|t| t.id() == id)
    }

    /// Mutable task lookup.
    pub fn task_mut(&mut self, id: TaskId) -> Option<&mut TaskRecord> {
        self.tasks.iter_mut().find(|t| t.id() == id)
    }

    /// Creates a new task for `affinity` and returns its id.
    pub fn create_task(&mut self, affinity: &str) -> TaskId {
        let id = TaskId::new(self.next_task_id);
        self.next_task_id += 1;
        self.tasks.push(TaskRecord::new(id, affinity));
        id
    }

    /// Moves a task to the foreground. Returns whether it was present.
    pub fn move_task_to_front(&mut self, id: TaskId) -> bool {
        if let Some(pos) = self.tasks.iter().position(|t| t.id() == id) {
            let task = self.tasks.remove(pos);
            self.tasks.push(task);
            true
        } else {
            false
        }
    }

    /// Removes a task entirely (its app finished).
    pub fn remove_task(&mut self, id: TaskId) -> bool {
        let before = self.tasks.len();
        self.tasks.retain(|t| t.id() != id);
        self.tasks.len() != before
    }

    /// Tasks bottom → top.
    pub fn tasks(&self) -> &[TaskRecord] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidsim_config::{ConfigChanges, Configuration};
    use droidsim_kernel::SimTime;

    #[test]
    fn task_stack_push_top_remove() {
        let mut t = TaskRecord::new(TaskId::new(0), "com.example");
        let a = ActivityRecordId::new(1);
        let b = ActivityRecordId::new(2);
        t.push(a);
        t.push(b);
        assert_eq!(t.top(), Some(b));
        assert!(t.remove(a));
        assert!(!t.remove(a));
        assert_eq!(t.records(), &[b]);
    }

    #[test]
    fn move_to_top_reorders() {
        let mut t = TaskRecord::new(TaskId::new(0), "x");
        let a = ActivityRecordId::new(1);
        let b = ActivityRecordId::new(2);
        t.push(a);
        t.push(b);
        assert!(t.move_to_top(a));
        assert_eq!(t.top(), Some(a));
        assert_eq!(t.len(), 2);
        assert!(!t.move_to_top(ActivityRecordId::new(99)));
    }

    #[test]
    fn find_shadow_activity_scans_top_down() {
        let mut t = TaskRecord::new(TaskId::new(0), "x");
        let mk = |raw: u64, shadow: bool| {
            let mut r = ActivityRecord::new(
                ActivityRecordId::new(raw),
                "x/.A",
                Configuration::phone_portrait(),
                ConfigChanges::NONE,
            );
            if shadow {
                r.set_shadow(true, SimTime::ZERO);
            }
            r
        };
        let records = vec![mk(1, true), mk(2, false), mk(3, true)];
        for r in &records {
            t.push(r.id());
        }
        let found = t.find_shadow_activity(|id| records.iter().find(|r| r.id() == id));
        // Top-down search finds record 3 first.
        assert_eq!(found, Some(ActivityRecordId::new(3)));
    }

    #[test]
    fn find_shadow_activity_skips_dead_records() {
        let mut t = TaskRecord::new(TaskId::new(0), "x");
        let mut r = ActivityRecord::new(
            ActivityRecordId::new(1),
            "x/.A",
            Configuration::phone_portrait(),
            ConfigChanges::NONE,
        );
        r.set_shadow(true, SimTime::ZERO);
        r.state = crate::record::RecordState::Destroyed;
        t.push(r.id());
        let records = [r];
        let found = t.find_shadow_activity(|id| records.iter().find(|r| r.id() == id));
        assert_eq!(found, None);
    }

    #[test]
    fn stack_task_lifecycle() {
        let mut s = ActivityStack::new();
        let t1 = s.create_task("com.a");
        let t2 = s.create_task("com.b");
        assert_eq!(s.top_task().map(TaskRecord::id), Some(t2));
        assert!(s.move_task_to_front(t1));
        assert_eq!(s.top_task().map(TaskRecord::id), Some(t1));
        assert_eq!(s.task_by_affinity("com.b"), Some(t2));
        assert!(s.remove_task(t2));
        assert_eq!(s.len(), 1);
    }
}
