//! Activity records — the system server's bookkeeping for one activity
//! instance.

use droidsim_config::{ConfigChanges, Configuration};
use droidsim_kernel::SimTime;
use serde::{Deserialize, Serialize};

droidsim_kernel::define_id! {
    /// The token identifying an activity record (and, across the IPC
    /// boundary, the matching activity instance in the app process).
    pub struct ActivityRecordId
}

/// Lifecycle state as tracked by the system server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RecordState {
    /// Created but not yet resumed.
    #[default]
    Initializing,
    /// Foreground, interacting with the user.
    Resumed,
    /// Visible but not focused.
    Paused,
    /// Not visible.
    Stopped,
    /// Destroyed; the token is dead.
    Destroyed,
}

/// One activity record in a task's stack.
///
/// The paper's `ActivityRecord` patch (+11 LoC) adds the shadow-state
/// field and its accessors; they are plain stock-inert data here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityRecord {
    id: ActivityRecordId,
    component: String,
    /// The configuration this record was created (or last relaunched) for.
    pub config: Configuration,
    /// Server-side lifecycle state.
    pub state: RecordState,
    /// The `android:configChanges` mask the app declared for this
    /// activity: diffs covered by it never cause a relaunch.
    pub handled_changes: ConfigChanges,
    shadow: bool,
    /// When the record last entered the shadow state (GC input).
    pub shadow_since: Option<SimTime>,
    /// The instance-state bundle the system retains on the record's
    /// behalf: Android keeps `onSaveInstanceState`'s output in the
    /// system server so an instance reclaimed under memory pressure can
    /// be restored when the user returns.
    pub saved_state: Option<droidsim_bundle::Bundle>,
}

impl ActivityRecord {
    /// Creates a record in the `Initializing` state.
    pub fn new(
        id: ActivityRecordId,
        component: &str,
        config: Configuration,
        handled_changes: ConfigChanges,
    ) -> Self {
        ActivityRecord {
            id,
            component: component.to_owned(),
            config,
            state: RecordState::Initializing,
            handled_changes,
            shadow: false,
            shadow_since: None,
            saved_state: None,
        }
    }

    /// The record's token.
    pub fn id(&self) -> ActivityRecordId {
        self.id
    }

    /// The component name.
    pub fn component(&self) -> &str {
        &self.component
    }

    /// RCHDroid accessor: whether the record is in the shadow state.
    pub fn is_shadow(&self) -> bool {
        self.shadow
    }

    /// RCHDroid accessor: enters/leaves the shadow state, stamping the
    /// entry time for the GC policy.
    pub fn set_shadow(&mut self, shadow: bool, now: SimTime) {
        self.shadow = shadow;
        self.shadow_since = if shadow { Some(now) } else { None };
    }

    /// Whether the record is alive (not destroyed).
    pub fn is_alive(&self) -> bool {
        self.state != RecordState::Destroyed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ActivityRecord {
        ActivityRecord::new(
            ActivityRecordId::new(1),
            "com.example/.Main",
            Configuration::phone_portrait(),
            ConfigChanges::NONE,
        )
    }

    #[test]
    fn new_record_is_initializing_and_not_shadow() {
        let r = record();
        assert_eq!(r.state, RecordState::Initializing);
        assert!(!r.is_shadow());
        assert!(r.is_alive());
        assert_eq!(r.shadow_since, None);
    }

    #[test]
    fn shadow_toggle_stamps_time() {
        let mut r = record();
        r.set_shadow(true, SimTime::from_secs(10));
        assert!(r.is_shadow());
        assert_eq!(r.shadow_since, Some(SimTime::from_secs(10)));
        r.set_shadow(false, SimTime::from_secs(20));
        assert!(!r.is_shadow());
        assert_eq!(r.shadow_since, None);
    }

    #[test]
    fn destroyed_records_are_dead() {
        let mut r = record();
        r.state = RecordState::Destroyed;
        assert!(!r.is_alive());
    }
}
