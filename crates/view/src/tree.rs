//! The view-tree arena.
//!
//! A [`ViewTree`] is the per-activity hierarchy rooted at a decor view.
//! Besides the stock Android behaviour (structure, attribute mutation via
//! [`ViewOp`], hierarchy state save/restore, invalidation), the tree also
//! carries the *hook points* the paper's patch adds to `View`/`ViewGroup`
//! (Table 2): a per-view **sunny peer pointer** (81+79 LoC of the patch)
//! and shadow/sunny dispatch along the tree (12 LoC in `ViewGroup`).
//! The hooks are inert unless a change handler uses them, so with no
//! handler installed the tree behaves exactly like stock Android 10.
//!
//! # Panic policy
//!
//! Production code in this module is panic-free: every fallible lookup
//! returns [`ViewError`] (or `Option`), and the arena is append-only with
//! ids handed out by [`ViewTree::add_view`], so an id obtained from this
//! tree cannot dangle. The `unwrap`/`expect` calls below all live in
//! `#[cfg(test)]` code or doc examples, where a panic *is* the failure
//! report; keep it that way when adding code here.

use crate::attrs::ViewAttrs;
use crate::error::ViewError;
use crate::kind::ViewKind;
use crate::ops::{DirtyMask, ViewOp};
use droidsim_bundle::Bundle;
use droidsim_kernel::{alloc_track, Symbol};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

thread_local! {
    /// Reusable DFS stack for [`ViewTree::for_each_id`]-style traversals:
    /// the save/restore, coupling, and migration paths walk the tree many
    /// times per configuration change, and each walk used to allocate a
    /// fresh id vector.
    static SCRATCH_STACK: RefCell<Vec<ViewId>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with this thread's reusable traversal stack (cleared first).
/// Falls back to a fresh stack — counted as an allocation event — when
/// the scratch is already held by an outer traversal on this thread.
fn with_scratch_stack<R>(f: impl FnOnce(&mut Vec<ViewId>) -> R) -> R {
    SCRATCH_STACK.with(|cell| match cell.try_borrow_mut() {
        Ok(mut stack) => {
            stack.clear();
            f(&mut stack)
        }
        Err(_) => {
            alloc_track::note(1);
            f(&mut Vec::new())
        }
    })
}

droidsim_kernel::define_id! {
    /// Identifies one view *instance* within a tree.
    ///
    /// Not to be confused with the `android:id` resource name
    /// ([`ViewNode::id_name`]), which is what survives re-inflation and
    /// keys both hierarchy state and RCHDroid's essence-based mapping.
    pub struct ViewId
}

/// One view in the arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewNode {
    /// Instance id within the tree.
    pub id: ViewId,
    /// The `android:id` name, if declared, interned as a [`Symbol`].
    ///
    /// Treat as immutable after [`ViewTree::add_view`]: the tree keeps a
    /// cached name→view index that is maintained on structural ops only.
    pub id_name: Option<Symbol>,
    /// Concrete class.
    pub kind: ViewKind,
    /// Attribute set.
    pub attrs: ViewAttrs,
    /// Parent instance (`None` only for the decor view).
    pub parent: Option<ViewId>,
    /// Children in order.
    pub children: Vec<ViewId>,
    /// RCHDroid hook: pointer to the corresponding view in the coupled
    /// sunny-state tree. `None` by default (stock behaviour).
    pub sunny_peer: Option<ViewId>,
    /// Whether the view participates in hierarchy state save/restore.
    /// Framework views do (`true`); a user-defined view that fails to
    /// implement `onSaveInstanceState` — the most common cause of the
    /// paper's state-loss bugs — does not. RCHDroid's essence migration
    /// copies *live attributes* and therefore fixes these views anyway.
    pub saves_state: bool,
    /// Android's `freezesText`: whether the view's text is user input
    /// that persists across save/restore (true for editable kinds).
    /// Label text set by the app or from resources is content, not state.
    pub freezes_text: bool,
}

impl ViewNode {
    /// Approximate heap footprint in bytes (object + attrs).
    pub fn heap_bytes(&self) -> u64 {
        // Rough per-View object cost on ART; dominated by attrs/drawables.
        512 + self.attrs.heap_bytes()
    }

    /// The `android:id` name as text, if declared.
    pub fn id_name_str(&self) -> Option<&'static str> {
        self.id_name.map(Symbol::as_str)
    }
}

/// A per-activity view hierarchy.
///
/// # Examples
///
/// ```
/// use droidsim_view::{ViewKind, ViewOp, ViewTree};
///
/// let mut tree = ViewTree::new();
/// let field = tree.add_view(tree.root(), ViewKind::EditText, Some("name")).unwrap();
/// tree.apply(field, ViewOp::SetText("alice".into())).unwrap();
/// let state = tree.save_hierarchy_state();
/// assert!(state.bundle("view:name").is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewTree {
    nodes: Vec<Option<ViewNode>>,
    root: ViewId,
    released: bool,
    /// Pending invalidations, coalesced *at insert time*: one entry per
    /// dirty view in first-invalidation order, carrying the OR-ed dirty
    /// mask and the raw invalidation count that folded into it. Draining
    /// is a linear sweep over this vector — no per-drain hash map.
    pending: Vec<(ViewId, DirtyMask, usize)>,
    /// View → position in `pending`, so a repeat invalidation is an O(1)
    /// in-place OR instead of a new entry.
    pending_pos: HashMap<ViewId, usize>,
    /// Raw (uncoalesced) invalidations since the last drain.
    raw_pending: usize,
    /// RCHDroid hook: when true the tree is in the Shadow state — it is
    /// invisible but alive, and its invalidations are what lazy migration
    /// consumes.
    shadow: bool,
    /// RCHDroid hook: when true the tree belongs to the Sunny (foreground)
    /// activity.
    sunny: bool,
    /// RCHDroid hook: which side of an essence coupling this tree is
    /// (0 = the tree that was shadow when the mapping was built, 1 = the
    /// tree that was sunny). Set by the migration engine's mapping build;
    /// `None` for uncoupled trees. Survives coin flips — the *side* is a
    /// stable identity even though the shadow/sunny *roles* swap.
    coupling_side: Option<u8>,
    /// Cached `android:id` name → view id index, maintained incrementally
    /// on the structural ops ([`ViewTree::add_view`] /
    /// [`ViewTree::remove_view`]) instead of being rebuilt on every
    /// coupling build or flush. Invariant: always equal to
    /// [`ViewTree::rebuild_id_name_index`] (lowest live view id wins for
    /// duplicate names).
    id_name_index: HashMap<Symbol, ViewId>,
    /// Live duplicate-name bearers *not* currently in the index, per
    /// name, in ascending id order (appends stay sorted because view ids
    /// only grow). Removal promotes the front entry instead of rescanning
    /// the arena, making index maintenance O(shadowed) per removed name.
    shadowed_ids: HashMap<Symbol, Vec<ViewId>>,
}

impl ViewTree {
    /// Creates a tree containing only a decor view.
    pub fn new() -> Self {
        let root = ViewId::new(0);
        let decor_name = Symbol::intern("decor");
        let decor = ViewNode {
            id: root,
            id_name: Some(decor_name),
            kind: ViewKind::DecorView,
            attrs: ViewAttrs::new(),
            parent: None,
            children: Vec::new(),
            sunny_peer: None,
            saves_state: true,
            freezes_text: false,
        };
        alloc_track::note(1);
        ViewTree {
            nodes: vec![Some(decor)],
            root,
            released: false,
            pending: Vec::new(),
            pending_pos: HashMap::new(),
            raw_pending: 0,
            shadow: false,
            sunny: false,
            coupling_side: None,
            id_name_index: HashMap::from([(decor_name, root)]),
            shadowed_ids: HashMap::new(),
        }
    }

    /// The coupling side assigned by the last essence-mapping build, if
    /// any. See the field docs.
    pub fn coupling_side(&self) -> Option<u8> {
        self.coupling_side
    }

    /// Tags this tree as one side of an essence coupling (engine hook).
    pub fn set_coupling_side(&mut self, side: Option<u8>) {
        self.coupling_side = side;
    }

    /// The decor view's id.
    pub fn root(&self) -> ViewId {
        self.root
    }

    /// Whether the tree has been released (its activity destroyed).
    pub fn is_released(&self) -> bool {
        self.released
    }

    /// Releases the tree: every subsequent access raises
    /// [`ViewError::NullPointer`] — the stock-Android crash scenario.
    pub fn release(&mut self) {
        self.released = true;
        self.pending.clear();
        self.pending_pos.clear();
        self.raw_pending = 0;
    }

    fn check_alive(&self, view: ViewId) -> Result<(), ViewError> {
        if self.released {
            return Err(ViewError::NullPointer { view });
        }
        Ok(())
    }

    /// Looks up a view.
    ///
    /// # Errors
    ///
    /// [`ViewError::NullPointer`] if the tree is released,
    /// [`ViewError::UnknownView`] if the id is stale.
    pub fn view(&self, id: ViewId) -> Result<&ViewNode, ViewError> {
        self.check_alive(id)?;
        self.nodes
            .get(id.raw() as usize)
            .and_then(Option::as_ref)
            .ok_or(ViewError::UnknownView(id))
    }

    /// Mutable lookup; same errors as [`ViewTree::view`].
    pub fn view_mut(&mut self, id: ViewId) -> Result<&mut ViewNode, ViewError> {
        self.check_alive(id)?;
        self.nodes
            .get_mut(id.raw() as usize)
            .and_then(Option::as_mut)
            .ok_or(ViewError::UnknownView(id))
    }

    /// Adds a view under `parent`.
    ///
    /// # Errors
    ///
    /// [`ViewError::NotAContainer`] if `parent` cannot hold children, plus
    /// the usual liveness errors.
    pub fn add_view(
        &mut self,
        parent: ViewId,
        kind: ViewKind,
        id_name: Option<&str>,
    ) -> Result<ViewId, ViewError> {
        let parent_node = self.view(parent)?;
        if !parent_node.kind.is_container() {
            return Err(ViewError::NotAContainer { parent });
        }
        let id = ViewId::new(self.nodes.len() as u64);
        let freezes_text = kind.is_editable();
        let id_name = id_name.map(Symbol::intern);
        self.nodes.push(Some(ViewNode {
            id,
            id_name,
            kind,
            attrs: ViewAttrs::new(),
            parent: Some(parent),
            children: Vec::new(),
            sunny_peer: None,
            saves_state: true,
            freezes_text,
        }));
        if let Some(name) = id_name {
            // New ids are strictly increasing, so the first bearer stays
            // the lowest; later bearers queue in the shadowed list, which
            // stays sorted because appends only ever add larger ids.
            match self.id_name_index.entry(name) {
                Entry::Vacant(e) => {
                    e.insert(id);
                }
                Entry::Occupied(_) => self.shadowed_ids.entry(name).or_default().push(id),
            }
        }
        self.view_mut(parent)?.children.push(id);
        Ok(id)
    }

    /// Removes a view and its whole subtree. Removing the decor view is
    /// not allowed.
    ///
    /// # Errors
    ///
    /// Liveness errors; [`ViewError::InapplicableOp`] when targeting the
    /// decor view.
    pub fn remove_view(&mut self, id: ViewId) -> Result<(), ViewError> {
        if id == self.root {
            return Err(ViewError::InapplicableOp {
                view: id,
                op: "removeView(decor)",
            });
        }
        let parent = self.view(id)?.parent;
        let mut stack = vec![id];
        let mut removed_names: Vec<(Symbol, ViewId)> = Vec::new();
        while let Some(current) = stack.pop() {
            if let Some(node) = self
                .nodes
                .get_mut(current.raw() as usize)
                .and_then(Option::take)
            {
                if let Some(name) = node.id_name {
                    removed_names.push((name, node.id));
                }
                stack.extend(node.children);
            }
        }
        for (name, removed_id) in removed_names {
            if self.id_name_index.get(&name) == Some(&removed_id) {
                // The indexed occurrence left the tree; promote the
                // lowest shadowed bearer — O(shadowed) bookkeeping
                // instead of the old full arena rescan.
                match self.shadowed_ids.get_mut(&name) {
                    Some(shadowed) if !shadowed.is_empty() => {
                        let next = shadowed.remove(0);
                        if shadowed.is_empty() {
                            self.shadowed_ids.remove(&name);
                        }
                        self.id_name_index.insert(name, next);
                    }
                    _ => {
                        self.shadowed_ids.remove(&name);
                        self.id_name_index.remove(&name);
                    }
                }
            } else if let Some(shadowed) = self.shadowed_ids.get_mut(&name) {
                if let Some(pos) = shadowed.iter().position(|&v| v == removed_id) {
                    shadowed.remove(pos);
                }
                if shadowed.is_empty() {
                    self.shadowed_ids.remove(&name);
                }
            }
        }
        if let Some(parent) = parent {
            if let Ok(p) = self.view_mut(parent) {
                p.children.retain(|&c| c != id);
            }
        }
        Ok(())
    }

    /// Number of live duplicate-name bearers currently shadowed by a
    /// lower-id view. Exposed so the property tests can check the
    /// removal bookkeeping against the arena.
    pub fn shadowed_duplicate_count(&self) -> usize {
        self.shadowed_ids.values().map(Vec::len).sum()
    }

    /// Applies a mutation and records an invalidation (the generic update
    /// step that any view change funnels through).
    ///
    /// # Errors
    ///
    /// Liveness errors; [`ViewError::InapplicableOp`] when the op does not
    /// fit the view's migration class.
    pub fn apply(&mut self, id: ViewId, op: ViewOp) -> Result<(), ViewError> {
        let dirty = op.dirty_bit();
        let node = self.view_mut(id)?;
        let class = node.kind.migration_class();
        if !op.applies_to(class) {
            return Err(ViewError::InapplicableOp {
                view: id,
                op: op.name(),
            });
        }
        match op {
            ViewOp::SetText(t) => node.attrs.text = Some(t),
            ViewOp::SetDrawable(name, bytes) => node.attrs.drawable = Some((name, bytes)),
            ViewOp::SetSelection(p) => node.attrs.selector_position = Some(p),
            ViewOp::SetItemChecked(item, checked) => {
                if checked {
                    if !node.attrs.checked_items.contains(&item) {
                        node.attrs.checked_items.push(item);
                        node.attrs.checked_items.sort_unstable();
                    }
                } else {
                    node.attrs.checked_items.retain(|&i| i != item);
                }
            }
            ViewOp::ScrollTo(y) => node.attrs.scroll_y = y,
            ViewOp::SetVideoUri(u) => node.attrs.video_uri = Some(u),
            ViewOp::SetProgress(p) => node.attrs.progress = Some(p),
            ViewOp::SetChecked(c) => node.attrs.checked = Some(c),
            ViewOp::SetEnabled(e) => node.attrs.enabled = e,
            ViewOp::SetVisible(v) => node.attrs.visible = v,
        }
        self.invalidate_attrs(id, dirty)?;
        Ok(())
    }

    /// Marks a view dirty. In stock Android this schedules a redraw; the
    /// paper's patch modifies exactly this function to catch updates for
    /// lazy migration, so the simulator records each invalidation for a
    /// change handler to drain.
    ///
    /// A bare `invalidate` carries no information about *what* changed,
    /// so it conservatively marks every attribute dirty. Mutations routed
    /// through [`ViewTree::apply`] record the precise bit instead.
    pub fn invalidate(&mut self, id: ViewId) -> Result<(), ViewError> {
        self.invalidate_attrs(id, DirtyMask::all())
    }

    /// Marks a view dirty for a known set of attributes. Coalescing
    /// happens here, at insert time: a repeat invalidation ORs into the
    /// view's existing entry, so draining is a plain sweep.
    pub fn invalidate_attrs(&mut self, id: ViewId, dirty: DirtyMask) -> Result<(), ViewError> {
        self.view(id)?;
        self.raw_pending += 1;
        match self.pending_pos.entry(id) {
            Entry::Occupied(e) => {
                let entry = &mut self.pending[*e.get()];
                entry.1 |= dirty;
                entry.2 += 1;
            }
            Entry::Vacant(e) => {
                e.insert(self.pending.len());
                self.pending.push((id, dirty, 1));
            }
        }
        Ok(())
    }

    /// Drains the invalidations recorded since the last drain, in order,
    /// de-duplicated (a view invalidated twice migrates once).
    pub fn drain_invalidations(&mut self) -> Vec<ViewId> {
        self.drain_dirty().into_iter().map(|(id, _)| id).collect()
    }

    /// Drains pending invalidations together with the coalesced dirty
    /// mask of each view: first-invalidation order, one entry per view,
    /// masks OR-ed across all of the view's invalidations.
    pub fn drain_dirty(&mut self) -> Vec<(ViewId, DirtyMask)> {
        self.drain_dirty_counted()
            .into_iter()
            .map(|(id, mask, _)| (id, mask))
            .collect()
    }

    /// Like [`ViewTree::drain_dirty`], but each entry also carries the
    /// number of raw invalidations that coalesced into it — what the
    /// batched migration queue needs for its coalesce-ratio accounting.
    pub fn drain_dirty_counted(&mut self) -> Vec<(ViewId, DirtyMask, usize)> {
        alloc_track::note(1);
        self.pending_pos.clear();
        self.raw_pending = 0;
        self.pending.drain(..).collect()
    }

    /// Zero-allocation drain: streams each coalesced `(view, mask, raw
    /// count)` entry into `f` in first-invalidation order and resets the
    /// pending state, keeping buffer capacity for the next frame. This
    /// is the migration engine's hot path;
    /// [`ViewTree::drain_dirty_counted`] is the allocating convenience
    /// wrapper.
    pub fn drain_dirty_with(&mut self, mut f: impl FnMut(ViewId, DirtyMask, usize)) {
        self.pending_pos.clear();
        self.raw_pending = 0;
        for (id, mask, count) in self.pending.drain(..) {
            f(id, mask, count);
        }
    }

    /// Raw (uncoalesced) number of invalidations recorded since the last
    /// drain.
    pub fn pending_invalidation_count(&self) -> usize {
        self.raw_pending
    }

    /// Number of distinct views with pending invalidations — the size a
    /// drained batch would have.
    pub fn pending_dirty_views(&self) -> usize {
        self.pending.len()
    }

    /// Pre-order traversal of live view ids, materialised as a vector.
    /// Allocates; hot paths use [`ViewTree::for_each_id`] instead.
    pub fn iter_ids(&self) -> Vec<ViewId> {
        alloc_track::note(1);
        let mut out = Vec::with_capacity(self.nodes.len());
        self.for_each_id(|id| out.push(id));
        out
    }

    /// Pre-order traversal of live view ids without materialising an id
    /// list: the ids stream through `f` while the DFS runs on this
    /// thread's reusable scratch stack.
    pub fn for_each_id(&self, mut f: impl FnMut(ViewId)) {
        with_scratch_stack(|stack| {
            stack.push(self.root);
            while let Some(id) = stack.pop() {
                if let Some(node) = self.nodes.get(id.raw() as usize).and_then(Option::as_ref) {
                    f(id);
                    for &child in node.children.iter().rev() {
                        stack.push(child);
                    }
                }
            }
        });
    }

    /// Number of live views.
    pub fn view_count(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    /// Finds a view by its `android:id` name — an O(1) lookup against the
    /// cached index (lowest live view id wins for duplicate names).
    pub fn find_by_id_name(&self, id_name: &str) -> Option<ViewId> {
        // `lookup` (not `intern`) so probing with arbitrary strings never
        // grows the global symbol table.
        let sym = Symbol::lookup(id_name)?;
        self.id_name_index.get(&sym).copied()
    }

    /// Total heap footprint of the hierarchy in bytes.
    pub fn heap_bytes(&self) -> u64 {
        self.nodes.iter().flatten().map(ViewNode::heap_bytes).sum()
    }

    /// Saves the hierarchy state: for every view *with an id name*, its
    /// user state goes into the bundle under `view:{id_name}`. Views
    /// without ids are skipped — exactly Android's (lossy) contract.
    pub fn save_hierarchy_state(&self) -> Bundle {
        let mut out = Bundle::new();
        self.for_each_id(|id| {
            let Ok(node) = self.view(id) else { return };
            if !node.saves_state {
                return; // custom view without onSaveInstanceState
            }
            if let Some(name) = node.id_name {
                let mut state = node.attrs.save_user_state();
                if !node.freezes_text {
                    state.remove("text");
                }
                if !state.is_empty() {
                    out.put_bundle(name.hierarchy_key(), state);
                }
            }
        });
        out
    }

    /// Restores state previously produced by
    /// [`ViewTree::save_hierarchy_state`], matching views by id name.
    /// Unknown names are ignored (the new layout may not contain them).
    pub fn restore_hierarchy_state(&mut self, state: &Bundle) {
        if self.released {
            return;
        }
        with_scratch_stack(|stack| {
            stack.push(self.root);
            while let Some(id) = stack.pop() {
                let Some(node) = self
                    .nodes
                    .get_mut(id.raw() as usize)
                    .and_then(Option::as_mut)
                else {
                    continue;
                };
                for &child in node.children.iter().rev() {
                    stack.push(child);
                }
                let Some(name) = node.id_name else {
                    continue;
                };
                if let Some(saved) = state.bundle(name.hierarchy_key()) {
                    node.attrs.restore_user_state(saved);
                }
            }
        });
    }

    // ---- RCHDroid hook points (Table 2 patch surface) ----

    /// Whether the tree is in the Shadow state.
    pub fn is_shadow(&self) -> bool {
        self.shadow
    }

    /// Whether the tree is in the Sunny state.
    pub fn is_sunny(&self) -> bool {
        self.sunny
    }

    /// `ViewGroup.dispatchShadowStateChanged`: flips the shadow flag for
    /// the whole tree.
    pub fn dispatch_shadow_state_changed(&mut self, shadow: bool) {
        self.shadow = shadow;
        if shadow {
            self.sunny = false;
        }
    }

    /// `ViewGroup.dispatchSunnyStateChanged`: flips the sunny flag for the
    /// whole tree.
    pub fn dispatch_sunny_state_changed(&mut self, sunny: bool) {
        self.sunny = sunny;
        if sunny {
            self.shadow = false;
        }
    }

    /// `Activity.getAllSunnyViews`: the hash table of id name → view id
    /// for this tree (the first half of the essence-based mapping).
    ///
    /// The index is cached and maintained incrementally on structural ops,
    /// so a coupling build or flush no longer re-traverses the tree or
    /// clones any strings. For duplicate names the lowest live view id
    /// wins, matching [`ViewTree::find_by_id_name`].
    pub fn id_name_index(&self) -> &HashMap<Symbol, ViewId> {
        &self.id_name_index
    }

    /// Rebuilds the id-name index from scratch by scanning the arena.
    /// The cached [`ViewTree::id_name_index`] must always equal this;
    /// exposed so tests can check the invariant.
    pub fn rebuild_id_name_index(&self) -> HashMap<Symbol, ViewId> {
        let mut index = HashMap::new();
        for node in self.nodes.iter().flatten() {
            if let Some(name) = node.id_name {
                index.entry(name).or_insert(node.id);
            }
        }
        index
    }

    /// `Activity.setSunnyViews`: stores sunny-peer pointers on this
    /// (shadow) tree by looking up each view's id name in a sunny tree's
    /// index. Returns how many views were mapped.
    pub fn set_sunny_peers(&mut self, sunny_index: &HashMap<Symbol, ViewId>) -> usize {
        if self.released {
            return 0;
        }
        with_scratch_stack(|stack| {
            stack.push(self.root);
            let mut mapped = 0;
            while let Some(id) = stack.pop() {
                let Some(node) = self
                    .nodes
                    .get_mut(id.raw() as usize)
                    .and_then(Option::as_mut)
                else {
                    continue;
                };
                for &child in node.children.iter().rev() {
                    stack.push(child);
                }
                node.sunny_peer = node.id_name.and_then(|n| sunny_index.get(&n)).copied();
                if node.sunny_peer.is_some() {
                    mapped += 1;
                }
            }
            mapped
        })
    }

    /// Clears every sunny-peer pointer (used when the coupling is broken,
    /// e.g. the shadow activity is garbage collected).
    pub fn clear_sunny_peers(&mut self) {
        for node in self.nodes.iter_mut().flatten() {
            node.sunny_peer = None;
        }
        self.coupling_side = None;
    }

    /// Content digest of the tree's *mapping shape*: the released flag
    /// plus the id-ordered sequence of live `(view id, android:id name)`
    /// pairs. Two trees with equal shape digests produce identical
    /// essence mappings against any given partner, which is what keys
    /// the migration engine's plan cache: the mapping pairs views by id
    /// name (lowest live id wins for duplicates), so it is a pure
    /// function of the live id→name set — parent/child layout and
    /// attributes deliberately do not participate. A linear arena scan
    /// enumerates exactly the live set ([`ViewTree::remove_view`]
    /// vacates every slot it drops), and keeps this digest cheap enough
    /// to compute on every cache probe.
    pub fn mapping_shape_digest(&self) -> u64 {
        use droidsim_kernel::memo;
        let mut h = memo::fold_u64(memo::FNV_OFFSET, u64::from(self.released));
        for node in self.nodes.iter().flatten() {
            // Symbol indexes are process-stable, so they are valid digest
            // material for an in-process cache key (never for output).
            let name_tag = node.id_name.map_or(0, |s| u64::from(s.index()) + 1);
            h = memo::fold_u64(h, node.id.raw());
            h = memo::fold_u64(h, name_tag);
        }
        h
    }

    /// Replays a cached essence-mapping plan: clears every sunny-peer
    /// pointer, then installs the listed `(view, peer)` pairs. Produces
    /// exactly the state [`ViewTree::set_sunny_peers`] leaves behind when
    /// given the index that generated `pairs` — including the no-op on a
    /// released tree. Returns the number of peers installed.
    pub fn apply_sunny_peers(&mut self, pairs: &[(ViewId, ViewId)]) -> usize {
        if self.released {
            return 0;
        }
        for node in self.nodes.iter_mut().flatten() {
            node.sunny_peer = None;
        }
        let mut applied = 0;
        for &(view, peer) in pairs {
            if let Some(node) = self
                .nodes
                .get_mut(view.raw() as usize)
                .and_then(Option::as_mut)
            {
                node.sunny_peer = Some(peer);
                applied += 1;
            }
        }
        applied
    }
}

impl Default for ViewTree {
    fn default() -> Self {
        ViewTree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with_views() -> (ViewTree, ViewId, ViewId, ViewId) {
        let mut t = ViewTree::new();
        let panel = t
            .add_view(t.root(), ViewKind::LinearLayout, Some("panel"))
            .unwrap();
        let text = t.add_view(panel, ViewKind::EditText, Some("name")).unwrap();
        let image = t.add_view(panel, ViewKind::ImageView, None).unwrap();
        (t, panel, text, image)
    }

    #[test]
    fn structure_is_navigable() {
        let (t, panel, text, image) = tree_with_views();
        assert_eq!(t.view_count(), 4);
        assert_eq!(t.view(text).unwrap().parent, Some(panel));
        assert_eq!(t.view(panel).unwrap().children, vec![text, image]);
        assert_eq!(t.iter_ids(), vec![t.root(), panel, text, image]);
    }

    #[test]
    fn leaf_views_reject_children() {
        let (mut t, _, text, _) = tree_with_views();
        let err = t.add_view(text, ViewKind::TextView, None).unwrap_err();
        assert_eq!(err, ViewError::NotAContainer { parent: text });
    }

    #[test]
    fn remove_view_drops_subtree() {
        let (mut t, panel, _, _) = tree_with_views();
        t.remove_view(panel).unwrap();
        assert_eq!(t.view_count(), 1);
        assert!(t.view(panel).is_err());
    }

    #[test]
    fn decor_view_cannot_be_removed() {
        let (mut t, ..) = tree_with_views();
        assert!(t.remove_view(t.root()).is_err());
    }

    #[test]
    fn apply_updates_attrs_and_invalidates() {
        let (mut t, _, text, _) = tree_with_views();
        t.apply(text, ViewOp::SetText("alice".into())).unwrap();
        assert_eq!(t.view(text).unwrap().attrs.text.as_deref(), Some("alice"));
        assert_eq!(t.drain_invalidations(), vec![text]);
        assert!(t.drain_invalidations().is_empty(), "drain consumes");
    }

    #[test]
    fn duplicate_invalidations_dedupe() {
        let (mut t, _, text, image) = tree_with_views();
        t.apply(text, ViewOp::SetText("a".into())).unwrap();
        t.apply(image, ViewOp::SetDrawable("x.png".into(), 10))
            .unwrap();
        t.apply(text, ViewOp::SetText("b".into())).unwrap();
        assert_eq!(t.drain_invalidations(), vec![text, image]);
    }

    #[test]
    fn drain_dirty_coalesces_masks_per_view() {
        let (mut t, _, text, image) = tree_with_views();
        t.apply(text, ViewOp::SetText("a".into())).unwrap();
        t.apply(text, ViewOp::SetEnabled(false)).unwrap();
        t.apply(image, ViewOp::SetDrawable("x.png".into(), 10))
            .unwrap();
        t.apply(text, ViewOp::SetText("b".into())).unwrap();
        assert_eq!(t.pending_invalidation_count(), 4);
        assert_eq!(t.pending_dirty_views(), 2);
        let drained = t.drain_dirty();
        assert_eq!(
            drained,
            vec![
                (text, DirtyMask::TEXT | DirtyMask::ENABLED),
                (image, DirtyMask::DRAWABLE),
            ]
        );
        assert!(t.drain_dirty().is_empty(), "drain consumes");
        assert_eq!(t.pending_invalidation_count(), 0);
    }

    #[test]
    fn bare_invalidate_marks_all_attrs() {
        let (mut t, _, text, _) = tree_with_views();
        t.invalidate(text).unwrap();
        assert_eq!(t.drain_dirty(), vec![(text, DirtyMask::all())]);
    }

    #[test]
    fn release_discards_pending_dirty_state() {
        let (mut t, _, text, _) = tree_with_views();
        t.apply(text, ViewOp::SetText("a".into())).unwrap();
        t.release();
        assert_eq!(t.pending_dirty_views(), 0);
        assert_eq!(t.pending_invalidation_count(), 0);
    }

    #[test]
    fn inapplicable_op_is_rejected() {
        let (mut t, _, text, _) = tree_with_views();
        let err = t.apply(text, ViewOp::SetProgress(10)).unwrap_err();
        assert_eq!(
            err,
            ViewError::InapplicableOp {
                view: text,
                op: "setProgress"
            }
        );
    }

    #[test]
    fn released_tree_raises_null_pointer() {
        let (mut t, _, text, _) = tree_with_views();
        t.release();
        let err = t.apply(text, ViewOp::SetText("boom".into())).unwrap_err();
        assert!(err.is_crash());
        assert!(t.view(text).is_err());
    }

    #[test]
    fn hierarchy_state_round_trips_by_id_name() {
        let (mut t, ..) = tree_with_views();
        let text = t.find_by_id_name("name").unwrap();
        t.apply(text, ViewOp::SetText("draft".into())).unwrap();
        let state = t.save_hierarchy_state();

        // Fresh inflation of "the same layout" (same id names).
        let (mut t2, ..) = tree_with_views();
        t2.restore_hierarchy_state(&state);
        let text2 = t2.find_by_id_name("name").unwrap();
        assert_eq!(t2.view(text2).unwrap().attrs.text.as_deref(), Some("draft"));
    }

    #[test]
    fn custom_views_without_save_impl_lose_state() {
        let mut t = ViewTree::new();
        let broken = t
            .add_view(
                t.root(),
                ViewKind::from_class_name("com.app.BrokenEditText"),
                Some("field"),
            )
            .unwrap();
        t.view_mut(broken).unwrap().saves_state = false;
        t.apply(broken, ViewOp::SetText("typed".into())).unwrap();
        let state = t.save_hierarchy_state();
        assert!(
            state.bundle("view:field").is_none(),
            "skipped from the bundle"
        );
    }

    #[test]
    fn views_without_ids_lose_state() {
        let (mut t, _, _, image) = tree_with_views();
        t.apply(image, ViewOp::SetDrawable("hero.png".into(), 100))
            .unwrap();
        // ImageView has no id and its drawable is content anyway: nothing
        // saved under any anonymous key.
        let state = t.save_hierarchy_state();
        assert!(
            state.iter().all(|(k, _)| k != "view:"),
            "no anonymous entries"
        );
    }

    #[test]
    fn sunny_peer_mapping_by_id_name() {
        let (mut shadow, ..) = tree_with_views();
        let (sunny, ..) = tree_with_views();
        let index = sunny.id_name_index();
        let mapped = shadow.set_sunny_peers(index);
        // decor + panel + name have ids → 3 mapped; anonymous image not.
        assert_eq!(mapped, 3);
        let name_view = shadow.find_by_id_name("name").unwrap();
        let peer = shadow.view(name_view).unwrap().sunny_peer.unwrap();
        assert_eq!(peer, sunny.find_by_id_name("name").unwrap());
        shadow.clear_sunny_peers();
        assert!(shadow.view(name_view).unwrap().sunny_peer.is_none());
    }

    #[test]
    fn shadow_sunny_dispatch_is_exclusive() {
        let (mut t, ..) = tree_with_views();
        t.dispatch_sunny_state_changed(true);
        assert!(t.is_sunny() && !t.is_shadow());
        t.dispatch_shadow_state_changed(true);
        assert!(t.is_shadow() && !t.is_sunny());
    }

    #[test]
    fn heap_grows_with_drawables() {
        let (mut t, _, _, image) = tree_with_views();
        let before = t.heap_bytes();
        t.apply(image, ViewOp::SetDrawable("big.png".into(), 1 << 20))
            .unwrap();
        assert!(t.heap_bytes() > before + (1 << 20) - 1);
    }

    #[test]
    fn cached_index_tracks_structural_ops() {
        let (mut t, panel, text, _) = tree_with_views();
        assert_eq!(*t.id_name_index(), t.rebuild_id_name_index());
        assert_eq!(t.id_name_index().len(), 3); // decor, panel, name

        // A duplicate name indexes the lowest id; removing it falls back
        // to the survivor.
        let dup = t.add_view(panel, ViewKind::TextView, Some("name")).unwrap();
        assert_eq!(t.find_by_id_name("name"), Some(text));
        assert_eq!(*t.id_name_index(), t.rebuild_id_name_index());
        t.remove_view(text).unwrap();
        assert_eq!(t.find_by_id_name("name"), Some(dup));
        assert_eq!(*t.id_name_index(), t.rebuild_id_name_index());

        // Subtree removal drops every indexed name underneath.
        t.remove_view(panel).unwrap();
        assert_eq!(t.find_by_id_name("name"), None);
        assert_eq!(t.find_by_id_name("panel"), None);
        assert_eq!(*t.id_name_index(), t.rebuild_id_name_index());
        assert_eq!(t.id_name_index().len(), 1); // decor remains
    }

    #[test]
    fn mapping_shape_digest_tracks_structure_and_names() {
        let (a, ..) = tree_with_views();
        let (b, ..) = tree_with_views();
        assert_eq!(
            a.mapping_shape_digest(),
            b.mapping_shape_digest(),
            "equal shapes digest equal"
        );

        let (mut c, panel, ..) = tree_with_views();
        c.add_view(panel, ViewKind::TextView, Some("extra"))
            .unwrap();
        assert_ne!(a.mapping_shape_digest(), c.mapping_shape_digest());

        // Same structure, different id name → different mapping → must
        // digest differently.
        let mut d = ViewTree::new();
        let dp = d
            .add_view(d.root(), ViewKind::LinearLayout, Some("panel"))
            .unwrap();
        d.add_view(dp, ViewKind::EditText, Some("renamed")).unwrap();
        d.add_view(dp, ViewKind::ImageView, None).unwrap();
        assert_ne!(a.mapping_shape_digest(), d.mapping_shape_digest());

        // Attributes are not shape: mutating one must not re-key.
        let (mut e, _, text, _) = tree_with_views();
        let before = e.mapping_shape_digest();
        e.apply(text, ViewOp::SetText("typed".into())).unwrap();
        assert_eq!(e.mapping_shape_digest(), before);

        // The released flag is shape (it suppresses mapping entirely).
        let (mut f, ..) = tree_with_views();
        let live = f.mapping_shape_digest();
        f.release();
        assert_ne!(f.mapping_shape_digest(), live);
    }

    #[test]
    fn apply_sunny_peers_replays_set_sunny_peers_exactly() {
        let (mut shadow, ..) = tree_with_views();
        let (sunny, ..) = tree_with_views();
        let mapped = shadow.set_sunny_peers(sunny.id_name_index());

        // Extract the plan the cold path produced…
        let mut pairs = Vec::new();
        shadow.for_each_id(|id| {
            if let Some(peer) = shadow.view(id).ok().and_then(|n| n.sunny_peer) {
                pairs.push((id, peer));
            }
        });
        assert_eq!(pairs.len(), mapped);

        // …replay it onto an identically-shaped fresh tree, after first
        // polluting its pointers to prove the replay clears them.
        let (mut replayed, _, text, image) = tree_with_views();
        replayed.view_mut(image).unwrap().sunny_peer = Some(text);
        let applied = replayed.apply_sunny_peers(&pairs);
        assert_eq!(applied, mapped);
        replayed.for_each_id(|id| {
            assert_eq!(
                replayed.view(id).unwrap().sunny_peer,
                shadow.view(id).unwrap().sunny_peer,
                "peer pointers identical after replay"
            );
        });

        // Released trees ignore replays, mirroring set_sunny_peers.
        let (mut dead, ..) = tree_with_views();
        dead.release();
        assert_eq!(dead.apply_sunny_peers(&pairs), 0);
    }

    #[test]
    fn checked_items_toggle() {
        let mut t = ViewTree::new();
        let list = t
            .add_view(t.root(), ViewKind::ListView, Some("list"))
            .unwrap();
        t.apply(list, ViewOp::SetItemChecked(4, true)).unwrap();
        t.apply(list, ViewOp::SetItemChecked(2, true)).unwrap();
        t.apply(list, ViewOp::SetItemChecked(4, true)).unwrap();
        assert_eq!(t.view(list).unwrap().attrs.checked_items, vec![2, 4]);
        t.apply(list, ViewOp::SetItemChecked(2, false)).unwrap();
        assert_eq!(t.view(list).unwrap().attrs.checked_items, vec![4]);
    }
}
