//! Layout inflation: template + resources + configuration → view tree.
//!
//! Two entry points share one walker: [`inflate`] is lenient (a child
//! declared under a non-container view is skipped, mirroring the
//! fallback-layout leniency elsewhere in the simulator), while
//! [`try_inflate`] is strict and surfaces the malformed template as
//! [`ViewError::NotAContainer`] — which is what the static analyzer
//! reports instead of silently analysing a truncated tree.

use crate::error::ViewError;
use crate::kind::ViewKind;
use crate::tree::{ViewId, ViewTree};
use droidsim_config::Configuration;
use droidsim_kernel::memo::{self, Admission, MemoCache};
use droidsim_resources::{ConfigResolver, LayoutNode, LayoutTemplate, ResourceTable};
use std::sync::{Once, OnceLock};

/// Statistics from one inflation, consumed by the cost model (per-view
/// inflate cost, drawable decode bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InflateStats {
    /// Views instantiated.
    pub views_created: usize,
    /// Total decoded drawable bytes loaded.
    pub drawable_bytes: u64,
    /// String resources resolved.
    pub strings_resolved: usize,
}

/// Inflates `template` into a fresh [`ViewTree`], resolving `@string/…`
/// and `@drawable/…` attribute references against `resources` for the
/// given `config`.
///
/// Unresolvable references fall back to the literal (Android raises at
/// build time; the simulator is lenient so workloads can be terse), and
/// a child declared under a non-container view is skipped along with its
/// subtree. Use [`try_inflate`] when a malformed template should be an
/// error instead.
///
/// # Examples
///
/// ```
/// use droidsim_config::Configuration;
/// use droidsim_resources::{ConfigResolver, LayoutNode, LayoutTemplate, ResourceTable};
/// use droidsim_view::inflate;
///
/// let template = LayoutTemplate::new(
///     "main",
///     LayoutNode::new("LinearLayout")
///         .with_id("root")
///         .with_child(LayoutNode::new("TextView").with_id("title").with_attr("text", "Hi")),
/// );
/// let (tree, stats) = inflate(&template, &ResourceTable::new(), &Configuration::phone_portrait());
/// assert_eq!(stats.views_created, 2);
/// assert!(tree.find_by_id_name("title").is_some());
/// ```
pub fn inflate(
    template: &LayoutTemplate,
    resources: &ResourceTable,
    config: &Configuration,
) -> (ViewTree, InflateStats) {
    if memo::enabled() {
        let key = inflate_key(template, resources, config, false);
        match inflate_cache().probe(key) {
            Admission::Hit(cached) => return (*cached).clone(),
            Admission::Build => {
                let built = inflate_cold(template, resources, config);
                inflate_cache().publish(key, built.clone());
                return built;
            }
            Admission::Skip => {}
        }
    }
    inflate_cold(template, resources, config)
}

/// The uncached inflation walk shared by both memoized entry points.
/// Resolution goes through a [`ConfigResolver`] handle: one memo probe
/// for the whole walk, then a plain map read per attribute.
fn inflate_cold(
    template: &LayoutTemplate,
    resources: &ResourceTable,
    config: &Configuration,
) -> (ViewTree, InflateStats) {
    let mut tree = ViewTree::new();
    let mut stats = InflateStats::default();
    let resolver = resources.resolver(config);
    let lenient = inflate_node(
        template.root(),
        tree.root(),
        &mut tree,
        &resolver,
        &mut stats,
        false,
    );
    debug_assert!(lenient.is_ok(), "lenient inflation cannot fail");
    (tree, stats)
}

/// The content-addressed key of one inflation: template digest, resource
/// table fingerprint, configuration digest, and the strict/lenient bit.
/// The strict bit keeps lenient results (which silently truncate
/// malformed templates) from ever answering a strict probe that must
/// error instead.
type InflateKey = (u64, u64, u64, bool);

fn inflate_key(
    template: &LayoutTemplate,
    resources: &ResourceTable,
    config: &Configuration,
    strict: bool,
) -> InflateKey {
    (
        template.content_digest(),
        resources.fingerprint(),
        memo::stable_hash(config),
        strict,
    )
}

/// The process-wide inflated-template cache: a hit instantiates an
/// activity's tree by cloning the Arc'd template instead of re-walking
/// the layout and re-resolving every attribute. Errors are never cached
/// (a failed strict inflation publishes nothing).
///
/// Admission takes three touches, not the default two: one activity
/// creation inflates the same template twice (the shadow and the sunny
/// instance), so a pair of probes is a single creation — only a third
/// sighting proves the template recurs across creations and is worth
/// the publish clone. A never-repeated template therefore costs two
/// tombstone touches and nothing else.
fn inflate_cache() -> &'static MemoCache<InflateKey, (ViewTree, InflateStats)> {
    static CACHE: OnceLock<MemoCache<InflateKey, (ViewTree, InflateStats)>> = OnceLock::new();
    static REGISTER: Once = Once::new();
    let cache = CACHE.get_or_init(|| {
        MemoCache::new("inflate", 256, |(tree, _): &(ViewTree, InflateStats)| {
            tree.heap_bytes()
        })
        .with_admission_touches(3)
    });
    REGISTER.call_once(|| memo::register(cache));
    cache
}

/// Strict form of [`inflate`]: a template that places children under a
/// non-container view is rejected as [`ViewError::NotAContainer`] rather
/// than silently truncated.
///
/// # Examples
///
/// ```
/// use droidsim_config::Configuration;
/// use droidsim_resources::{ConfigResolver, LayoutNode, LayoutTemplate, ResourceTable};
/// use droidsim_view::{try_inflate, ViewError};
///
/// let bad = LayoutTemplate::new(
///     "bad",
///     LayoutNode::new("TextView").with_child(LayoutNode::new("Button")),
/// );
/// let err = try_inflate(&bad, &ResourceTable::new(), &Configuration::phone_portrait());
/// assert!(matches!(err, Err(ViewError::NotAContainer { .. })));
/// ```
pub fn try_inflate(
    template: &LayoutTemplate,
    resources: &ResourceTable,
    config: &Configuration,
) -> Result<(ViewTree, InflateStats), ViewError> {
    if memo::enabled() {
        let key = inflate_key(template, resources, config, true);
        match inflate_cache().probe(key) {
            Admission::Hit(cached) => return Ok((*cached).clone()),
            Admission::Build => {
                let built = try_inflate_cold(template, resources, config)?;
                inflate_cache().publish(key, built.clone());
                return Ok(built);
            }
            Admission::Skip => {}
        }
    }
    try_inflate_cold(template, resources, config)
}

/// The uncached strict inflation walk.
fn try_inflate_cold(
    template: &LayoutTemplate,
    resources: &ResourceTable,
    config: &Configuration,
) -> Result<(ViewTree, InflateStats), ViewError> {
    let mut tree = ViewTree::new();
    let mut stats = InflateStats::default();
    let resolver = resources.resolver(config);
    inflate_node(
        template.root(),
        tree.root(),
        &mut tree,
        &resolver,
        &mut stats,
        true,
    )?;
    Ok((tree, stats))
}

fn inflate_node(
    node: &LayoutNode,
    parent: ViewId,
    tree: &mut ViewTree,
    resources: &ConfigResolver<'_>,
    stats: &mut InflateStats,
    strict: bool,
) -> Result<(), ViewError> {
    let kind = ViewKind::from_class_name(&node.class);
    let id = match tree.add_view(parent, kind, node.id_name.as_deref()) {
        Ok(id) => id,
        // The only failure `add_view` has: `parent` is not a container.
        Err(e) if strict => return Err(e),
        Err(_) => return Ok(()), // lenient: drop the subtree
    };
    stats.views_created += 1;

    for (key, value) in &node.attrs {
        match key.as_str() {
            "text" => {
                let resolved = resolve_string(value, resources, stats);
                if let Ok(v) = tree.view_mut(id) {
                    v.attrs.text = Some(resolved);
                }
            }
            "src" => {
                let (asset, bytes) = resolve_drawable(value, resources);
                stats.drawable_bytes += bytes;
                if let Ok(v) = tree.view_mut(id) {
                    v.attrs.drawable = Some((asset, bytes));
                }
            }
            "progress" => {
                if let (Ok(p), Ok(v)) = (value.parse::<i32>(), tree.view_mut(id)) {
                    v.attrs.progress = Some(p);
                }
            }
            "videoUri" => {
                if let Ok(v) = tree.view_mut(id) {
                    v.attrs.video_uri = Some(value.clone());
                }
            }
            _ => {} // layout params etc. — no simulation effect
        }
    }

    for child in &node.children {
        inflate_node(child, id, tree, resources, stats, strict)?;
    }
    Ok(())
}

fn resolve_string(value: &str, resources: &ConfigResolver<'_>, stats: &mut InflateStats) -> String {
    if let Some(name) = value.strip_prefix("@string/") {
        stats.strings_resolved += 1;
        resources.resolve_string(name).unwrap_or(value).to_owned()
    } else {
        value.to_owned()
    }
}

fn resolve_drawable(value: &str, resources: &ConfigResolver<'_>) -> (String, u64) {
    if let Some(name) = value.strip_prefix("@drawable/") {
        match resources.resolve_drawable(name) {
            Ok((asset, bytes)) => (asset.to_owned(), bytes),
            Err(_) => (value.to_owned(), 0),
        }
    } else {
        (value.to_owned(), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidsim_config::{Locale, Orientation};
    use droidsim_resources::{Qualifiers, ResourceValue};

    fn resources() -> ResourceTable {
        let mut t = ResourceTable::new();
        t.put("title", Qualifiers::any(), ResourceValue::string("Hello"));
        t.put(
            "title",
            Qualifiers::any().with_language("zh"),
            ResourceValue::string("你好"),
        );
        t.put(
            "hero",
            Qualifiers::any(),
            ResourceValue::drawable("hero_port.png", 1_000),
        );
        t.put(
            "hero",
            Qualifiers::any().with_orientation(Orientation::Landscape),
            ResourceValue::drawable("hero_land.png", 2_000),
        );
        t
    }

    fn template() -> LayoutTemplate {
        LayoutTemplate::new(
            "main",
            LayoutNode::new("LinearLayout")
                .with_id("root")
                .with_children([
                    LayoutNode::new("TextView")
                        .with_id("title")
                        .with_attr("text", "@string/title"),
                    LayoutNode::new("ImageView")
                        .with_id("hero")
                        .with_attr("src", "@drawable/hero"),
                    LayoutNode::new("ProgressBar")
                        .with_id("bar")
                        .with_attr("progress", "30"),
                ]),
        )
    }

    #[test]
    fn inflation_builds_the_tree() {
        let (tree, stats) = inflate(&template(), &resources(), &Configuration::phone_portrait());
        assert_eq!(stats.views_created, 4);
        assert_eq!(tree.view_count(), 5); // + decor
        assert_eq!(stats.strings_resolved, 1);
    }

    #[test]
    fn string_resolution_follows_locale() {
        let config = Configuration::phone_portrait().with_locale(Locale::zh_cn());
        let (tree, _) = inflate(&template(), &resources(), &config);
        let title = tree.find_by_id_name("title").unwrap();
        assert_eq!(
            tree.view(title).unwrap().attrs.text.as_deref(),
            Some("你好")
        );
    }

    #[test]
    fn drawable_resolution_follows_orientation() {
        let (port, sp) = inflate(&template(), &resources(), &Configuration::phone_portrait());
        let (land, sl) = inflate(&template(), &resources(), &Configuration::phone_landscape());
        let hero_p = port.find_by_id_name("hero").unwrap();
        let hero_l = land.find_by_id_name("hero").unwrap();
        assert_eq!(
            port.view(hero_p)
                .unwrap()
                .attrs
                .drawable
                .as_ref()
                .unwrap()
                .0,
            "hero_port.png"
        );
        assert_eq!(
            land.view(hero_l)
                .unwrap()
                .attrs
                .drawable
                .as_ref()
                .unwrap()
                .0,
            "hero_land.png"
        );
        assert_eq!(sp.drawable_bytes, 1_000);
        assert_eq!(sl.drawable_bytes, 2_000);
    }

    #[test]
    fn literal_attributes_pass_through() {
        let t = LayoutTemplate::new(
            "lit",
            LayoutNode::new("LinearLayout")
                .with_child(LayoutNode::new("TextView").with_attr("text", "literal")),
        );
        let (tree, stats) = inflate(&t, &ResourceTable::new(), &Configuration::phone_portrait());
        let ids = tree.iter_ids();
        let text_view = ids.last().copied().unwrap();
        assert_eq!(
            tree.view(text_view).unwrap().attrs.text.as_deref(),
            Some("literal")
        );
        assert_eq!(stats.strings_resolved, 0);
    }

    #[test]
    fn missing_resource_falls_back_to_literal() {
        let t = LayoutTemplate::new(
            "miss",
            LayoutNode::new("FrameLayout")
                .with_child(LayoutNode::new("TextView").with_attr("text", "@string/nope")),
        );
        let (tree, _) = inflate(&t, &ResourceTable::new(), &Configuration::phone_portrait());
        let leaf = *tree.iter_ids().last().unwrap();
        assert_eq!(
            tree.view(leaf).unwrap().attrs.text.as_deref(),
            Some("@string/nope")
        );
    }

    #[test]
    fn lenient_inflation_skips_children_of_leaf_views() {
        let t = LayoutTemplate::new(
            "bad",
            LayoutNode::new("LinearLayout").with_children([
                LayoutNode::new("TextView")
                    .with_id("leaf")
                    .with_child(LayoutNode::new("Button").with_id("orphan")),
                LayoutNode::new("TextView").with_id("after"),
            ]),
        );
        let (tree, stats) = inflate(&t, &ResourceTable::new(), &Configuration::phone_portrait());
        assert!(tree.find_by_id_name("leaf").is_some());
        assert!(tree.find_by_id_name("after").is_some(), "siblings survive");
        assert!(tree.find_by_id_name("orphan").is_none(), "subtree dropped");
        assert_eq!(stats.views_created, 3);
    }

    #[test]
    fn strict_inflation_rejects_children_of_leaf_views() {
        let t = LayoutTemplate::new(
            "bad",
            LayoutNode::new("TextView").with_child(LayoutNode::new("Button")),
        );
        let err = try_inflate(&t, &ResourceTable::new(), &Configuration::phone_portrait());
        assert!(matches!(err, Err(ViewError::NotAContainer { .. })));
    }

    #[test]
    fn strict_inflation_matches_lenient_on_well_formed_templates() {
        let (lenient, ls) = inflate(&template(), &resources(), &Configuration::phone_portrait());
        let (strict, ss) = try_inflate(&template(), &resources(), &Configuration::phone_portrait())
            .expect("well-formed");
        assert_eq!(ls, ss);
        assert_eq!(lenient.view_count(), strict.view_count());
    }

    #[test]
    fn memoized_inflation_is_bit_identical_to_cold() {
        let t = template();
        let r = resources();
        let config = Configuration::phone_portrait();
        let cold = {
            let was = memo::enabled();
            memo::set_enabled(false);
            let v = inflate(&t, &r, &config);
            memo::set_enabled(was);
            v
        };
        // Repeat enough times to pass three-touch admission and hit.
        for _ in 0..4 {
            let warm = inflate(&t, &r, &config);
            assert_eq!(warm.0, cold.0, "trees identical");
            assert_eq!(warm.1, cold.1, "stats identical");
        }
        for _ in 0..4 {
            let warm = try_inflate(&t, &r, &config).expect("well-formed");
            assert_eq!(warm.0, cold.0);
            assert_eq!(warm.1, cold.1);
        }
    }

    #[test]
    fn lenient_cache_entries_never_answer_strict_probes() {
        let bad = LayoutTemplate::new(
            "bad-memo",
            LayoutNode::new("TextView")
                .with_id("leaf-memo")
                .with_child(LayoutNode::new("Button").with_id("orphan-memo")),
        );
        let r = ResourceTable::new();
        let config = Configuration::phone_portrait();
        // Warm the lenient side of the key space thoroughly…
        for _ in 0..4 {
            let (tree, _) = inflate(&bad, &r, &config);
            assert!(tree.find_by_id_name("orphan-memo").is_none());
        }
        // …and the strict side must still reject every time.
        for _ in 0..4 {
            let err = try_inflate(&bad, &r, &config);
            assert!(matches!(err, Err(ViewError::NotAContainer { .. })));
        }
    }

    #[test]
    fn progress_attr_parses() {
        let (tree, _) = inflate(&template(), &resources(), &Configuration::phone_portrait());
        let bar = tree.find_by_id_name("bar").unwrap();
        assert_eq!(tree.view(bar).unwrap().attrs.progress, Some(30));
    }
}
