//! View-system errors, including the two crash exceptions from the paper's
//! motivation (Fig. 1): `NullPointerException` and `WindowLeakedException`.

use crate::tree::ViewId;
use core::fmt;

/// Errors raised by view-tree operations.
///
/// `NullPointer` and `WindowLeaked` model the exceptions that crash apps
/// when an asynchronous task returns after a restarting-based runtime
/// change has released the view tree (§2.3 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// The view id does not exist in this tree.
    UnknownView(ViewId),
    /// The target tree has been released (activity destroyed); touching any
    /// view dereferences null — crashes the app on stock Android.
    NullPointer {
        /// The view the callback tried to update.
        view: ViewId,
    },
    /// A window-scoped resource (dialog, video surface) outlived its
    /// activity's window.
    WindowLeaked {
        /// The offending view.
        view: ViewId,
    },
    /// Attempt to add a child to a non-container view.
    NotAContainer {
        /// The would-be parent.
        parent: ViewId,
    },
    /// An operation that does not apply to the view's kind (e.g.
    /// `SetProgress` on a `TextView`). Android silently ignores some of
    /// these; the simulator surfaces them so tests can assert policy
    /// dispatch is exact.
    InapplicableOp {
        /// Target view.
        view: ViewId,
        /// Operation name.
        op: &'static str,
    },
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::UnknownView(v) => write!(f, "unknown view {v}"),
            ViewError::NullPointer { view } => {
                write!(
                    f,
                    "java.lang.NullPointerException: view {view} of a destroyed activity"
                )
            }
            ViewError::WindowLeaked { view } => {
                write!(
                    f,
                    "android.view.WindowLeaked: view {view} outlived its window"
                )
            }
            ViewError::NotAContainer { parent } => {
                write!(f, "view {parent} is not a view group")
            }
            ViewError::InapplicableOp { view, op } => {
                write!(f, "operation {op} does not apply to view {view}")
            }
        }
    }
}

impl std::error::Error for ViewError {}

impl ViewError {
    /// Whether this error crashes the app (uncaught exception) under stock
    /// Android semantics.
    pub fn is_crash(&self) -> bool {
        matches!(
            self,
            ViewError::NullPointer { .. } | ViewError::WindowLeaked { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_classification() {
        assert!(ViewError::NullPointer {
            view: ViewId::new(1)
        }
        .is_crash());
        assert!(ViewError::WindowLeaked {
            view: ViewId::new(1)
        }
        .is_crash());
        assert!(!ViewError::UnknownView(ViewId::new(1)).is_crash());
        assert!(!ViewError::NotAContainer {
            parent: ViewId::new(1)
        }
        .is_crash());
    }

    #[test]
    fn display_mentions_java_exception() {
        let e = ViewError::NullPointer {
            view: ViewId::new(3),
        };
        assert!(e.to_string().contains("NullPointerException"));
    }
}
