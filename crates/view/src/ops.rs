//! View mutations.
//!
//! App callbacks are black boxes to the framework; what the framework *can*
//! see is the stream of concrete mutations they apply to views. [`ViewOp`]
//! is that vocabulary. Applying an op updates the view's attributes and
//! triggers `invalidate` — the generic update step RCHDroid's lazy
//! migration intercepts.

use serde::{Deserialize, Serialize};

/// A single mutation of one view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ViewOp {
    /// Set displayed text (TextView family).
    SetText(String),
    /// Set the drawable: asset name + decoded byte size (ImageView).
    SetDrawable(String, u64),
    /// Set the selector position (AbsListView family).
    SetSelection(i32),
    /// Mark an item checked/unchecked (AbsListView family).
    SetItemChecked(i32, bool),
    /// Scroll to a vertical offset.
    ScrollTo(i32),
    /// Set the video source (VideoView).
    SetVideoUri(String),
    /// Set progress (ProgressBar family).
    SetProgress(i32),
    /// Set the two-state checked flag (CheckBox).
    SetChecked(bool),
    /// Enable or disable the view.
    SetEnabled(bool),
    /// Show or hide the view.
    SetVisible(bool),
}

impl ViewOp {
    /// Short name used in traces and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            ViewOp::SetText(_) => "setText",
            ViewOp::SetDrawable(..) => "setDrawable",
            ViewOp::SetSelection(_) => "positionSelector",
            ViewOp::SetItemChecked(..) => "setItemChecked",
            ViewOp::ScrollTo(_) => "scrollTo",
            ViewOp::SetVideoUri(_) => "setVideoURI",
            ViewOp::SetProgress(_) => "setProgress",
            ViewOp::SetChecked(_) => "setChecked",
            ViewOp::SetEnabled(_) => "setEnabled",
            ViewOp::SetVisible(_) => "setVisibility",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_android_setters() {
        assert_eq!(ViewOp::SetText("x".into()).name(), "setText");
        assert_eq!(ViewOp::SetDrawable("d".into(), 1).name(), "setDrawable");
        assert_eq!(ViewOp::SetVideoUri("u".into()).name(), "setVideoURI");
        assert_eq!(ViewOp::SetProgress(5).name(), "setProgress");
    }
}
