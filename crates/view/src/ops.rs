//! View mutations.
//!
//! App callbacks are black boxes to the framework; what the framework *can*
//! see is the stream of concrete mutations they apply to views. [`ViewOp`]
//! is that vocabulary. Applying an op updates the view's attributes and
//! triggers `invalidate` — the generic update step RCHDroid's lazy
//! migration intercepts.

use crate::kind::MigrationClass;
use serde::{Deserialize, Serialize};

/// A single mutation of one view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ViewOp {
    /// Set displayed text (TextView family).
    SetText(String),
    /// Set the drawable: asset name + decoded byte size (ImageView).
    SetDrawable(String, u64),
    /// Set the selector position (AbsListView family).
    SetSelection(i32),
    /// Mark an item checked/unchecked (AbsListView family).
    SetItemChecked(i32, bool),
    /// Scroll to a vertical offset.
    ScrollTo(i32),
    /// Set the video source (VideoView).
    SetVideoUri(String),
    /// Set progress (ProgressBar family).
    SetProgress(i32),
    /// Set the two-state checked flag (CheckBox).
    SetChecked(bool),
    /// Enable or disable the view.
    SetEnabled(bool),
    /// Show or hide the view.
    SetVisible(bool),
}

impl ViewOp {
    /// Short name used in traces and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            ViewOp::SetText(_) => "setText",
            ViewOp::SetDrawable(..) => "setDrawable",
            ViewOp::SetSelection(_) => "positionSelector",
            ViewOp::SetItemChecked(..) => "setItemChecked",
            ViewOp::ScrollTo(_) => "scrollTo",
            ViewOp::SetVideoUri(_) => "setVideoURI",
            ViewOp::SetProgress(_) => "setProgress",
            ViewOp::SetChecked(_) => "setChecked",
            ViewOp::SetEnabled(_) => "setEnabled",
            ViewOp::SetVisible(_) => "setVisibility",
        }
    }

    /// Whether this mutation applies to a view of the given migration
    /// class — the paper's Table 1, as one predicate.
    ///
    /// [`crate::ViewTree::apply`] rejects an inapplicable op at runtime;
    /// the static analyzer uses the same predicate to flag async writes
    /// that lazy migration could never carry (its "Table-1 coverage"
    /// pass), so the two can never disagree.
    pub fn applies_to(&self, class: MigrationClass) -> bool {
        match (self, class) {
            (ViewOp::SetText(_), MigrationClass::TextView) => true,
            (ViewOp::SetChecked(_), MigrationClass::TextView) => true, // CheckBox
            (ViewOp::SetDrawable(..), MigrationClass::ImageView) => true,
            (ViewOp::SetSelection(_) | ViewOp::SetItemChecked(..), MigrationClass::AbsListView) => {
                true
            }
            (ViewOp::ScrollTo(_), MigrationClass::AbsListView | MigrationClass::Container) => true,
            (ViewOp::SetVideoUri(_), MigrationClass::VideoView) => true,
            (ViewOp::SetProgress(_), MigrationClass::ProgressBar) => true,
            (ViewOp::SetEnabled(_) | ViewOp::SetVisible(_), _) => true,
            _ => false,
        }
    }

    /// The dirty bit this mutation sets on its view.
    pub fn dirty_bit(&self) -> DirtyMask {
        match self {
            ViewOp::SetText(_) => DirtyMask::TEXT,
            ViewOp::SetDrawable(..) => DirtyMask::DRAWABLE,
            ViewOp::SetSelection(_) => DirtyMask::SELECTION,
            ViewOp::SetItemChecked(..) => DirtyMask::CHECKED_ITEMS,
            ViewOp::ScrollTo(_) => DirtyMask::SCROLL,
            ViewOp::SetVideoUri(_) => DirtyMask::VIDEO_URI,
            ViewOp::SetProgress(_) => DirtyMask::PROGRESS,
            ViewOp::SetChecked(_) => DirtyMask::CHECKED,
            ViewOp::SetEnabled(_) => DirtyMask::ENABLED,
            ViewOp::SetVisible(_) => DirtyMask::VISIBLE,
        }
    }
}

/// A bitset of view attributes touched since the last migration flush.
///
/// Each [`ViewOp`] variant maps to one bit ([`ViewOp::dirty_bit`]).
/// Repeated invalidations of the same view OR their bits together, which
/// is what lets the batched migration path coalesce a burst of updates
/// into a single essence copy while still reporting exactly which
/// attributes changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DirtyMask(u16);

impl DirtyMask {
    /// `text` changed.
    pub const TEXT: DirtyMask = DirtyMask(1 << 0);
    /// `drawable` changed.
    pub const DRAWABLE: DirtyMask = DirtyMask(1 << 1);
    /// `selector_position` changed.
    pub const SELECTION: DirtyMask = DirtyMask(1 << 2);
    /// `checked_items` changed.
    pub const CHECKED_ITEMS: DirtyMask = DirtyMask(1 << 3);
    /// `scroll_y` changed.
    pub const SCROLL: DirtyMask = DirtyMask(1 << 4);
    /// `video_uri` changed.
    pub const VIDEO_URI: DirtyMask = DirtyMask(1 << 5);
    /// `progress` changed.
    pub const PROGRESS: DirtyMask = DirtyMask(1 << 6);
    /// `checked` changed.
    pub const CHECKED: DirtyMask = DirtyMask(1 << 7);
    /// `enabled` changed.
    pub const ENABLED: DirtyMask = DirtyMask(1 << 8);
    /// `visible` changed.
    pub const VISIBLE: DirtyMask = DirtyMask(1 << 9);

    /// No attribute marked.
    pub const fn empty() -> DirtyMask {
        DirtyMask(0)
    }

    /// Every attribute marked — what a bare `invalidate()` implies, since
    /// it carries no information about *what* changed.
    pub const fn all() -> DirtyMask {
        DirtyMask((1 << 10) - 1)
    }

    /// Whether no bit is set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether every bit in `other` is also set in `self`.
    pub const fn contains(self, other: DirtyMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Number of distinct attributes marked dirty.
    pub const fn attr_count(self) -> u32 {
        self.0.count_ones()
    }

    /// Raw bit representation (stable across runs; used by metrics).
    pub const fn bits(self) -> u16 {
        self.0
    }
}

impl std::ops::BitOr for DirtyMask {
    type Output = DirtyMask;

    fn bitor(self, rhs: DirtyMask) -> DirtyMask {
        DirtyMask(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for DirtyMask {
    fn bitor_assign(&mut self, rhs: DirtyMask) {
        self.0 |= rhs.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_android_setters() {
        assert_eq!(ViewOp::SetText("x".into()).name(), "setText");
        assert_eq!(ViewOp::SetDrawable("d".into(), 1).name(), "setDrawable");
        assert_eq!(ViewOp::SetVideoUri("u".into()).name(), "setVideoURI");
        assert_eq!(ViewOp::SetProgress(5).name(), "setProgress");
    }

    #[test]
    fn each_op_sets_a_distinct_bit() {
        let ops = [
            ViewOp::SetText("x".into()),
            ViewOp::SetDrawable("d".into(), 1),
            ViewOp::SetSelection(0),
            ViewOp::SetItemChecked(0, true),
            ViewOp::ScrollTo(0),
            ViewOp::SetVideoUri("u".into()),
            ViewOp::SetProgress(0),
            ViewOp::SetChecked(true),
            ViewOp::SetEnabled(true),
            ViewOp::SetVisible(true),
        ];
        let mut union = DirtyMask::empty();
        for op in &ops {
            let bit = op.dirty_bit();
            assert_eq!(bit.attr_count(), 1);
            assert!(!union.contains(bit), "{} reuses a bit", op.name());
            union |= bit;
        }
        assert_eq!(union, DirtyMask::all());
    }

    #[test]
    fn masks_coalesce_with_bitor() {
        let mut m = DirtyMask::empty();
        assert!(m.is_empty());
        m |= DirtyMask::TEXT;
        m |= DirtyMask::TEXT;
        m |= DirtyMask::SCROLL;
        assert_eq!(m.attr_count(), 2);
        assert!(m.contains(DirtyMask::TEXT));
        assert!(!m.contains(DirtyMask::PROGRESS));
        assert!(DirtyMask::all().contains(m));
    }
}
