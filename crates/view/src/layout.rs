//! The measure/layout pass: computing view geometry for a screen size.
//!
//! Runtime changes exist because geometry depends on the configuration:
//! after a rotation, every view must be re-measured and re-positioned for
//! the new screen. The paper's motivation calls the failure mode "mess up
//! the display" — views laid out for the old screen drawn on the new one.
//! This module computes concrete rectangles so that staleness is
//! observable: a tree laid out for portrait and shown on landscape has
//! views outside the screen bounds, which tests can assert.
//!
//! The algorithm is a simplified Android pass:
//!
//! * `LinearLayout` stacks children vertically, each child getting the
//!   full width and an equal share of the remaining height,
//! * `GridLayout` arranges children in rows of `ceil(sqrt(n))` columns,
//! * `FrameLayout`/`ConstraintLayout`/`DecorView` give every child the
//!   full content box,
//! * scrolling containers translate children by the scroll offset,
//! * leaves fill whatever box their parent assigned.

use crate::kind::ViewKind;
use crate::tree::{ViewId, ViewTree};
use droidsim_config::ScreenSize;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A view's computed rectangle, in px relative to the screen origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x: i32,
    /// Top edge.
    pub y: i32,
    /// Width.
    pub width: u32,
    /// Height.
    pub height: u32,
}

impl Rect {
    /// A rectangle at the origin with the given size.
    pub const fn sized(width: u32, height: u32) -> Rect {
        Rect {
            x: 0,
            y: 0,
            width,
            height,
        }
    }

    /// Whether `self` lies fully inside `outer`.
    pub fn fits_inside(&self, outer: &Rect) -> bool {
        self.x >= outer.x
            && self.y >= outer.y
            && self.x + self.width as i32 <= outer.x + outer.width as i32
            && self.y + self.height as i32 <= outer.y + outer.height as i32
    }

    /// The rectangle's area.
    pub fn area(&self) -> u64 {
        self.width as u64 * self.height as u64
    }
}

/// The result of one layout pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutResult {
    /// The screen the pass was computed for.
    pub screen: ScreenSize,
    rects: HashMap<ViewId, Rect>,
}

impl LayoutResult {
    /// The rectangle assigned to a view (visible views only).
    pub fn rect(&self, view: ViewId) -> Option<Rect> {
        self.rects.get(&view).copied()
    }

    /// Number of views positioned.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Whether no views were positioned.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Views whose rectangles stick out of the screen — the observable
    /// "messed up display" signal. Scrolled-out content is expected;
    /// callers interested in scroll effects filter on containers.
    pub fn out_of_bounds(&self) -> Vec<ViewId> {
        let screen = Rect::sized(self.screen.width_dp, self.screen.height_dp);
        let mut out: Vec<ViewId> = self
            .rects
            .iter()
            .filter(|(_, r)| !r.fits_inside(&screen))
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }
}

/// Runs a measure/layout pass over `tree` for `screen`.
///
/// Invisible views (and their subtrees) are skipped, like Android's
/// `GONE`. Returns the rectangle of every laid-out view.
pub fn layout(tree: &ViewTree, screen: ScreenSize) -> LayoutResult {
    let mut result = LayoutResult {
        screen,
        rects: HashMap::with_capacity(tree.view_count()),
    };
    let root_rect = Rect::sized(screen.width_dp, screen.height_dp);
    if tree.view(tree.root()).is_ok() {
        place(tree, tree.root(), root_rect, &mut result);
    }
    result
}

fn place(tree: &ViewTree, id: ViewId, rect: Rect, result: &mut LayoutResult) {
    let Ok(node) = tree.view(id) else { return };
    if !node.attrs.visible {
        return;
    }
    result.rects.insert(id, rect);
    let children: Vec<ViewId> = node
        .children
        .iter()
        .copied()
        .filter(|&c| tree.view(c).is_ok_and(|n| n.attrs.visible))
        .collect();
    if children.is_empty() {
        return;
    }
    let scroll = node.attrs.scroll_y;
    match &node.kind {
        ViewKind::LinearLayout | ViewKind::ListView => {
            let slice = (rect.height / children.len() as u32).max(1);
            for (i, child) in children.iter().enumerate() {
                let child_rect = Rect {
                    x: rect.x,
                    y: rect.y + (i as u32 * slice) as i32 - scroll,
                    width: rect.width,
                    height: slice,
                };
                place(tree, *child, child_rect, result);
            }
        }
        ViewKind::GridLayout | ViewKind::GridView => {
            let cols = (children.len() as f64).sqrt().ceil().max(1.0) as u32;
            let n = children.len() as u32;
            let rows = n / cols + u32::from(!n.is_multiple_of(cols));
            let cell_w = (rect.width / cols).max(1);
            let cell_h = (rect.height / rows.max(1)).max(1);
            for (i, child) in children.iter().enumerate() {
                let (row, col) = (i as u32 / cols, i as u32 % cols);
                let child_rect = Rect {
                    x: rect.x + (col * cell_w) as i32,
                    y: rect.y + (row * cell_h) as i32 - scroll,
                    width: cell_w,
                    height: cell_h,
                };
                place(tree, *child, child_rect, result);
            }
        }
        _ => {
            // Frame-like containers: every child gets the content box.
            for child in children {
                let child_rect = Rect {
                    x: rect.x,
                    y: rect.y - scroll,
                    width: rect.width,
                    height: rect.height,
                };
                place(tree, child, child_rect, result);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ViewOp;

    fn column_tree(n: usize) -> (ViewTree, Vec<ViewId>) {
        let mut t = ViewTree::new();
        let root = t
            .add_view(t.root(), ViewKind::LinearLayout, Some("root"))
            .unwrap();
        let children: Vec<ViewId> = (0..n)
            .map(|i| {
                t.add_view(root, ViewKind::ImageView, Some(&format!("v{i}")))
                    .unwrap()
            })
            .collect();
        (t, children)
    }

    #[test]
    fn linear_layout_stacks_vertically() {
        let (t, children) = column_tree(4);
        let result = layout(&t, ScreenSize::new(1080, 1920));
        let rects: Vec<Rect> = children.iter().map(|&c| result.rect(c).unwrap()).collect();
        for r in &rects {
            assert_eq!(r.width, 1080, "children get full width");
            assert_eq!(r.height, 480, "equal shares of the height");
        }
        assert!(rects.windows(2).all(|w| w[1].y == w[0].y + 480), "stacked");
        assert!(result.out_of_bounds().is_empty());
    }

    #[test]
    fn grid_layout_tiles() {
        let mut t = ViewTree::new();
        let root = t
            .add_view(t.root(), ViewKind::GridLayout, Some("root"))
            .unwrap();
        let children: Vec<ViewId> = (0..4)
            .map(|i| {
                t.add_view(root, ViewKind::ImageView, Some(&format!("v{i}")))
                    .unwrap()
            })
            .collect();
        let result = layout(&t, ScreenSize::new(1000, 1000));
        // 4 children → 2×2 grid of 500×500 cells.
        let rects: Vec<Rect> = children.iter().map(|&c| result.rect(c).unwrap()).collect();
        assert!(rects.iter().all(|r| r.width == 500 && r.height == 500));
        let positions: std::collections::HashSet<(i32, i32)> =
            rects.iter().map(|r| (r.x, r.y)).collect();
        assert_eq!(positions.len(), 4, "no overlap");
    }

    #[test]
    fn relayout_for_the_new_screen_fits_again() {
        // The runtime-change essence: portrait geometry does not fit the
        // landscape screen; a fresh pass for the new screen does.
        let (t, _) = column_tree(3);
        let portrait = layout(&t, ScreenSize::new(1080, 1920));
        assert!(portrait.out_of_bounds().is_empty());

        // Stale: portrait rects checked against the landscape screen.
        let stale = LayoutResult {
            screen: ScreenSize::new(1920, 1080),
            ..portrait.clone()
        };
        assert!(!stale.out_of_bounds().is_empty(), "the messed-up display");

        let fresh = layout(&t, ScreenSize::new(1920, 1080));
        assert!(fresh.out_of_bounds().is_empty());
    }

    #[test]
    fn invisible_subtrees_are_skipped() {
        let (mut t, children) = column_tree(3);
        t.apply(children[1], ViewOp::SetVisible(false)).unwrap();
        let result = layout(&t, ScreenSize::new(1080, 1920));
        assert!(result.rect(children[1]).is_none());
        // The remaining two children split the space.
        assert_eq!(result.rect(children[0]).unwrap().height, 960);
    }

    #[test]
    fn scroll_translates_children() {
        let (mut t, children) = column_tree(4);
        let root = t.find_by_id_name("root").unwrap();
        t.apply(root, ViewOp::ScrollTo(480)).unwrap();
        let result = layout(&t, ScreenSize::new(1080, 1920));
        // The first child scrolled off the top.
        assert_eq!(result.rect(children[0]).unwrap().y, -480);
        assert!(result.out_of_bounds().contains(&children[0]));
    }

    #[test]
    fn rect_geometry_helpers() {
        let outer = Rect::sized(100, 100);
        assert!(Rect {
            x: 10,
            y: 10,
            width: 50,
            height: 50
        }
        .fits_inside(&outer));
        assert!(!Rect {
            x: 60,
            y: 60,
            width: 50,
            height: 50
        }
        .fits_inside(&outer));
        assert_eq!(outer.area(), 10_000);
    }

    #[test]
    fn empty_tree_lays_out_just_the_decor() {
        let t = ViewTree::new();
        let result = layout(&t, ScreenSize::new(500, 500));
        assert_eq!(result.len(), 1);
        assert_eq!(result.rect(t.root()).unwrap(), Rect::sized(500, 500));
    }
}
