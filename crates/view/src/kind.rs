//! The view type hierarchy of Table 1.

use core::fmt;
use serde::{Deserialize, Serialize};

/// The *basic* view classes the paper's migration policy dispatches on
/// (Table 1). Every concrete view kind maps to exactly one of these (or to
/// [`MigrationClass::Container`] / [`MigrationClass::Opaque`] for view
/// groups and unknown leaves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationClass {
    /// Displays text to the user → migrate via `setText`.
    TextView,
    /// Displays image resources → migrate via `setDrawable`.
    ImageView,
    /// Scrollable collection of views → migrate selector position and
    /// checked items (`positionSelector`, `setItemChecked`).
    AbsListView,
    /// Displays a video file → migrate via `setVideoURI`.
    VideoView,
    /// Indicates progress of an operation → migrate via `setProgress`.
    ProgressBar,
    /// A view group: migrated structurally (children handled individually).
    Container,
    /// A leaf with no migratable essence (e.g. a plain `View` divider).
    Opaque,
}

impl fmt::Display for MigrationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MigrationClass::TextView => "TextView",
            MigrationClass::ImageView => "ImageView",
            MigrationClass::AbsListView => "AbsListView",
            MigrationClass::VideoView => "VideoView",
            MigrationClass::ProgressBar => "ProgressBar",
            MigrationClass::Container => "Container",
            MigrationClass::Opaque => "Opaque",
        };
        write!(f, "{name}")
    }
}

/// A concrete view class.
///
/// The sub-typing mirrors Android: `EditText`/`Button`/`CheckBox` are
/// TextViews, `ListView`/`GridView`/`ScrollView` are AbsListViews (the
/// paper groups ScrollView there), `SeekBar` is a ProgressBar. User-defined
/// views carry the basic class they inherit from, which is how the paper
/// migrates them ("User-defined views … will also be migrated according to
/// the types they belong to").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViewKind {
    /// Plain `android.view.View` (dividers, spacers).
    View,
    /// Static text display.
    TextView,
    /// Editable text input.
    EditText,
    /// A push button.
    Button,
    /// A two-state checkbox.
    CheckBox,
    /// An image display.
    ImageView,
    /// A vertically scrolling list.
    ListView,
    /// A grid of items.
    GridView,
    /// A scrollable single-child container.
    ScrollView,
    /// A video player surface.
    VideoView,
    /// A determinate progress indicator.
    ProgressBar,
    /// A draggable progress indicator.
    SeekBar,
    /// Vertical/horizontal box container.
    LinearLayout,
    /// Single-cell container.
    FrameLayout,
    /// Row/column container.
    GridLayout,
    /// Constraint-based container.
    ConstraintLayout,
    /// The window root view group.
    DecorView,
    /// An app-defined view inheriting from a basic class.
    Custom {
        /// The app's class name (diagnostics only).
        class_name: String,
        /// The basic class it inherits from.
        base: MigrationClass,
    },
}

impl ViewKind {
    /// The basic class used to choose a migration policy (Table 1).
    pub fn migration_class(&self) -> MigrationClass {
        match self {
            ViewKind::TextView | ViewKind::EditText | ViewKind::Button | ViewKind::CheckBox => {
                MigrationClass::TextView
            }
            ViewKind::ImageView => MigrationClass::ImageView,
            ViewKind::ListView | ViewKind::GridView | ViewKind::ScrollView => {
                MigrationClass::AbsListView
            }
            ViewKind::VideoView => MigrationClass::VideoView,
            ViewKind::ProgressBar | ViewKind::SeekBar => MigrationClass::ProgressBar,
            ViewKind::LinearLayout
            | ViewKind::FrameLayout
            | ViewKind::GridLayout
            | ViewKind::ConstraintLayout
            | ViewKind::DecorView => MigrationClass::Container,
            ViewKind::View => MigrationClass::Opaque,
            ViewKind::Custom { base, .. } => *base,
        }
    }

    /// Whether the view's text is *user input* rather than content set by
    /// the app/resources — Android's `freezesText` behaviour: `EditText`
    /// persists its text across save/restore, plain labels do not.
    pub fn is_editable(&self) -> bool {
        match self {
            ViewKind::EditText | ViewKind::CheckBox | ViewKind::SeekBar => true,
            ViewKind::Custom { class_name, .. } => class_name.ends_with("EditText"),
            _ => false,
        }
    }

    /// Whether this kind can hold children.
    pub fn is_container(&self) -> bool {
        self.migration_class() == MigrationClass::Container
            // ScrollView is a container in Android even though the paper
            // migrates it with the AbsListView policy.
            || matches!(self, ViewKind::ScrollView | ViewKind::ListView | ViewKind::GridView)
    }

    /// Resolves an XML class name to a kind, as the inflater does.
    /// Unrecognised names become [`ViewKind::Custom`] with an
    /// [`MigrationClass::Opaque`] base unless a known suffix identifies the
    /// parent class (e.g. `com.app.FancyTextView` → TextView base).
    pub fn from_class_name(name: &str) -> ViewKind {
        match name {
            "View" => ViewKind::View,
            "TextView" => ViewKind::TextView,
            "EditText" => ViewKind::EditText,
            "Button" => ViewKind::Button,
            "CheckBox" => ViewKind::CheckBox,
            "ImageView" => ViewKind::ImageView,
            "ListView" => ViewKind::ListView,
            "GridView" => ViewKind::GridView,
            "ScrollView" => ViewKind::ScrollView,
            "VideoView" => ViewKind::VideoView,
            "ProgressBar" => ViewKind::ProgressBar,
            "SeekBar" => ViewKind::SeekBar,
            "LinearLayout" => ViewKind::LinearLayout,
            "FrameLayout" => ViewKind::FrameLayout,
            "GridLayout" => ViewKind::GridLayout,
            "ConstraintLayout" => ViewKind::ConstraintLayout,
            other => {
                let base = if other.ends_with("TextView")
                    || other.ends_with("EditText")
                    || other.ends_with("Button")
                    || other.ends_with("CheckBox")
                {
                    MigrationClass::TextView
                } else if other.ends_with("ImageView") {
                    MigrationClass::ImageView
                } else if other.ends_with("ListView") || other.ends_with("GridView") {
                    MigrationClass::AbsListView
                } else if other.ends_with("VideoView") {
                    MigrationClass::VideoView
                } else if other.ends_with("ProgressBar") || other.ends_with("SeekBar") {
                    MigrationClass::ProgressBar
                } else if other.ends_with("Layout") {
                    MigrationClass::Container
                } else {
                    MigrationClass::Opaque
                };
                ViewKind::Custom {
                    class_name: other.to_owned(),
                    base,
                }
            }
        }
    }

    /// Short class name (for `Display` and traces).
    pub fn class_name(&self) -> &str {
        match self {
            ViewKind::View => "View",
            ViewKind::TextView => "TextView",
            ViewKind::EditText => "EditText",
            ViewKind::Button => "Button",
            ViewKind::CheckBox => "CheckBox",
            ViewKind::ImageView => "ImageView",
            ViewKind::ListView => "ListView",
            ViewKind::GridView => "GridView",
            ViewKind::ScrollView => "ScrollView",
            ViewKind::VideoView => "VideoView",
            ViewKind::ProgressBar => "ProgressBar",
            ViewKind::SeekBar => "SeekBar",
            ViewKind::LinearLayout => "LinearLayout",
            ViewKind::FrameLayout => "FrameLayout",
            ViewKind::GridLayout => "GridLayout",
            ViewKind::ConstraintLayout => "ConstraintLayout",
            ViewKind::DecorView => "DecorView",
            ViewKind::Custom { class_name, .. } => class_name,
        }
    }
}

impl fmt::Display for ViewKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.class_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_policy_dispatch() {
        assert_eq!(
            ViewKind::EditText.migration_class(),
            MigrationClass::TextView
        );
        assert_eq!(ViewKind::Button.migration_class(), MigrationClass::TextView);
        assert_eq!(
            ViewKind::ImageView.migration_class(),
            MigrationClass::ImageView
        );
        assert_eq!(
            ViewKind::ScrollView.migration_class(),
            MigrationClass::AbsListView
        );
        assert_eq!(
            ViewKind::GridView.migration_class(),
            MigrationClass::AbsListView
        );
        assert_eq!(
            ViewKind::VideoView.migration_class(),
            MigrationClass::VideoView
        );
        assert_eq!(
            ViewKind::SeekBar.migration_class(),
            MigrationClass::ProgressBar
        );
    }

    #[test]
    fn containers_are_containers() {
        assert!(ViewKind::LinearLayout.is_container());
        assert!(ViewKind::DecorView.is_container());
        assert!(ViewKind::ScrollView.is_container());
        assert!(!ViewKind::TextView.is_container());
    }

    #[test]
    fn class_name_resolution_known() {
        assert_eq!(ViewKind::from_class_name("Button"), ViewKind::Button);
        assert_eq!(
            ViewKind::from_class_name("GridLayout"),
            ViewKind::GridLayout
        );
    }

    #[test]
    fn custom_views_inherit_base_class() {
        let fancy = ViewKind::from_class_name("com.app.FancyTextView");
        assert_eq!(fancy.migration_class(), MigrationClass::TextView);
        let grid = ViewKind::from_class_name("com.app.PhotoGridView");
        assert_eq!(grid.migration_class(), MigrationClass::AbsListView);
        let unknown = ViewKind::from_class_name("com.app.Sparkline");
        assert_eq!(unknown.migration_class(), MigrationClass::Opaque);
    }

    #[test]
    fn custom_layout_is_container() {
        let k = ViewKind::from_class_name("com.app.FlowLayout");
        assert_eq!(k.migration_class(), MigrationClass::Container);
        assert!(k.is_container());
    }

    #[test]
    fn display_prints_class_name() {
        assert_eq!(ViewKind::TextView.to_string(), "TextView");
        let custom = ViewKind::from_class_name("com.app.X");
        assert_eq!(custom.to_string(), "com.app.X");
    }
}
