//! The view system: trees of typed views with Android semantics.
//!
//! This crate models the part of the Android UI toolkit that RCHDroid's
//! view-tree migration (§3.3) manipulates:
//!
//! * [`ViewKind`] — the type hierarchy of Table 1 (TextView, ImageView,
//!   AbsListView, VideoView, ProgressBar and their subtypes), including
//!   user-defined views that inherit from a basic type,
//! * [`ViewTree`] — an arena of views rooted at a decor view, with
//!   parent/child structure, per-view attributes, and the `invalidate`
//!   mechanism (invalidations are *recorded* so a change handler can catch
//!   the generic update step, exactly the hook the paper adds),
//! * hierarchy state save/restore ([`ViewTree::save_hierarchy_state`] /
//!   [`ViewTree::restore_hierarchy_state`]) keyed by `android:id` names —
//!   views without ids silently lose state, the classic Android pitfall,
//! * an [`inflate`](crate::inflate::inflate) function that instantiates a
//!   [`LayoutTemplate`](droidsim_resources::LayoutTemplate) for a
//!   configuration, resolving `@string/…` and `@drawable/…` references,
//! * the shadow/sunny hook points the paper's 348-LoC patch adds to `View`
//!   and `ViewGroup` (a sunny-peer pointer and state-dispatch helpers).
//!
//! # Examples
//!
//! ```
//! use droidsim_view::{ViewKind, ViewOp, ViewTree};
//!
//! let mut tree = ViewTree::new();
//! let text = tree.add_view(tree.root(), ViewKind::TextView, Some("title")).unwrap();
//! tree.apply(text, ViewOp::SetText("hello".into())).unwrap();
//! assert_eq!(tree.view(text).unwrap().attrs.text.as_deref(), Some("hello"));
//! // The mutation was recorded as an invalidation — the hook RCHDroid uses.
//! assert_eq!(tree.drain_invalidations(), vec![text]);
//! ```

pub mod attrs;
pub mod error;
pub mod inflate;
pub mod kind;
pub mod layout;
pub mod ops;
pub mod tree;

pub use attrs::ViewAttrs;
pub use error::ViewError;
pub use inflate::{inflate, try_inflate, InflateStats};
pub use kind::{MigrationClass, ViewKind};
pub use layout::{layout, LayoutResult, Rect};
pub use ops::{DirtyMask, ViewOp};
pub use tree::{ViewId, ViewNode, ViewTree};
