//! Per-view attributes: the migratable "essence" of a view.

use droidsim_bundle::Bundle;
use serde::{Deserialize, Serialize};

/// A view's attribute set.
///
/// The fields cover what Table 1's migration policies move between trees
/// (text, drawable, selector position, checked items, video URI, progress)
/// plus scroll offset and checked state, which Android's view hierarchy
/// state saves. Fields irrelevant to a given view kind simply stay `None`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ViewAttrs {
    /// Displayed or entered text (TextView family).
    pub text: Option<String>,
    /// Drawable asset name and decoded byte size (ImageView).
    pub drawable: Option<(String, u64)>,
    /// Selector position (AbsListView family).
    pub selector_position: Option<i32>,
    /// Checked item positions (AbsListView family).
    pub checked_items: Vec<i32>,
    /// Scroll offset in px (scrolling views).
    pub scroll_y: i32,
    /// Video URI (VideoView).
    pub video_uri: Option<String>,
    /// Progress in `[0, max]` (ProgressBar family).
    pub progress: Option<i32>,
    /// Two-state checked flag (CheckBox).
    pub checked: Option<bool>,
    /// Whether the view is enabled.
    pub enabled: bool,
    /// Whether the view is visible.
    pub visible: bool,
}

impl ViewAttrs {
    /// Attributes of a freshly constructed view.
    pub fn new() -> Self {
        ViewAttrs {
            enabled: true,
            visible: true,
            ..ViewAttrs::default()
        }
    }

    /// Approximate heap footprint of this attribute set in bytes — the
    /// memory model charges drawables at their decoded size.
    pub fn heap_bytes(&self) -> u64 {
        let mut bytes = 64; // object header + scalar fields
        if let Some(t) = &self.text {
            bytes += t.len() as u64;
        }
        if let Some((name, decoded)) = &self.drawable {
            bytes += name.len() as u64 + decoded;
        }
        if let Some(u) = &self.video_uri {
            bytes += u.len() as u64;
        }
        bytes += self.checked_items.len() as u64 * 4;
        bytes
    }

    /// Saves the *user state* (what `View.onSaveInstanceState` persists:
    /// entered text, scroll, selection, checked state, progress — not
    /// static content like drawables) into a bundle.
    pub fn save_user_state(&self) -> Bundle {
        let mut b = Bundle::new();
        if let Some(t) = &self.text {
            b.put_string("text", t);
        }
        if let Some(p) = self.selector_position {
            b.put_i32("selector_position", p);
        }
        if !self.checked_items.is_empty() {
            b.put("checked_items", self.checked_items.clone());
        }
        if self.scroll_y != 0 {
            b.put_i32("scroll_y", self.scroll_y);
        }
        if let Some(p) = self.progress {
            b.put_i32("progress", p);
        }
        if let Some(c) = self.checked {
            b.put_bool("checked", c);
        }
        b
    }

    /// Restores user state saved by [`ViewAttrs::save_user_state`].
    /// Missing keys leave the current value untouched.
    pub fn restore_user_state(&mut self, state: &Bundle) {
        if let Some(t) = state.string("text") {
            self.text = Some(t.to_owned());
        }
        if let Some(p) = state.i32("selector_position") {
            self.selector_position = Some(p);
        }
        if let Some(droidsim_bundle::Value::I32List(items)) = state.get("checked_items") {
            self.checked_items = items.clone();
        }
        if let Some(s) = state.i32("scroll_y") {
            self.scroll_y = s;
        }
        if let Some(p) = state.i32("progress") {
            self.progress = Some(p);
        }
        if let Some(c) = state.bool("checked") {
            self.checked = Some(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_attrs() -> ViewAttrs {
        let mut a = ViewAttrs::new();
        a.text = Some("draft".to_owned());
        a.selector_position = Some(3);
        a.checked_items = vec![1, 2];
        a.scroll_y = 480;
        a.progress = Some(66);
        a.checked = Some(true);
        a
    }

    #[test]
    fn save_restore_round_trips_user_state() {
        let original = rich_attrs();
        let saved = original.save_user_state();
        let mut restored = ViewAttrs::new();
        restored.restore_user_state(&saved);
        assert_eq!(restored.text, original.text);
        assert_eq!(restored.selector_position, original.selector_position);
        assert_eq!(restored.checked_items, original.checked_items);
        assert_eq!(restored.scroll_y, original.scroll_y);
        assert_eq!(restored.progress, original.progress);
        assert_eq!(restored.checked, original.checked);
    }

    #[test]
    fn drawables_are_content_not_user_state() {
        let mut a = ViewAttrs::new();
        a.drawable = Some(("hero.png".to_owned(), 10_000));
        assert!(a.save_user_state().is_empty());
    }

    #[test]
    fn restore_leaves_unsaved_fields_alone() {
        let mut target = ViewAttrs::new();
        target.text = Some("keep me".to_owned());
        target.restore_user_state(&Bundle::new());
        assert_eq!(target.text.as_deref(), Some("keep me"));
    }

    #[test]
    fn heap_accounts_for_drawable_bytes() {
        let mut a = ViewAttrs::new();
        let base = a.heap_bytes();
        a.drawable = Some(("x.png".to_owned(), 1_000_000));
        assert!(a.heap_bytes() >= base + 1_000_000);
    }

    #[test]
    fn new_is_enabled_and_visible() {
        let a = ViewAttrs::new();
        assert!(a.enabled);
        assert!(a.visible);
        assert_eq!(a.scroll_y, 0);
    }
}
