//! Data-only layout templates.
//!
//! A [`LayoutTemplate`] is the model of a layout XML file: a tree of nodes,
//! each carrying a view *class name*, an optional id name, and string
//! attributes. The view crate's inflater resolves class names to concrete
//! view kinds at inflate time — mirroring how Android resolves XML tags —
//! so this crate stays free of any view-system dependency.

use droidsim_kernel::memo;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// One node of a layout template.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayoutNode {
    /// View class name, e.g. `"TextView"`, `"ImageView"`, `"LinearLayout"`.
    pub class: String,
    /// The `android:id` name, if the node has one. Views without ids cannot
    /// have their hierarchy state saved — the classic cause of state loss.
    pub id_name: Option<String>,
    /// Literal attributes (`text`, `src`, …). Values starting with `"@"`
    /// are resource references resolved at inflate time.
    pub attrs: BTreeMap<String, String>,
    /// Child nodes (only meaningful for view groups).
    pub children: Vec<LayoutNode>,
}

impl LayoutNode {
    /// Creates a leaf node of the given class.
    pub fn new(class: &str) -> Self {
        LayoutNode {
            class: class.to_owned(),
            id_name: None,
            attrs: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// Sets the id name.
    pub fn with_id(mut self, id_name: &str) -> Self {
        self.id_name = Some(id_name.to_owned());
        self
    }

    /// Adds an attribute.
    pub fn with_attr(mut self, key: &str, value: &str) -> Self {
        self.attrs.insert(key.to_owned(), value.to_owned());
        self
    }

    /// Adds a child node.
    pub fn with_child(mut self, child: LayoutNode) -> Self {
        self.children.push(child);
        self
    }

    /// Adds many child nodes.
    pub fn with_children(mut self, children: impl IntoIterator<Item = LayoutNode>) -> Self {
        self.children.extend(children);
        self
    }

    /// Total number of nodes in this subtree (including `self`).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(LayoutNode::node_count)
            .sum::<usize>()
    }

    /// Depth of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(LayoutNode::depth)
            .max()
            .unwrap_or(0)
    }

    /// Pre-order iteration over the subtree.
    pub fn iter(&self) -> LayoutIter<'_> {
        LayoutIter { stack: vec![self] }
    }
}

/// Pre-order iterator over a layout subtree.
#[derive(Debug)]
pub struct LayoutIter<'a> {
    stack: Vec<&'a LayoutNode>,
}

impl<'a> Iterator for LayoutIter<'a> {
    type Item = &'a LayoutNode;

    fn next(&mut self) -> Option<&'a LayoutNode> {
        let node = self.stack.pop()?;
        // Push children in reverse so iteration is left-to-right pre-order.
        for child in node.children.iter().rev() {
            self.stack.push(child);
        }
        Some(node)
    }
}

/// Lazily computed content digest of a template (0 = dirty). Mutation
/// goes through [`LayoutTemplate::root_mut`], which resets the cell, so
/// a non-zero value is always derived purely from `(name, root)` — two
/// templates that compare equal always digest equal once computed. This
/// is what lets the inflater key its memo cache without re-hashing a
/// few hundred nodes on every probe.
struct TemplateDigest(AtomicU64);

impl TemplateDigest {
    fn dirty() -> Self {
        TemplateDigest(AtomicU64::new(0))
    }

    fn invalidate(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Clone for TemplateDigest {
    fn clone(&self) -> Self {
        TemplateDigest(AtomicU64::new(self.0.load(Ordering::Relaxed)))
    }
}

impl Default for TemplateDigest {
    fn default() -> Self {
        TemplateDigest::dirty()
    }
}

impl PartialEq for TemplateDigest {
    /// Always equal: the digest is a cache over the template's content,
    /// never independent state, so it must not influence equality.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for TemplateDigest {}

impl fmt::Debug for TemplateDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TemplateDigest({:#x})", self.0.load(Ordering::Relaxed))
    }
}

/// A complete layout: a named template with a single root node.
///
/// The fields are private so every mutation path can invalidate the
/// cached [`content digest`](LayoutTemplate::content_digest); read
/// access goes through [`name`](LayoutTemplate::name) and
/// [`root`](LayoutTemplate::root), mutation through
/// [`root_mut`](LayoutTemplate::root_mut).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutTemplate {
    /// The layout's resource name (e.g. `"activity_main"`).
    name: String,
    /// The root node — conventionally a view group that becomes the child
    /// of the window's decor view.
    root: LayoutNode,
    #[serde(skip)]
    digest: TemplateDigest,
}

impl Hash for LayoutTemplate {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Content only — the digest cell is a cache, not state.
        self.name.hash(state);
        self.root.hash(state);
    }
}

impl LayoutTemplate {
    /// Creates a template.
    pub fn new(name: &str, root: LayoutNode) -> Self {
        LayoutTemplate {
            name: name.to_owned(),
            root,
            digest: TemplateDigest::dirty(),
        }
    }

    /// The layout's resource name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root node.
    pub fn root(&self) -> &LayoutNode {
        &self.root
    }

    /// Mutable access to the root node. Invalidates the cached content
    /// digest — the next [`content_digest`](LayoutTemplate::content_digest)
    /// call re-derives it from the mutated tree.
    pub fn root_mut(&mut self) -> &mut LayoutNode {
        self.digest.invalidate();
        &mut self.root
    }

    /// Content digest of the whole template, computed once and cached
    /// until the template is mutated. Process-stable (an FNV fold over
    /// the node tree), never zero, suitable as memo-cache key material —
    /// not a cross-process fingerprint.
    pub fn content_digest(&self) -> u64 {
        let cached = self.digest.0.load(Ordering::Relaxed);
        if cached != 0 {
            return cached;
        }
        let d = memo::stable_hash(self);
        let d = if d == 0 { memo::FNV_PRIME } else { d };
        self.digest.0.store(d, Ordering::Relaxed);
        d
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.root.node_count()
    }

    /// Collects the id names declared anywhere in the template.
    pub fn declared_ids(&self) -> Vec<&str> {
        self.root
            .iter()
            .filter_map(|n| n.id_name.as_deref())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LayoutTemplate {
        LayoutTemplate::new(
            "activity_main",
            LayoutNode::new("LinearLayout")
                .with_id("root")
                .with_children([
                    LayoutNode::new("TextView")
                        .with_id("title")
                        .with_attr("text", "@string/title"),
                    LayoutNode::new("FrameLayout")
                        .with_child(LayoutNode::new("ImageView").with_id("hero")),
                    LayoutNode::new("Button")
                        .with_id("go")
                        .with_attr("text", "Go"),
                ]),
        )
    }

    #[test]
    fn counts_and_depth() {
        let t = sample();
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.root().depth(), 3);
    }

    #[test]
    fn preorder_iteration_is_left_to_right() {
        let t = sample();
        let classes: Vec<&str> = t.root().iter().map(|n| n.class.as_str()).collect();
        assert_eq!(
            classes,
            vec![
                "LinearLayout",
                "TextView",
                "FrameLayout",
                "ImageView",
                "Button"
            ]
        );
    }

    #[test]
    fn declared_ids_skips_anonymous_nodes() {
        let t = sample();
        assert_eq!(t.declared_ids(), vec!["root", "title", "hero", "go"]);
    }

    #[test]
    fn builder_sets_attrs() {
        let n = LayoutNode::new("TextView").with_attr("text", "hi");
        assert_eq!(n.attrs.get("text").map(String::as_str), Some("hi"));
        assert_eq!(n.node_count(), 1);
        assert_eq!(n.depth(), 1);
    }
}
