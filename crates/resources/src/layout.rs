//! Data-only layout templates.
//!
//! A [`LayoutTemplate`] is the model of a layout XML file: a tree of nodes,
//! each carrying a view *class name*, an optional id name, and string
//! attributes. The view crate's inflater resolves class names to concrete
//! view kinds at inflate time — mirroring how Android resolves XML tags —
//! so this crate stays free of any view-system dependency.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One node of a layout template.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutNode {
    /// View class name, e.g. `"TextView"`, `"ImageView"`, `"LinearLayout"`.
    pub class: String,
    /// The `android:id` name, if the node has one. Views without ids cannot
    /// have their hierarchy state saved — the classic cause of state loss.
    pub id_name: Option<String>,
    /// Literal attributes (`text`, `src`, …). Values starting with `"@"`
    /// are resource references resolved at inflate time.
    pub attrs: BTreeMap<String, String>,
    /// Child nodes (only meaningful for view groups).
    pub children: Vec<LayoutNode>,
}

impl LayoutNode {
    /// Creates a leaf node of the given class.
    pub fn new(class: &str) -> Self {
        LayoutNode {
            class: class.to_owned(),
            id_name: None,
            attrs: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// Sets the id name.
    pub fn with_id(mut self, id_name: &str) -> Self {
        self.id_name = Some(id_name.to_owned());
        self
    }

    /// Adds an attribute.
    pub fn with_attr(mut self, key: &str, value: &str) -> Self {
        self.attrs.insert(key.to_owned(), value.to_owned());
        self
    }

    /// Adds a child node.
    pub fn with_child(mut self, child: LayoutNode) -> Self {
        self.children.push(child);
        self
    }

    /// Adds many child nodes.
    pub fn with_children(mut self, children: impl IntoIterator<Item = LayoutNode>) -> Self {
        self.children.extend(children);
        self
    }

    /// Total number of nodes in this subtree (including `self`).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(LayoutNode::node_count)
            .sum::<usize>()
    }

    /// Depth of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(LayoutNode::depth)
            .max()
            .unwrap_or(0)
    }

    /// Pre-order iteration over the subtree.
    pub fn iter(&self) -> LayoutIter<'_> {
        LayoutIter { stack: vec![self] }
    }
}

/// Pre-order iterator over a layout subtree.
#[derive(Debug)]
pub struct LayoutIter<'a> {
    stack: Vec<&'a LayoutNode>,
}

impl<'a> Iterator for LayoutIter<'a> {
    type Item = &'a LayoutNode;

    fn next(&mut self) -> Option<&'a LayoutNode> {
        let node = self.stack.pop()?;
        // Push children in reverse so iteration is left-to-right pre-order.
        for child in node.children.iter().rev() {
            self.stack.push(child);
        }
        Some(node)
    }
}

/// A complete layout: a named template with a single root node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutTemplate {
    /// The layout's resource name (e.g. `"activity_main"`).
    pub name: String,
    /// The root node — conventionally a view group that becomes the child
    /// of the window's decor view.
    pub root: LayoutNode,
}

impl LayoutTemplate {
    /// Creates a template.
    pub fn new(name: &str, root: LayoutNode) -> Self {
        LayoutTemplate {
            name: name.to_owned(),
            root,
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.root.node_count()
    }

    /// Collects the id names declared anywhere in the template.
    pub fn declared_ids(&self) -> Vec<&str> {
        self.root
            .iter()
            .filter_map(|n| n.id_name.as_deref())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LayoutTemplate {
        LayoutTemplate::new(
            "activity_main",
            LayoutNode::new("LinearLayout")
                .with_id("root")
                .with_children([
                    LayoutNode::new("TextView")
                        .with_id("title")
                        .with_attr("text", "@string/title"),
                    LayoutNode::new("FrameLayout")
                        .with_child(LayoutNode::new("ImageView").with_id("hero")),
                    LayoutNode::new("Button")
                        .with_id("go")
                        .with_attr("text", "Go"),
                ]),
        )
    }

    #[test]
    fn counts_and_depth() {
        let t = sample();
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.root.depth(), 3);
    }

    #[test]
    fn preorder_iteration_is_left_to_right() {
        let t = sample();
        let classes: Vec<&str> = t.root.iter().map(|n| n.class.as_str()).collect();
        assert_eq!(
            classes,
            vec![
                "LinearLayout",
                "TextView",
                "FrameLayout",
                "ImageView",
                "Button"
            ]
        );
    }

    #[test]
    fn declared_ids_skips_anonymous_nodes() {
        let t = sample();
        assert_eq!(t.declared_ids(), vec!["root", "title", "hero", "go"]);
    }

    #[test]
    fn builder_sets_attrs() {
        let n = LayoutNode::new("TextView").with_attr("text", "hi");
        assert_eq!(n.attrs.get("text").map(String::as_str), Some("hi"));
        assert_eq!(n.node_count(), 1);
        assert_eq!(n.depth(), 1);
    }
}
