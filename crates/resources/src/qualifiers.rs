//! Configuration qualifiers and the Android matching/precedence rules.

use droidsim_config::{Configuration, Orientation, UiMode};
use serde::{Deserialize, Serialize};

/// A partial predicate over configurations — the model of a resource
/// directory suffix such as `layout-land`, `values-zh-rCN` or
/// `layout-sw600dp-night`.
///
/// An empty qualifier set matches every configuration (the default
/// resource). Matching follows Android: *every* present qualifier must
/// match; among matching candidates the one with the highest-precedence
/// distinguishing qualifier wins (locale ≻ smallest-width ≻ orientation ≻
/// UI mode).
///
/// # Examples
///
/// ```
/// use droidsim_config::{Configuration, Orientation};
/// use droidsim_resources::Qualifiers;
///
/// let land = Qualifiers::any().with_orientation(Orientation::Landscape);
/// assert!(!land.matches(&Configuration::phone_portrait()));
/// assert!(land.matches(&Configuration::phone_landscape()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Qualifiers {
    orientation: Option<Orientation>,
    language: Option<String>,
    min_smallest_width_dp: Option<u32>,
    ui_mode: Option<UiMode>,
}

impl Qualifiers {
    /// The empty qualifier set: matches everything.
    pub fn any() -> Self {
        Qualifiers::default()
    }

    /// Requires a screen orientation (`-land` / `-port`).
    pub fn with_orientation(mut self, orientation: Orientation) -> Self {
        self.orientation = Some(orientation);
        self
    }

    /// Requires a locale language (`values-zh`).
    pub fn with_language(mut self, language: &str) -> Self {
        self.language = Some(language.to_ascii_lowercase());
        self
    }

    /// Requires a minimum smallest-width (`-sw600dp`).
    pub fn with_min_smallest_width(mut self, dp: u32) -> Self {
        self.min_smallest_width_dp = Some(dp);
        self
    }

    /// Requires a UI mode (`-night`).
    pub fn with_ui_mode(mut self, ui_mode: UiMode) -> Self {
        self.ui_mode = Some(ui_mode);
        self
    }

    /// Whether every present qualifier is satisfied by `config`.
    pub fn matches(&self, config: &Configuration) -> bool {
        if let Some(o) = self.orientation {
            if o != config.orientation {
                return false;
            }
        }
        if let Some(lang) = &self.language {
            if lang != config.locale.language() {
                return false;
            }
        }
        if let Some(sw) = self.min_smallest_width_dp {
            if config.screen.smallest_width_dp() < sw {
                return false;
            }
        }
        if let Some(m) = self.ui_mode {
            if m != config.ui_mode {
                return false;
            }
        }
        true
    }

    /// Android-style precedence score: a candidate that matches on a
    /// higher-precedence axis beats any combination of lower axes, so the
    /// score is a bitfield ordered locale ≻ smallest-width ≻ orientation ≻
    /// UI mode. Larger smallest-width requirements score above smaller ones
    /// within the same axis.
    pub fn specificity(&self) -> u64 {
        let mut score = 0u64;
        if self.language.is_some() {
            score |= 1 << 40;
        }
        if let Some(sw) = self.min_smallest_width_dp {
            score |= 1 << 30;
            score += sw as u64; // larger buckets beat smaller within axis
        }
        if self.orientation.is_some() {
            score |= 1 << 20;
        }
        if self.ui_mode.is_some() {
            score |= 1 << 10;
        }
        score
    }

    /// Whether this is the default (unqualified) variant.
    pub fn is_default(&self) -> bool {
        *self == Qualifiers::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droidsim_config::{Locale, ScreenSize};

    #[test]
    fn any_matches_everything() {
        assert!(Qualifiers::any().matches(&Configuration::phone_portrait()));
        assert!(Qualifiers::any().matches(&Configuration::phone_landscape()));
        assert!(Qualifiers::any().is_default());
    }

    #[test]
    fn orientation_qualifier_filters() {
        let land = Qualifiers::any().with_orientation(Orientation::Landscape);
        assert!(land.matches(&Configuration::phone_landscape()));
        assert!(!land.matches(&Configuration::phone_portrait()));
    }

    #[test]
    fn language_qualifier_filters() {
        let zh = Qualifiers::any().with_language("zh");
        let config = Configuration::phone_portrait();
        assert!(!zh.matches(&config));
        assert!(zh.matches(&config.with_locale(Locale::zh_cn())));
    }

    #[test]
    fn smallest_width_is_a_minimum() {
        let sw600 = Qualifiers::any().with_min_smallest_width(600);
        let phone = Configuration::phone_portrait(); // sw = 1080
        assert!(sw600.matches(&phone));
        let small = phone.with_screen(ScreenSize::new(480, 800));
        assert!(!sw600.matches(&small));
    }

    #[test]
    fn precedence_locale_beats_everything_else() {
        let locale_only = Qualifiers::any().with_language("zh");
        let all_others = Qualifiers::any()
            .with_orientation(Orientation::Landscape)
            .with_min_smallest_width(600)
            .with_ui_mode(UiMode::Night);
        assert!(locale_only.specificity() > all_others.specificity());
    }

    #[test]
    fn precedence_orientation_beats_ui_mode() {
        let land = Qualifiers::any().with_orientation(Orientation::Landscape);
        let night = Qualifiers::any().with_ui_mode(UiMode::Night);
        assert!(land.specificity() > night.specificity());
    }

    #[test]
    fn bigger_sw_bucket_wins_within_axis() {
        let sw600 = Qualifiers::any().with_min_smallest_width(600);
        let sw720 = Qualifiers::any().with_min_smallest_width(720);
        assert!(sw720.specificity() > sw600.specificity());
    }
}
