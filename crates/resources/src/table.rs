//! The resource table: named, qualified resources with Android-style
//! best-match resolution.

use crate::layout::LayoutTemplate;
use crate::qualifiers::Qualifiers;
use core::fmt;
use droidsim_config::Configuration;
use droidsim_kernel::memo::{self, Admission, MemoCache};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once, OnceLock};

/// A resolved resource id (stable per `(table, name)` pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResId(pub u32);

impl fmt::Display for ResId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x7f{:06x}", self.0)
    }
}

/// A resource payload.
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub enum ResourceValue {
    /// A string resource.
    String(String),
    /// A drawable, identified by name; `bytes_hint` models the decoded
    /// bitmap footprint for the memory model.
    Drawable {
        /// Asset name.
        name: String,
        /// Decoded size in bytes (memory-model input).
        bytes_hint: u64,
    },
    /// A layout template.
    Layout(LayoutTemplate),
    /// An integer (dimensions, counts).
    Integer(i64),
}

impl ResourceValue {
    /// Convenience constructor for a string resource.
    pub fn string(s: &str) -> Self {
        ResourceValue::String(s.to_owned())
    }

    /// Convenience constructor for a drawable resource.
    pub fn drawable(name: &str, bytes_hint: u64) -> Self {
        ResourceValue::Drawable {
            name: name.to_owned(),
            bytes_hint,
        }
    }
}

/// Errors from resource resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// No resource with this name exists at all.
    UnknownName(String),
    /// The name exists but no variant matches the configuration and there
    /// is no default variant.
    NoMatchingVariant(String),
    /// The resource resolved but has a different payload type.
    WrongType {
        /// Requested resource name.
        name: String,
        /// What the caller asked for.
        expected: &'static str,
    },
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::UnknownName(name) => write!(f, "unknown resource `{name}`"),
            ResourceError::NoMatchingVariant(name) => {
                write!(f, "no variant of `{name}` matches the configuration")
            }
            ResourceError::WrongType { name, expected } => {
                write!(f, "resource `{name}` is not a {expected}")
            }
        }
    }
}

impl std::error::Error for ResourceError {}

#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
struct Entry {
    qualifiers: Qualifiers,
    value: ResourceValue,
}

/// Cached content fingerprint of a [`ResourceTable`], computed lazily on
/// first use and invalidated (reset to the `0` sentinel) by every
/// [`ResourceTable::put`]. Lives in an `AtomicU64` so resolution — a
/// `&self` path — can fill it in; racing fills compute the same value.
///
/// Deliberately invisible to equality and serialization: the fingerprint
/// is derived purely from `entries`, so two tables that compare equal
/// always fingerprint equal once computed.
struct TableFingerprint(AtomicU64);

impl TableFingerprint {
    fn dirty() -> Self {
        TableFingerprint(AtomicU64::new(0))
    }

    fn invalidate(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Clone for TableFingerprint {
    fn clone(&self) -> Self {
        TableFingerprint(AtomicU64::new(self.0.load(Ordering::Relaxed)))
    }
}

impl Default for TableFingerprint {
    fn default() -> Self {
        TableFingerprint::dirty()
    }
}

impl PartialEq for TableFingerprint {
    /// Always equal: the fingerprint is a cache over `entries`, never
    /// independent state, so it must not influence table equality.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl fmt::Debug for TableFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TableFingerprint({:#x})", self.0.load(Ordering::Relaxed))
    }
}

/// The process-wide resolved-view cache: `(table fingerprint, config
/// digest)` → name → index of the best-matching variant. Entries are
/// content-addressed, so any table mutation changes the key instead of
/// hitting stale data.
fn resolved_view_cache() -> &'static MemoCache<(u64, u64), HashMap<String, u32>> {
    static CACHE: OnceLock<MemoCache<(u64, u64), HashMap<String, u32>>> = OnceLock::new();
    static REGISTER: Once = Once::new();
    let cache = CACHE.get_or_init(|| {
        MemoCache::new("resolve", 512, |view: &HashMap<String, u32>| {
            view.keys().map(|k| k.len() as u64 + 48).sum()
        })
    });
    REGISTER.call_once(|| memo::register(cache));
    cache
}

/// A named, qualified resource store.
///
/// # Examples
///
/// ```
/// use droidsim_config::{Configuration, Orientation};
/// use droidsim_resources::{LayoutNode, LayoutTemplate, Qualifiers, ResourceTable, ResourceValue};
///
/// let mut table = ResourceTable::new();
/// let port = LayoutTemplate::new("main", LayoutNode::new("LinearLayout"));
/// let land = LayoutTemplate::new("main", LayoutNode::new("FrameLayout"));
/// table.put("main", Qualifiers::any(), ResourceValue::Layout(port));
/// table.put(
///     "main",
///     Qualifiers::any().with_orientation(Orientation::Landscape),
///     ResourceValue::Layout(land),
/// );
/// let layout = table
///     .resolve_layout("main", &Configuration::phone_landscape())
///     .expect("landscape variant");
/// assert_eq!(layout.root().class, "FrameLayout");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceTable {
    /// Name → variants, each variant list kept sorted by *descending*
    /// qualifier specificity so resolution takes the first match.
    entries: BTreeMap<String, Vec<Entry>>,
    /// Lazily-computed content fingerprint (see [`TableFingerprint`]);
    /// skipped on the wire and recomputed on demand after deserialization.
    #[serde(skip)]
    fingerprint: TableFingerprint,
}

impl ResourceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ResourceTable::default()
    }

    /// Adds a qualified variant of resource `name`. Adding the same
    /// qualifiers twice replaces the earlier payload (last write wins),
    /// matching `aapt`'s per-directory uniqueness.
    ///
    /// Variants are kept sorted by descending [`Qualifiers::specificity`]
    /// (insertion order among equal scores), so resolution is a
    /// first-match scan instead of a full best-match pass.
    pub fn put(&mut self, name: &str, qualifiers: Qualifiers, value: ResourceValue) {
        let variants = self.entries.entry(name.to_owned()).or_default();
        if let Some(existing) = variants.iter_mut().find(|e| e.qualifiers == qualifiers) {
            existing.value = value;
        } else {
            let specificity = qualifiers.specificity();
            let at = variants.partition_point(|e| e.qualifiers.specificity() >= specificity);
            variants.insert(at, Entry { qualifiers, value });
        }
        self.fingerprint.invalidate();
    }

    /// The table's content fingerprint: an FNV-1a fold over every
    /// `(name, qualifiers, value)` entry, computed lazily and cached
    /// until the next [`ResourceTable::put`]. Equal-content tables
    /// fingerprint equal, which is what keys the process-wide
    /// resolved-view and inflation caches. Never `0` (the dirty
    /// sentinel).
    pub fn fingerprint(&self) -> u64 {
        let cached = self.fingerprint.0.load(Ordering::Relaxed);
        if cached != 0 {
            return cached;
        }
        let mut fp = memo::FNV_OFFSET;
        for (name, variants) in &self.entries {
            fp = memo::fold_u64(fp, memo::stable_hash(name.as_str()));
            for entry in variants {
                fp = memo::fold_u64(fp, memo::stable_hash(entry));
            }
        }
        let fp = if fp == 0 { memo::FNV_PRIME } else { fp };
        self.fingerprint.0.store(fp, Ordering::Relaxed);
        fp
    }

    /// Builds the resolved view for `config`: every name mapped to the
    /// index of its best-matching variant (names with no match are
    /// absent). This is what the warm path shares across tasks.
    fn build_resolved_view(&self, config: &Configuration) -> HashMap<String, u32> {
        self.entries
            .iter()
            .filter_map(|(name, variants)| {
                variants
                    .iter()
                    .position(|e| e.qualifiers.matches(config))
                    .map(|i| (name.clone(), i as u32))
            })
            .collect()
    }

    /// The stable id for `name`, if the name exists.
    pub fn id_of(&self, name: &str) -> Option<ResId> {
        self.entries
            .keys()
            .position(|k| k == name)
            .map(|i| ResId(i as u32))
    }

    /// Resolves `name` against `config`, returning the best-matching
    /// variant per Android precedence rules.
    ///
    /// # Errors
    ///
    /// [`ResourceError::UnknownName`] if no such resource exists;
    /// [`ResourceError::NoMatchingVariant`] if variants exist but none
    /// matches and there is no default.
    pub fn resolve(
        &self,
        name: &str,
        config: &Configuration,
    ) -> Result<&ResourceValue, ResourceError> {
        let variants = self
            .entries
            .get(name)
            .ok_or_else(|| ResourceError::UnknownName(name.to_owned()))?;
        if memo::enabled() {
            let key = (self.fingerprint(), memo::stable_hash(config));
            match resolved_view_cache().probe(key) {
                Admission::Hit(view) => {
                    return Self::pick(variants, view.get(name).copied(), name);
                }
                Admission::Build => {
                    let view = self.build_resolved_view(config);
                    let idx = view.get(name).copied();
                    resolved_view_cache().publish(key, view);
                    return Self::pick(variants, idx, name);
                }
                Admission::Skip => {}
            }
        }
        // Cold path: variants are sorted by descending specificity, so
        // the first match is the best match.
        variants
            .iter()
            .find(|e| e.qualifiers.matches(config))
            .map(|e| &e.value)
            .ok_or_else(|| ResourceError::NoMatchingVariant(name.to_owned()))
    }

    /// Maps a cached variant index back into this table's entry list.
    /// `None` — or an index that outlives the variants it was computed
    /// against (impossible short of a fingerprint collision) — reports
    /// as no matching variant.
    fn pick<'t>(
        variants: &'t [Entry],
        idx: Option<u32>,
        name: &str,
    ) -> Result<&'t ResourceValue, ResourceError> {
        idx.and_then(|i| variants.get(i as usize))
            .map(|e| &e.value)
            .ok_or_else(|| ResourceError::NoMatchingVariant(name.to_owned()))
    }

    /// Resolves a string resource; `None` on any failure (lenient lookup
    /// used by inflaters that fall back to literals).
    pub fn resolve_string(&self, name: &str, config: &Configuration) -> Option<&str> {
        match self.resolve(name, config) {
            Ok(ResourceValue::String(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Resolves a layout resource.
    ///
    /// # Errors
    ///
    /// As [`ResourceTable::resolve`], plus [`ResourceError::WrongType`] if
    /// the resource is not a layout.
    pub fn resolve_layout(
        &self,
        name: &str,
        config: &Configuration,
    ) -> Result<&LayoutTemplate, ResourceError> {
        match self.resolve(name, config)? {
            ResourceValue::Layout(t) => Ok(t),
            _ => Err(ResourceError::WrongType {
                name: name.to_owned(),
                expected: "layout",
            }),
        }
    }

    /// Resolves a drawable resource, returning `(asset name, bytes hint)`.
    ///
    /// # Errors
    ///
    /// As [`ResourceTable::resolve`], plus [`ResourceError::WrongType`] if
    /// the resource is not a drawable.
    pub fn resolve_drawable(
        &self,
        name: &str,
        config: &Configuration,
    ) -> Result<(&str, u64), ResourceError> {
        match self.resolve(name, config)? {
            ResourceValue::Drawable {
                name: asset,
                bytes_hint,
            } => Ok((asset.as_str(), *bytes_hint)),
            _ => Err(ResourceError::WrongType {
                name: name.to_owned(),
                expected: "drawable",
            }),
        }
    }

    /// Fetches this configuration's resolved view once, for a run of
    /// lookups that all share `config` — the inflater resolves every
    /// attribute of a layout this way. A per-lookup [`resolve`]
    /// (ResourceTable::resolve) pays the memo probe (config digest,
    /// shard lock, `Arc` traffic) on every call, which costs more than
    /// the sorted first-match scan it replaces; the handle pays it once
    /// and answers each lookup with a plain map read. With the memo
    /// layer disabled (or not yet admitted) every lookup runs the same
    /// cold scan `resolve` would.
    pub fn resolver<'a>(&'a self, config: &'a Configuration) -> ConfigResolver<'a> {
        let view = if memo::enabled() {
            let key = (self.fingerprint(), memo::stable_hash(config));
            match resolved_view_cache().probe(key) {
                Admission::Hit(view) => Some(view),
                Admission::Build => {
                    let view = self.build_resolved_view(config);
                    resolved_view_cache().publish(key, view.clone());
                    Some(Arc::new(view))
                }
                Admission::Skip => None,
            }
        } else {
            None
        };
        ConfigResolver {
            table: self,
            config,
            view,
        }
    }

    /// Number of distinct resource names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over resource names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }
}

/// One configuration's view of a table, created by
/// [`ResourceTable::resolver`]: the memo probe is paid once at
/// construction, every lookup after that is a plain map read (or, when
/// the memo layer declined, the same sorted first-match scan the cold
/// path runs). Borrows the table, so the view can never go stale.
#[derive(Debug)]
pub struct ConfigResolver<'a> {
    table: &'a ResourceTable,
    config: &'a Configuration,
    /// The shared resolved view; `None` sends every lookup down the
    /// cold scan.
    view: Option<Arc<HashMap<String, u32>>>,
}

impl ConfigResolver<'_> {
    /// Resolves the best-matching variant of `name`, as
    /// [`ResourceTable::resolve`] would for this configuration.
    ///
    /// # Errors
    ///
    /// [`ResourceError::UnknownName`] / [`ResourceError::NoMatchingVariant`]
    /// exactly as the per-lookup path.
    pub fn resolve(&self, name: &str) -> Result<&ResourceValue, ResourceError> {
        let variants = self
            .table
            .entries
            .get(name)
            .ok_or_else(|| ResourceError::UnknownName(name.to_owned()))?;
        match &self.view {
            Some(view) => ResourceTable::pick(variants, view.get(name).copied(), name),
            None => variants
                .iter()
                .find(|e| e.qualifiers.matches(self.config))
                .map(|e| &e.value)
                .ok_or_else(|| ResourceError::NoMatchingVariant(name.to_owned())),
        }
    }

    /// Resolves a string resource; `None` on any failure (lenient lookup
    /// used by inflaters that fall back to literals).
    pub fn resolve_string(&self, name: &str) -> Option<&str> {
        match self.resolve(name) {
            Ok(ResourceValue::String(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Resolves a drawable resource, returning `(asset name, bytes hint)`.
    ///
    /// # Errors
    ///
    /// As [`ConfigResolver::resolve`], plus [`ResourceError::WrongType`]
    /// if the resource is not a drawable.
    pub fn resolve_drawable(&self, name: &str) -> Result<(&str, u64), ResourceError> {
        match self.resolve(name)? {
            ResourceValue::Drawable {
                name: asset,
                bytes_hint,
            } => Ok((asset.as_str(), *bytes_hint)),
            _ => Err(ResourceError::WrongType {
                name: name.to_owned(),
                expected: "drawable",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutNode;
    use droidsim_config::{Locale, Orientation, UiMode};

    fn table_with_variants() -> ResourceTable {
        let mut t = ResourceTable::new();
        t.put(
            "greeting",
            Qualifiers::any(),
            ResourceValue::string("Hello"),
        );
        t.put(
            "greeting",
            Qualifiers::any().with_language("zh"),
            ResourceValue::string("你好"),
        );
        t.put(
            "greeting",
            Qualifiers::any().with_orientation(Orientation::Landscape),
            ResourceValue::string("Hello (wide)"),
        );
        t
    }

    #[test]
    fn default_variant_matches_base_config() {
        let t = table_with_variants();
        let config = Configuration::phone_portrait();
        assert_eq!(t.resolve_string("greeting", &config), Some("Hello"));
    }

    #[test]
    fn locale_beats_orientation() {
        let t = table_with_variants();
        // Landscape AND Chinese: both qualified variants match; locale wins.
        let config = Configuration::phone_landscape().with_locale(Locale::zh_cn());
        assert_eq!(t.resolve_string("greeting", &config), Some("你好"));
    }

    #[test]
    fn orientation_variant_beats_default() {
        let t = table_with_variants();
        let config = Configuration::phone_landscape();
        assert_eq!(t.resolve_string("greeting", &config), Some("Hello (wide)"));
    }

    #[test]
    fn unknown_name_errors() {
        let t = table_with_variants();
        let err = t
            .resolve("nope", &Configuration::phone_portrait())
            .unwrap_err();
        assert_eq!(err, ResourceError::UnknownName("nope".to_owned()));
    }

    #[test]
    fn no_matching_variant_errors() {
        let mut t = ResourceTable::new();
        t.put(
            "night_only",
            Qualifiers::any().with_ui_mode(UiMode::Night),
            ResourceValue::string("dark"),
        );
        let err = t
            .resolve("night_only", &Configuration::phone_portrait())
            .unwrap_err();
        assert_eq!(
            err,
            ResourceError::NoMatchingVariant("night_only".to_owned())
        );
    }

    #[test]
    fn wrong_type_errors() {
        let t = table_with_variants();
        let err = t
            .resolve_layout("greeting", &Configuration::phone_portrait())
            .unwrap_err();
        assert!(matches!(err, ResourceError::WrongType { .. }));
        assert_eq!(err.to_string(), "resource `greeting` is not a layout");
    }

    #[test]
    fn same_qualifiers_replace() {
        let mut t = ResourceTable::new();
        t.put("x", Qualifiers::any(), ResourceValue::string("old"));
        t.put("x", Qualifiers::any(), ResourceValue::string("new"));
        let config = Configuration::phone_portrait();
        assert_eq!(t.resolve_string("x", &config), Some("new"));
    }

    #[test]
    fn layout_variant_selection() {
        let mut t = ResourceTable::new();
        t.put(
            "main",
            Qualifiers::any(),
            ResourceValue::Layout(LayoutTemplate::new("main", LayoutNode::new("LinearLayout"))),
        );
        t.put(
            "main",
            Qualifiers::any().with_orientation(Orientation::Landscape),
            ResourceValue::Layout(LayoutTemplate::new("main", LayoutNode::new("GridLayout"))),
        );
        let land = t
            .resolve_layout("main", &Configuration::phone_landscape())
            .unwrap();
        assert_eq!(land.root().class, "GridLayout");
        let port = t
            .resolve_layout("main", &Configuration::phone_portrait())
            .unwrap();
        assert_eq!(port.root().class, "LinearLayout");
    }

    #[test]
    fn ids_are_stable_and_dense() {
        let t = table_with_variants();
        assert_eq!(t.id_of("greeting"), Some(ResId(0)));
        assert_eq!(t.id_of("missing"), None);
        assert_eq!(ResId(7).to_string(), "0x7f000007");
    }

    #[test]
    fn fingerprint_tracks_content_not_identity() {
        let a = table_with_variants();
        let b = table_with_variants();
        assert_ne!(a.fingerprint(), 0, "never the dirty sentinel");
        assert_eq!(a.fingerprint(), b.fingerprint(), "equal content");
        assert_eq!(a.clone().fingerprint(), a.fingerprint(), "clones agree");

        let mut c = table_with_variants();
        c.put("extra", Qualifiers::any(), ResourceValue::string("x"));
        assert_ne!(c.fingerprint(), a.fingerprint(), "content change re-keys");

        let mut d = table_with_variants();
        let before = d.fingerprint();
        d.put("greeting", Qualifiers::any(), ResourceValue::string("Hi"));
        assert_ne!(d.fingerprint(), before, "replacement re-keys");
    }

    #[test]
    fn variants_stay_sorted_by_descending_specificity() {
        // Insertion order shuffled relative to specificity; resolution
        // must still pick the most specific match first.
        let mut t = ResourceTable::new();
        t.put(
            "s",
            Qualifiers::any().with_ui_mode(UiMode::Night),
            ResourceValue::string("night"),
        );
        t.put("s", Qualifiers::any(), ResourceValue::string("default"));
        t.put(
            "s",
            Qualifiers::any().with_language("zh"),
            ResourceValue::string("zh"),
        );
        t.put(
            "s",
            Qualifiers::any().with_orientation(Orientation::Landscape),
            ResourceValue::string("land"),
        );
        let base = Configuration::phone_portrait();
        assert_eq!(t.resolve_string("s", &base), Some("default"));
        let zh_land_night = Configuration::phone_landscape()
            .with_locale(Locale::zh_cn())
            .with_ui_mode(UiMode::Night);
        assert_eq!(t.resolve_string("s", &zh_land_night), Some("zh"));
        let land = Configuration::phone_landscape();
        assert_eq!(t.resolve_string("s", &land), Some("land"));
    }

    #[test]
    fn memoized_resolution_matches_cold_path() {
        use droidsim_kernel::memo;

        let t = table_with_variants();
        let configs = [
            Configuration::phone_portrait(),
            Configuration::phone_landscape(),
            Configuration::phone_portrait().with_locale(Locale::zh_cn()),
            Configuration::phone_landscape().with_locale(Locale::zh_cn()),
        ];
        for config in &configs {
            // Drive the same lookup repeatedly so the key passes two-touch
            // admission and later iterations are genuine cache hits.
            let cold = {
                let was = memo::enabled();
                memo::set_enabled(false);
                let v = t.resolve("greeting", config).cloned();
                memo::set_enabled(was);
                v
            };
            for _ in 0..4 {
                assert_eq!(t.resolve("greeting", config).cloned(), cold);
            }
            assert_eq!(
                t.resolve("nope", config).unwrap_err(),
                ResourceError::UnknownName("nope".to_owned())
            );
        }
    }

    #[test]
    fn drawable_resolution() {
        let mut t = ResourceTable::new();
        t.put(
            "hero",
            Qualifiers::any(),
            ResourceValue::drawable("hero.png", 4096),
        );
        let (asset, bytes) = t
            .resolve_drawable("hero", &Configuration::phone_portrait())
            .unwrap();
        assert_eq!(asset, "hero.png");
        assert_eq!(bytes, 4096);
    }
}
