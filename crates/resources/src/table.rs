//! The resource table: named, qualified resources with Android-style
//! best-match resolution.

use crate::layout::LayoutTemplate;
use crate::qualifiers::Qualifiers;
use core::fmt;
use droidsim_config::Configuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A resolved resource id (stable per `(table, name)` pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResId(pub u32);

impl fmt::Display for ResId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x7f{:06x}", self.0)
    }
}

/// A resource payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResourceValue {
    /// A string resource.
    String(String),
    /// A drawable, identified by name; `bytes_hint` models the decoded
    /// bitmap footprint for the memory model.
    Drawable {
        /// Asset name.
        name: String,
        /// Decoded size in bytes (memory-model input).
        bytes_hint: u64,
    },
    /// A layout template.
    Layout(LayoutTemplate),
    /// An integer (dimensions, counts).
    Integer(i64),
}

impl ResourceValue {
    /// Convenience constructor for a string resource.
    pub fn string(s: &str) -> Self {
        ResourceValue::String(s.to_owned())
    }

    /// Convenience constructor for a drawable resource.
    pub fn drawable(name: &str, bytes_hint: u64) -> Self {
        ResourceValue::Drawable {
            name: name.to_owned(),
            bytes_hint,
        }
    }
}

/// Errors from resource resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// No resource with this name exists at all.
    UnknownName(String),
    /// The name exists but no variant matches the configuration and there
    /// is no default variant.
    NoMatchingVariant(String),
    /// The resource resolved but has a different payload type.
    WrongType {
        /// Requested resource name.
        name: String,
        /// What the caller asked for.
        expected: &'static str,
    },
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::UnknownName(name) => write!(f, "unknown resource `{name}`"),
            ResourceError::NoMatchingVariant(name) => {
                write!(f, "no variant of `{name}` matches the configuration")
            }
            ResourceError::WrongType { name, expected } => {
                write!(f, "resource `{name}` is not a {expected}")
            }
        }
    }
}

impl std::error::Error for ResourceError {}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Entry {
    qualifiers: Qualifiers,
    value: ResourceValue,
}

/// A named, qualified resource store.
///
/// # Examples
///
/// ```
/// use droidsim_config::{Configuration, Orientation};
/// use droidsim_resources::{LayoutNode, LayoutTemplate, Qualifiers, ResourceTable, ResourceValue};
///
/// let mut table = ResourceTable::new();
/// let port = LayoutTemplate::new("main", LayoutNode::new("LinearLayout"));
/// let land = LayoutTemplate::new("main", LayoutNode::new("FrameLayout"));
/// table.put("main", Qualifiers::any(), ResourceValue::Layout(port));
/// table.put(
///     "main",
///     Qualifiers::any().with_orientation(Orientation::Landscape),
///     ResourceValue::Layout(land),
/// );
/// let layout = table
///     .resolve_layout("main", &Configuration::phone_landscape())
///     .expect("landscape variant");
/// assert_eq!(layout.root.class, "FrameLayout");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceTable {
    entries: BTreeMap<String, Vec<Entry>>,
}

impl ResourceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ResourceTable::default()
    }

    /// Adds a qualified variant of resource `name`. Adding the same
    /// qualifiers twice replaces the earlier payload (last write wins),
    /// matching `aapt`'s per-directory uniqueness.
    pub fn put(&mut self, name: &str, qualifiers: Qualifiers, value: ResourceValue) {
        let variants = self.entries.entry(name.to_owned()).or_default();
        if let Some(existing) = variants.iter_mut().find(|e| e.qualifiers == qualifiers) {
            existing.value = value;
        } else {
            variants.push(Entry { qualifiers, value });
        }
    }

    /// The stable id for `name`, if the name exists.
    pub fn id_of(&self, name: &str) -> Option<ResId> {
        self.entries
            .keys()
            .position(|k| k == name)
            .map(|i| ResId(i as u32))
    }

    /// Resolves `name` against `config`, returning the best-matching
    /// variant per Android precedence rules.
    ///
    /// # Errors
    ///
    /// [`ResourceError::UnknownName`] if no such resource exists;
    /// [`ResourceError::NoMatchingVariant`] if variants exist but none
    /// matches and there is no default.
    pub fn resolve(
        &self,
        name: &str,
        config: &Configuration,
    ) -> Result<&ResourceValue, ResourceError> {
        let variants = self
            .entries
            .get(name)
            .ok_or_else(|| ResourceError::UnknownName(name.to_owned()))?;
        variants
            .iter()
            .filter(|e| e.qualifiers.matches(config))
            .max_by_key(|e| e.qualifiers.specificity())
            .map(|e| &e.value)
            .ok_or_else(|| ResourceError::NoMatchingVariant(name.to_owned()))
    }

    /// Resolves a string resource; `None` on any failure (lenient lookup
    /// used by inflaters that fall back to literals).
    pub fn resolve_string(&self, name: &str, config: &Configuration) -> Option<&str> {
        match self.resolve(name, config) {
            Ok(ResourceValue::String(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Resolves a layout resource.
    ///
    /// # Errors
    ///
    /// As [`ResourceTable::resolve`], plus [`ResourceError::WrongType`] if
    /// the resource is not a layout.
    pub fn resolve_layout(
        &self,
        name: &str,
        config: &Configuration,
    ) -> Result<&LayoutTemplate, ResourceError> {
        match self.resolve(name, config)? {
            ResourceValue::Layout(t) => Ok(t),
            _ => Err(ResourceError::WrongType {
                name: name.to_owned(),
                expected: "layout",
            }),
        }
    }

    /// Resolves a drawable resource, returning `(asset name, bytes hint)`.
    ///
    /// # Errors
    ///
    /// As [`ResourceTable::resolve`], plus [`ResourceError::WrongType`] if
    /// the resource is not a drawable.
    pub fn resolve_drawable(
        &self,
        name: &str,
        config: &Configuration,
    ) -> Result<(&str, u64), ResourceError> {
        match self.resolve(name, config)? {
            ResourceValue::Drawable {
                name: asset,
                bytes_hint,
            } => Ok((asset.as_str(), *bytes_hint)),
            _ => Err(ResourceError::WrongType {
                name: name.to_owned(),
                expected: "drawable",
            }),
        }
    }

    /// Number of distinct resource names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over resource names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutNode;
    use droidsim_config::{Locale, Orientation, UiMode};

    fn table_with_variants() -> ResourceTable {
        let mut t = ResourceTable::new();
        t.put(
            "greeting",
            Qualifiers::any(),
            ResourceValue::string("Hello"),
        );
        t.put(
            "greeting",
            Qualifiers::any().with_language("zh"),
            ResourceValue::string("你好"),
        );
        t.put(
            "greeting",
            Qualifiers::any().with_orientation(Orientation::Landscape),
            ResourceValue::string("Hello (wide)"),
        );
        t
    }

    #[test]
    fn default_variant_matches_base_config() {
        let t = table_with_variants();
        let config = Configuration::phone_portrait();
        assert_eq!(t.resolve_string("greeting", &config), Some("Hello"));
    }

    #[test]
    fn locale_beats_orientation() {
        let t = table_with_variants();
        // Landscape AND Chinese: both qualified variants match; locale wins.
        let config = Configuration::phone_landscape().with_locale(Locale::zh_cn());
        assert_eq!(t.resolve_string("greeting", &config), Some("你好"));
    }

    #[test]
    fn orientation_variant_beats_default() {
        let t = table_with_variants();
        let config = Configuration::phone_landscape();
        assert_eq!(t.resolve_string("greeting", &config), Some("Hello (wide)"));
    }

    #[test]
    fn unknown_name_errors() {
        let t = table_with_variants();
        let err = t
            .resolve("nope", &Configuration::phone_portrait())
            .unwrap_err();
        assert_eq!(err, ResourceError::UnknownName("nope".to_owned()));
    }

    #[test]
    fn no_matching_variant_errors() {
        let mut t = ResourceTable::new();
        t.put(
            "night_only",
            Qualifiers::any().with_ui_mode(UiMode::Night),
            ResourceValue::string("dark"),
        );
        let err = t
            .resolve("night_only", &Configuration::phone_portrait())
            .unwrap_err();
        assert_eq!(
            err,
            ResourceError::NoMatchingVariant("night_only".to_owned())
        );
    }

    #[test]
    fn wrong_type_errors() {
        let t = table_with_variants();
        let err = t
            .resolve_layout("greeting", &Configuration::phone_portrait())
            .unwrap_err();
        assert!(matches!(err, ResourceError::WrongType { .. }));
        assert_eq!(err.to_string(), "resource `greeting` is not a layout");
    }

    #[test]
    fn same_qualifiers_replace() {
        let mut t = ResourceTable::new();
        t.put("x", Qualifiers::any(), ResourceValue::string("old"));
        t.put("x", Qualifiers::any(), ResourceValue::string("new"));
        let config = Configuration::phone_portrait();
        assert_eq!(t.resolve_string("x", &config), Some("new"));
    }

    #[test]
    fn layout_variant_selection() {
        let mut t = ResourceTable::new();
        t.put(
            "main",
            Qualifiers::any(),
            ResourceValue::Layout(LayoutTemplate::new("main", LayoutNode::new("LinearLayout"))),
        );
        t.put(
            "main",
            Qualifiers::any().with_orientation(Orientation::Landscape),
            ResourceValue::Layout(LayoutTemplate::new("main", LayoutNode::new("GridLayout"))),
        );
        let land = t
            .resolve_layout("main", &Configuration::phone_landscape())
            .unwrap();
        assert_eq!(land.root.class, "GridLayout");
        let port = t
            .resolve_layout("main", &Configuration::phone_portrait())
            .unwrap();
        assert_eq!(port.root.class, "LinearLayout");
    }

    #[test]
    fn ids_are_stable_and_dense() {
        let t = table_with_variants();
        assert_eq!(t.id_of("greeting"), Some(ResId(0)));
        assert_eq!(t.id_of("missing"), None);
        assert_eq!(ResId(7).to_string(), "0x7f000007");
    }

    #[test]
    fn drawable_resolution() {
        let mut t = ResourceTable::new();
        t.put(
            "hero",
            Qualifiers::any(),
            ResourceValue::drawable("hero.png", 4096),
        );
        let (asset, bytes) = t
            .resolve_drawable("hero", &Configuration::phone_portrait())
            .unwrap();
        assert_eq!(asset, "hero.png");
        assert_eq!(bytes, 4096);
    }
}
