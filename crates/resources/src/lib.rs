//! Qualifier-based resource table and layout templates.
//!
//! Android selects resources (layouts, strings, drawables) by matching
//! *configuration qualifiers* — `layout-land/`, `values-zh/`, `sw600dp/` —
//! against the current [`Configuration`](droidsim_config::Configuration).
//! A runtime configuration change exists precisely because this selection
//! must be redone: the paper's benchmark app ships `layout-land` and
//! `layout-port` variants (§A.5), and stock Android restarts the activity
//! to reload them.
//!
//! This crate models that machinery:
//!
//! * [`Qualifiers`] — a (partial) predicate over configurations,
//! * [`ResourceTable`] — named resources, each with one or more qualified
//!   variants, resolved by Android-style precedence,
//! * [`LayoutTemplate`] — a data-only view-tree description that the view
//!   crate's inflater instantiates (class names are resolved at inflate
//!   time, exactly like Android XML).
//!
//! # Examples
//!
//! ```
//! use droidsim_config::{Configuration, Orientation};
//! use droidsim_resources::{Qualifiers, ResourceTable, ResourceValue};
//!
//! let mut table = ResourceTable::new();
//! table.put("greeting", Qualifiers::any(), ResourceValue::string("Hello"));
//! table.put(
//!     "greeting",
//!     Qualifiers::any().with_language("zh"),
//!     ResourceValue::string("你好"),
//! );
//! let config = Configuration::phone_portrait();
//! assert_eq!(table.resolve_string("greeting", &config), Some("Hello"));
//! ```

pub mod layout;
pub mod qualifiers;
pub mod table;

pub use layout::{LayoutNode, LayoutTemplate};
pub use qualifiers::Qualifiers;
pub use table::{ConfigResolver, ResId, ResourceError, ResourceTable, ResourceValue};
