//! System locale.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A BCP-47-ish locale tag (language + region), the unit of language
/// switching in the paper's motivation.
///
/// # Examples
///
/// ```
/// use droidsim_config::Locale;
///
/// let en = Locale::new("en", "US");
/// let zh = Locale::new("zh", "CN");
/// assert_ne!(en, zh);
/// assert_eq!(en.to_string(), "en-US");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Locale {
    language: String,
    region: String,
}

impl Locale {
    /// Creates a locale from language and region subtags. Subtags are
    /// normalised (language lowercased, region uppercased).
    pub fn new(language: &str, region: &str) -> Self {
        Locale {
            language: language.to_ascii_lowercase(),
            region: region.to_ascii_uppercase(),
        }
    }

    /// US English — the default system locale.
    pub fn en_us() -> Self {
        Locale::new("en", "US")
    }

    /// Simplified Chinese — used by the language-switch workloads.
    pub fn zh_cn() -> Self {
        Locale::new("zh", "CN")
    }

    /// The language subtag.
    pub fn language(&self) -> &str {
        &self.language
    }

    /// The region subtag.
    pub fn region(&self) -> &str {
        &self.region
    }
}

impl Default for Locale {
    fn default() -> Self {
        Locale::en_us()
    }
}

impl fmt::Display for Locale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.language, self.region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_case() {
        let l = Locale::new("EN", "us");
        assert_eq!(l.language(), "en");
        assert_eq!(l.region(), "US");
        assert_eq!(l, Locale::en_us());
    }

    #[test]
    fn default_is_en_us() {
        assert_eq!(Locale::default(), Locale::en_us());
    }

    #[test]
    fn distinct_locales_differ() {
        assert_ne!(Locale::en_us(), Locale::zh_cn());
    }
}
