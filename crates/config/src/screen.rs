//! Screen geometry: orientation and size in density-independent pixels.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Screen orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Orientation {
    /// Height ≥ width.
    #[default]
    Portrait,
    /// Width > height.
    Landscape,
}

impl Orientation {
    /// The opposite orientation.
    pub const fn flipped(self) -> Orientation {
        match self {
            Orientation::Portrait => Orientation::Landscape,
            Orientation::Landscape => Orientation::Portrait,
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Orientation::Portrait => write!(f, "port"),
            Orientation::Landscape => write!(f, "land"),
        }
    }
}

/// Usable screen size in density-independent pixels.
///
/// # Examples
///
/// ```
/// use droidsim_config::{Orientation, ScreenSize};
///
/// let s = ScreenSize::new(1080, 1920);
/// assert_eq!(s.orientation(), Orientation::Portrait);
/// assert_eq!(s.swapped().orientation(), Orientation::Landscape);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScreenSize {
    /// Width in dp.
    pub width_dp: u32,
    /// Height in dp.
    pub height_dp: u32,
}

impl ScreenSize {
    /// Creates a screen size.
    pub const fn new(width_dp: u32, height_dp: u32) -> Self {
        ScreenSize {
            width_dp,
            height_dp,
        }
    }

    /// The orientation implied by the aspect ratio (square counts as
    /// portrait, matching Android).
    pub const fn orientation(self) -> Orientation {
        if self.width_dp > self.height_dp {
            Orientation::Landscape
        } else {
            Orientation::Portrait
        }
    }

    /// The same physical screen rotated 90°.
    pub const fn swapped(self) -> ScreenSize {
        ScreenSize {
            width_dp: self.height_dp,
            height_dp: self.width_dp,
        }
    }

    /// The smaller of the two dimensions — Android's `smallestWidth`
    /// qualifier, which is rotation-invariant.
    pub const fn smallest_width_dp(self) -> u32 {
        if self.width_dp < self.height_dp {
            self.width_dp
        } else {
            self.height_dp
        }
    }

    /// Total area in dp² (used by the memory model for surface buffers).
    pub const fn area_dp2(self) -> u64 {
        self.width_dp as u64 * self.height_dp as u64
    }
}

impl Default for ScreenSize {
    fn default() -> Self {
        // The evaluation board's screen (1080x1920, §A.5 `wm size 1080x1920`).
        ScreenSize::new(1080, 1920)
    }
}

impl fmt::Display for ScreenSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width_dp, self.height_dp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_follows_aspect() {
        assert_eq!(
            ScreenSize::new(1080, 1920).orientation(),
            Orientation::Portrait
        );
        assert_eq!(
            ScreenSize::new(1920, 1080).orientation(),
            Orientation::Landscape
        );
        assert_eq!(
            ScreenSize::new(500, 500).orientation(),
            Orientation::Portrait
        );
    }

    #[test]
    fn swap_flips_orientation_but_not_smallest_width() {
        let s = ScreenSize::new(1080, 1920);
        assert_eq!(s.swapped(), ScreenSize::new(1920, 1080));
        assert_eq!(s.smallest_width_dp(), s.swapped().smallest_width_dp());
        assert_eq!(s.orientation().flipped(), s.swapped().orientation());
    }

    #[test]
    fn display_matches_wm_size_syntax() {
        assert_eq!(ScreenSize::new(1080, 1920).to_string(), "1080x1920");
    }

    #[test]
    fn area_is_product() {
        assert_eq!(ScreenSize::new(10, 20).area_dp2(), 200);
    }
}
