//! The configuration-change mask.
//!
//! Mirrors Android's `ActivityInfo.CONFIG_*` bits: a set of flags describing
//! which parts of the [`Configuration`](crate::Configuration) differ between
//! two snapshots, and — reused as a *handled mask* — which changes an app
//! declared it handles itself via `android:configChanges`.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitOrAssign, Not};
use serde::{Deserialize, Serialize};

/// A set of configuration-change flags.
///
/// # Examples
///
/// ```
/// use droidsim_config::ConfigChanges;
///
/// let diff = ConfigChanges::ORIENTATION | ConfigChanges::SCREEN_SIZE;
/// let handled = ConfigChanges::ORIENTATION;
/// // The app handles orientation but not screen size → restart required.
/// assert!(!diff.is_subset_of(handled));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ConfigChanges(u32);

impl ConfigChanges {
    /// No changes.
    pub const NONE: ConfigChanges = ConfigChanges(0);
    /// Screen orientation changed (portrait ↔ landscape).
    pub const ORIENTATION: ConfigChanges = ConfigChanges(1 << 0);
    /// Usable screen size changed (rotation, multi-window resize, `wm size`).
    pub const SCREEN_SIZE: ConfigChanges = ConfigChanges(1 << 1);
    /// System locale changed.
    pub const LOCALE: ConfigChanges = ConfigChanges(1 << 2);
    /// Hardware keyboard attached or detached.
    pub const KEYBOARD: ConfigChanges = ConfigChanges(1 << 3);
    /// Keyboard accessibility (hidden state) changed.
    pub const KEYBOARD_HIDDEN: ConfigChanges = ConfigChanges(1 << 4);
    /// Font scale changed.
    pub const FONT_SCALE: ConfigChanges = ConfigChanges(1 << 5);
    /// UI mode (day/night) changed.
    pub const UI_MODE: ConfigChanges = ConfigChanges(1 << 6);
    /// Screen density changed.
    pub const DENSITY: ConfigChanges = ConfigChanges(1 << 7);
    /// Smallest-width bucket changed.
    pub const SMALLEST_SCREEN_SIZE: ConfigChanges = ConfigChanges(1 << 8);

    /// Every flag set — the mask apps use to opt out of all restarts.
    pub const ALL: ConfigChanges = ConfigChanges(0x1FF);

    /// Builds a mask from raw bits (unknown bits are kept, matching
    /// Android's lenient treatment of vendor flags).
    pub const fn from_bits(bits: u32) -> Self {
        ConfigChanges(bits)
    }

    /// The raw bit representation.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Whether no flag is set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether every flag in `other` is also set in `self`.
    pub const fn contains(self, other: ConfigChanges) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether every flag in `self` is covered by `mask` — i.e. an app with
    /// handled-mask `mask` does **not** need a restart for this diff.
    pub const fn is_subset_of(self, mask: ConfigChanges) -> bool {
        self.0 & !mask.0 == 0
    }

    /// Whether any flag is shared with `other`.
    pub const fn intersects(self, other: ConfigChanges) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of individual flags set.
    pub const fn flag_count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterator over the individual set flags.
    pub fn iter(self) -> impl Iterator<Item = ConfigChanges> {
        (0..9u32)
            .map(|b| ConfigChanges(1 << b))
            .filter(move |f| self.contains(*f))
    }
}

impl BitOr for ConfigChanges {
    type Output = ConfigChanges;

    fn bitor(self, rhs: ConfigChanges) -> ConfigChanges {
        ConfigChanges(self.0 | rhs.0)
    }
}

impl BitOrAssign for ConfigChanges {
    fn bitor_assign(&mut self, rhs: ConfigChanges) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for ConfigChanges {
    type Output = ConfigChanges;

    fn bitand(self, rhs: ConfigChanges) -> ConfigChanges {
        ConfigChanges(self.0 & rhs.0)
    }
}

impl Not for ConfigChanges {
    type Output = ConfigChanges;

    fn not(self) -> ConfigChanges {
        ConfigChanges(!self.0 & Self::ALL.0)
    }
}

impl fmt::Display for ConfigChanges {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "none");
        }
        const NAMES: [(ConfigChanges, &str); 9] = [
            (ConfigChanges::ORIENTATION, "orientation"),
            (ConfigChanges::SCREEN_SIZE, "screenSize"),
            (ConfigChanges::LOCALE, "locale"),
            (ConfigChanges::KEYBOARD, "keyboard"),
            (ConfigChanges::KEYBOARD_HIDDEN, "keyboardHidden"),
            (ConfigChanges::FONT_SCALE, "fontScale"),
            (ConfigChanges::UI_MODE, "uiMode"),
            (ConfigChanges::DENSITY, "density"),
            (ConfigChanges::SMALLEST_SCREEN_SIZE, "smallestScreenSize"),
        ];
        let mut first = true;
        for (flag, name) in NAMES {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

impl FromIterator<ConfigChanges> for ConfigChanges {
    fn from_iter<T: IntoIterator<Item = ConfigChanges>>(iter: T) -> Self {
        iter.into_iter().fold(ConfigChanges::NONE, |acc, f| acc | f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_containment() {
        let d = ConfigChanges::ORIENTATION | ConfigChanges::LOCALE;
        assert!(d.contains(ConfigChanges::ORIENTATION));
        assert!(d.contains(ConfigChanges::LOCALE));
        assert!(!d.contains(ConfigChanges::KEYBOARD));
        assert_eq!(d.flag_count(), 2);
    }

    #[test]
    fn subset_drives_restart_decision() {
        let diff = ConfigChanges::ORIENTATION | ConfigChanges::SCREEN_SIZE;
        assert!(diff.is_subset_of(ConfigChanges::ALL));
        assert!(!diff.is_subset_of(ConfigChanges::ORIENTATION));
        assert!(ConfigChanges::NONE.is_subset_of(ConfigChanges::NONE));
    }

    #[test]
    fn not_is_complement_within_all() {
        let d = ConfigChanges::ORIENTATION;
        let c = !d;
        assert!(!c.contains(ConfigChanges::ORIENTATION));
        assert_eq!(d | c, ConfigChanges::ALL);
        assert_eq!(d & c, ConfigChanges::NONE);
    }

    #[test]
    fn display_lists_flags() {
        let d = ConfigChanges::ORIENTATION | ConfigChanges::SCREEN_SIZE;
        assert_eq!(d.to_string(), "orientation|screenSize");
        assert_eq!(ConfigChanges::NONE.to_string(), "none");
    }

    #[test]
    fn iter_round_trips() {
        let d = ConfigChanges::LOCALE | ConfigChanges::FONT_SCALE | ConfigChanges::UI_MODE;
        let rebuilt: ConfigChanges = d.iter().collect();
        assert_eq!(rebuilt, d);
    }

    #[test]
    fn all_covers_every_named_flag() {
        let every: ConfigChanges = [
            ConfigChanges::ORIENTATION,
            ConfigChanges::SCREEN_SIZE,
            ConfigChanges::LOCALE,
            ConfigChanges::KEYBOARD,
            ConfigChanges::KEYBOARD_HIDDEN,
            ConfigChanges::FONT_SCALE,
            ConfigChanges::UI_MODE,
            ConfigChanges::DENSITY,
            ConfigChanges::SMALLEST_SCREEN_SIZE,
        ]
        .into_iter()
        .collect();
        assert_eq!(every, ConfigChanges::ALL);
    }
}
