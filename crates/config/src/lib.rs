//! Android configuration model.
//!
//! An Android [`Configuration`] describes the device state that resource
//! selection depends on: screen orientation and size, locale, keyboard
//! attachment, font scale and UI (day/night) mode. When any of these change
//! while an app is in the foreground, the system computes a *change mask*
//! ([`ConfigChanges`]) describing what differs and, in stock Android,
//! restarts the foreground activity unless the app declared that it handles
//! those changes itself (the `android:configChanges` manifest attribute,
//! modelled by [`ConfigChanges`] handled-masks).
//!
//! # Examples
//!
//! ```
//! use droidsim_config::{Configuration, ConfigChanges, Orientation};
//!
//! let portrait = Configuration::phone_portrait();
//! let landscape = portrait.rotated();
//! let diff = portrait.diff(&landscape);
//! assert!(diff.contains(ConfigChanges::ORIENTATION));
//! assert!(diff.contains(ConfigChanges::SCREEN_SIZE));
//! assert_eq!(landscape.orientation, Orientation::Landscape);
//! ```

pub mod changes;
pub mod configuration;
pub mod locale;
pub mod screen;

pub use changes::ConfigChanges;
pub use configuration::{Configuration, KeyboardState, UiMode};
pub use locale::Locale;
pub use screen::{Orientation, ScreenSize};
