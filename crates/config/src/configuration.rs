//! The full device configuration snapshot and diffing.

use crate::changes::ConfigChanges;
use crate::locale::Locale;
use crate::screen::{Orientation, ScreenSize};
use core::fmt;
use serde::{Deserialize, Serialize};

/// Hardware keyboard attachment state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KeyboardState {
    /// No hardware keyboard.
    #[default]
    None,
    /// Keyboard attached and usable.
    Attached,
    /// Keyboard attached but hidden (e.g. a folded slider).
    Hidden,
}

/// Day/night UI mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum UiMode {
    /// Light theme.
    #[default]
    Day,
    /// Dark theme.
    Night,
}

/// A snapshot of the device configuration — the inputs to resource
/// selection and the trigger of runtime changes.
///
/// # Examples
///
/// ```
/// use droidsim_config::{ConfigChanges, Configuration, Locale};
///
/// let base = Configuration::phone_portrait();
/// let translated = base.with_locale(Locale::zh_cn());
/// assert_eq!(base.diff(&translated), ConfigChanges::LOCALE);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    /// Screen orientation.
    pub orientation: Orientation,
    /// Usable screen size in dp.
    pub screen: ScreenSize,
    /// System locale.
    pub locale: Locale,
    /// Hardware keyboard state.
    pub keyboard: KeyboardState,
    /// Font scale ×1000 (kept integral so `Configuration: Eq + Hash`).
    pub font_scale_milli: u32,
    /// Day/night mode.
    pub ui_mode: UiMode,
    /// Screen density in dpi.
    pub density_dpi: u32,
}

impl Configuration {
    /// The evaluation board's default: 1080×1920 portrait, en-US, 420 dpi.
    pub fn phone_portrait() -> Self {
        Configuration {
            orientation: Orientation::Portrait,
            screen: ScreenSize::new(1080, 1920),
            locale: Locale::en_us(),
            keyboard: KeyboardState::None,
            font_scale_milli: 1000,
            ui_mode: UiMode::Day,
            density_dpi: 420,
        }
    }

    /// The same device rotated 90°: `wm size 1920x1080` in the paper's
    /// experiment workflow (§A.5).
    pub fn phone_landscape() -> Self {
        Configuration::phone_portrait().rotated()
    }

    /// Returns this configuration rotated 90° (orientation flips, screen
    /// dimensions swap).
    pub fn rotated(&self) -> Configuration {
        let mut next = self.clone();
        next.screen = self.screen.swapped();
        next.orientation = next.screen.orientation();
        next
    }

    /// Returns this configuration with a different locale.
    pub fn with_locale(&self, locale: Locale) -> Configuration {
        let mut next = self.clone();
        next.locale = locale;
        next
    }

    /// Returns this configuration with a different keyboard state.
    pub fn with_keyboard(&self, keyboard: KeyboardState) -> Configuration {
        let mut next = self.clone();
        next.keyboard = keyboard;
        next
    }

    /// Returns this configuration with a different UI mode.
    pub fn with_ui_mode(&self, ui_mode: UiMode) -> Configuration {
        let mut next = self.clone();
        next.ui_mode = ui_mode;
        next
    }

    /// Returns this configuration with a different font scale (×1000).
    pub fn with_font_scale_milli(&self, font_scale_milli: u32) -> Configuration {
        let mut next = self.clone();
        next.font_scale_milli = font_scale_milli;
        next
    }

    /// Returns this configuration with an explicit screen size (the
    /// `wm size WxH` debug command used by the paper's workflow). The
    /// orientation is recomputed from the aspect ratio.
    pub fn with_screen(&self, screen: ScreenSize) -> Configuration {
        let mut next = self.clone();
        next.screen = screen;
        next.orientation = screen.orientation();
        next
    }

    /// Computes the change mask between `self` (old) and `new`.
    ///
    /// Returns [`ConfigChanges::NONE`] when the snapshots are identical.
    pub fn diff(&self, new: &Configuration) -> ConfigChanges {
        let mut mask = ConfigChanges::NONE;
        if self.orientation != new.orientation {
            mask |= ConfigChanges::ORIENTATION;
        }
        if self.screen != new.screen {
            mask |= ConfigChanges::SCREEN_SIZE;
            if self.screen.smallest_width_dp() != new.screen.smallest_width_dp() {
                mask |= ConfigChanges::SMALLEST_SCREEN_SIZE;
            }
        }
        if self.locale != new.locale {
            mask |= ConfigChanges::LOCALE;
        }
        if self.keyboard != new.keyboard {
            mask |= ConfigChanges::KEYBOARD;
            if matches!(self.keyboard, KeyboardState::Hidden)
                || matches!(new.keyboard, KeyboardState::Hidden)
            {
                mask |= ConfigChanges::KEYBOARD_HIDDEN;
            }
        }
        if self.font_scale_milli != new.font_scale_milli {
            mask |= ConfigChanges::FONT_SCALE;
        }
        if self.ui_mode != new.ui_mode {
            mask |= ConfigChanges::UI_MODE;
        }
        if self.density_dpi != new.density_dpi {
            mask |= ConfigChanges::DENSITY;
        }
        mask
    }

    /// Font scale as a float.
    pub fn font_scale(&self) -> f64 {
        self.font_scale_milli as f64 / 1000.0
    }
}

impl Default for Configuration {
    fn default() -> Self {
        Configuration::phone_portrait()
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {:?}",
            self.orientation, self.screen, self.locale, self.ui_mode
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_configs_have_empty_diff() {
        let c = Configuration::phone_portrait();
        assert_eq!(c.diff(&c), ConfigChanges::NONE);
    }

    #[test]
    fn rotation_changes_orientation_and_size() {
        let p = Configuration::phone_portrait();
        let l = p.rotated();
        let diff = p.diff(&l);
        assert!(diff.contains(ConfigChanges::ORIENTATION));
        assert!(diff.contains(ConfigChanges::SCREEN_SIZE));
        // smallestWidth is rotation-invariant.
        assert!(!diff.contains(ConfigChanges::SMALLEST_SCREEN_SIZE));
    }

    #[test]
    fn double_rotation_is_identity() {
        let p = Configuration::phone_portrait();
        assert_eq!(p.rotated().rotated(), p);
    }

    #[test]
    fn wm_size_resize_without_rotation() {
        // `wm size 1080x2000`: same orientation, different size.
        let p = Configuration::phone_portrait();
        let resized = p.with_screen(ScreenSize::new(1080, 2000));
        let diff = p.diff(&resized);
        assert!(!diff.contains(ConfigChanges::ORIENTATION));
        assert!(diff.contains(ConfigChanges::SCREEN_SIZE));
    }

    #[test]
    fn locale_switch_sets_only_locale() {
        let p = Configuration::phone_portrait();
        let zh = p.with_locale(Locale::zh_cn());
        assert_eq!(p.diff(&zh), ConfigChanges::LOCALE);
    }

    #[test]
    fn keyboard_attach_flags_keyboard() {
        let p = Configuration::phone_portrait();
        let k = p.with_keyboard(KeyboardState::Attached);
        assert!(p.diff(&k).contains(ConfigChanges::KEYBOARD));
    }

    #[test]
    fn night_mode_flags_ui_mode() {
        let p = Configuration::phone_portrait();
        let n = p.with_ui_mode(UiMode::Night);
        assert_eq!(p.diff(&n), ConfigChanges::UI_MODE);
    }

    #[test]
    fn diff_is_symmetric() {
        let a = Configuration::phone_portrait();
        let b = a.rotated().with_locale(Locale::zh_cn());
        assert_eq!(a.diff(&b), b.diff(&a));
    }
}
