//! Property: **any** byte-prefix truncation of a daemon journal — the
//! on-disk state a crash at an arbitrary instant leaves behind — still
//! restarts, and the restarted daemon settles every job the truncated
//! journal acknowledges to the digest the uninterrupted executor
//! produces.
//!
//! The base journal is built once by a real daemon life that is
//! fast-stopped mid-backlog (so it holds a mix of terminal and
//! acknowledged-but-incomplete records); each proptest case chops its
//! bytes at a drawn offset and drives a fresh daemon over the remains.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use droidsim_daemon::{
    Admission, Daemon, DaemonConfig, DaemonJournal, JobControl, JobExecutor, JobKind, JobSpec,
    JobVerdict, ShutdownMode,
};
use droidsim_metrics::FleetLedger;
use proptest::prelude::*;

/// The executor both lives use: digest is a pure function of the seed,
/// so "the clean digest" is computable without running anything.
struct EchoExecutor {
    work: Duration,
}

const DIGEST_MASK: u64 = 0xEC40_0000_0000_0000;

fn expected_digest(seed: u64) -> u64 {
    seed ^ DIGEST_MASK
}

impl JobExecutor for EchoExecutor {
    fn execute(&self, spec: &JobSpec, ctl: &JobControl) -> JobVerdict {
        let deadline = std::time::Instant::now() + self.work;
        while std::time::Instant::now() < deadline {
            if ctl.cancel.is_cancelled() {
                return JobVerdict::Cancelled {
                    reason: "token observed".to_owned(),
                };
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        JobVerdict::Done {
            digest: expected_digest(spec.seed),
            fleet: FleetLedger::new(),
        }
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "droidsimd-prop-journal-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One real daemon life, fast-stopped with work still in flight: the
/// journal it leaves holds accepted records with and without terminal
/// states. Built once; every case truncates a copy of these bytes.
fn base_journal() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let dir = scratch("base");
        let daemon = Daemon::start(
            DaemonConfig::new()
                .with_workers(1)
                .with_journal_dir(&dir)
                .with_tick(Duration::from_millis(5)),
            EchoExecutor {
                work: Duration::from_millis(15),
            },
        )
        .unwrap();
        for i in 0..6u64 {
            let spec = JobSpec::new(JobKind::Fig10).with_seed(100 + i);
            assert!(matches!(daemon.submit(spec), Admission::Accepted { .. }));
        }
        // Let a couple of jobs finish, then stop fast: the rest stay
        // acknowledged-but-incomplete (parked) in the journal.
        std::thread::sleep(Duration::from_millis(40));
        daemon.shutdown(ShutdownMode::Now);
        std::fs::read(dir.join("daemon.journal")).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_prefix_truncation_resumes_to_the_clean_digest(frac in 0u64..10_001) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let bytes = base_journal();
        let len = (bytes.len() as u64 * frac / 10_000) as usize;
        let dir = scratch(&format!("case-{}", CASE.fetch_add(1, Ordering::Relaxed)));
        let path = dir.join("daemon.journal");
        std::fs::write(&path, &bytes[..len]).unwrap();

        // What the truncated journal acknowledges, read *before* any
        // repair or restart touches the file. A torn header is the one
        // unreadable case — and it proves nothing was ever accepted.
        let (jobs, incomplete) = match DaemonJournal::load(&path) {
            Ok(view) => (
                view.jobs
                    .values()
                    .map(|j| (j.id, j.spec.seed))
                    .collect::<Vec<_>>(),
                view.incomplete().count() as u64,
            ),
            Err(_) => (Vec::new(), 0),
        };

        // Whatever the truncation did, the daemon must start: torn
        // tails (and even a torn header) are repaired, never fatal.
        let daemon = Daemon::start(
            DaemonConfig::new()
                .with_workers(2)
                .with_journal_dir(&dir)
                .with_tick(Duration::from_millis(5)),
            EchoExecutor { work: Duration::ZERO },
        )
        .unwrap();
        prop_assert_eq!(daemon.stats().ledger.resumed, incomplete);
        daemon.shutdown(ShutdownMode::Drain);
        // Every acknowledged job — terminal in the journal or resumed
        // this life — settles to the seed's clean digest.
        for (id, seed) in jobs {
            let status = daemon.status(id).expect("acknowledged job is queryable");
            prop_assert_eq!(
                status.state.digest(),
                Some(expected_digest(seed)),
                "job {} (seed {})", id, seed
            );
        }
        // And a third life resumes nothing: the drain settled it all.
        drop(daemon);
        let again = Daemon::start(
            DaemonConfig::new().with_journal_dir(&dir),
            EchoExecutor { work: Duration::ZERO },
        )
        .unwrap();
        prop_assert_eq!(again.stats().ledger.resumed, 0);
        again.shutdown(ShutdownMode::Drain);
    }
}
