//! Protocol-edge properties: the daemon's socket endpoint survives
//! arbitrary bytes, and the dedupe key keeps any resubmission schedule
//! down to exactly one execution.
//!
//! * **Fuzz**: feed arbitrary byte lines (including invalid UTF-8,
//!   empty lines, and lines past the length bound) to a live server.
//!   Every answered line carries an explicit `ok=` verdict — garbage
//!   gets exactly one `ok=false`, never silence — or the connection
//!   closes cleanly; the server never panics and keeps serving fresh
//!   connections afterwards.
//! * **Idempotency**: any schedule of keyed resubmits executes each
//!   key exactly once, and every duplicate converges on the id the
//!   first acceptance was given.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use droidsim_daemon::server::{self, ServerConfig};
use droidsim_daemon::{
    Admission, Daemon, DaemonConfig, JobControl, JobExecutor, JobKind, JobSpec, JobVerdict,
    ShutdownMode,
};
use droidsim_metrics::FleetLedger;
use proptest::collection;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "droidsimd-prop-proto-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct EchoExecutor;

impl JobExecutor for EchoExecutor {
    fn execute(&self, spec: &JobSpec, _ctl: &JobControl) -> JobVerdict {
        JobVerdict::Done {
            digest: spec.seed ^ 0xF022,
            fleet: FleetLedger::new(),
        }
    }
}

/// One server shared by every fuzz case (started lazily, never shut
/// down — the property is precisely that no input kills it). A tight
/// line bound and read timeout keep the hostile paths cheap to reach.
const FUZZ_LINE_BOUND: usize = 256;

fn fuzz_socket() -> &'static PathBuf {
    static SOCKET: OnceLock<PathBuf> = OnceLock::new();
    SOCKET.get_or_init(|| {
        let socket = scratch("fuzz").join("droidsimd.sock");
        let daemon =
            Arc::new(Daemon::start(DaemonConfig::new().with_workers(1), EchoExecutor).unwrap());
        let cfg = ServerConfig::new()
            .with_max_line_bytes(FUZZ_LINE_BOUND)
            .with_read_timeout(Duration::from_millis(400));
        {
            let socket = socket.clone();
            std::thread::spawn(move || server::serve_with(&daemon, &socket, cfg));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while !socket.exists() {
            assert!(Instant::now() < deadline, "fuzz server never bound");
            std::thread::sleep(Duration::from_millis(5));
        }
        socket
    })
}

fn connect(socket: &PathBuf) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(s) = UnixStream::connect(socket) {
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            return s;
        }
        assert!(Instant::now() < deadline, "server socket never appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A line of bytes to throw at the server. Newlines are stripped so
/// each case controls exactly how many request lines it sends;
/// `shutdown` is scrubbed so a miracle of randomness cannot stop the
/// shared server.
fn hostile_line() -> impl Strategy<Value = Vec<u8>> {
    collection::vec(any::<u8>(), 0..(FUZZ_LINE_BOUND * 2)).prop_map(|mut bytes| {
        bytes.retain(|&b| b != b'\n' && b != b'\r');
        if bytes
            .windows(b"shutdown".len())
            .any(|w| w.eq_ignore_ascii_case(b"shutdown"))
        {
            bytes.clear();
        }
        bytes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_byte_lines_never_kill_the_server(
        lines in collection::vec(hostile_line(), 1..8)
    ) {
        let socket = fuzz_socket();
        let mut stream = connect(socket);
        for line in &lines {
            stream.write_all(line).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        stream.shutdown(std::net::Shutdown::Write).unwrap();

        // Drain the responses: at most one per line sent (a line past
        // the bound ends the connection early), each a complete line
        // with an explicit ok= verdict. Never a panic, never silence
        // followed by more answers.
        let mut reader = BufReader::new(stream);
        let mut responses = 0usize;
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    prop_assert!(line.ends_with('\n'), "torn response {line:?}");
                    prop_assert!(
                        line.contains("ok=true") || line.contains("ok=false"),
                        "response without a verdict: {line:?}"
                    );
                    responses += 1;
                }
                Err(e) => return Err(TestCaseError::fail(format!("read failed: {e}"))),
            }
        }
        prop_assert!(
            responses <= lines.len(),
            "{responses} responses to {} lines",
            lines.len()
        );

        // The server is still alive: a fresh, well-formed request round
        // trips.
        let mut probe = connect(socket);
        probe.write_all(b"cmd=ping\n").unwrap();
        let mut reader = BufReader::new(probe);
        let mut pong = String::new();
        reader.read_line(&mut pong).unwrap();
        prop_assert!(pong.contains("pong=1"), "server unresponsive: {pong:?}");
    }
}

/// Counts executions per seed — the oracle for exactly-once.
struct CountingExecutor {
    runs: Arc<Mutex<BTreeMap<u64, u64>>>,
}

impl JobExecutor for CountingExecutor {
    fn execute(&self, spec: &JobSpec, _ctl: &JobControl) -> JobVerdict {
        *self.runs.lock().unwrap().entry(spec.seed).or_insert(0) += 1;
        JobVerdict::Done {
            digest: spec.seed,
            fleet: FleetLedger::new(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_resubmission_schedule_executes_each_key_once(
        schedule in collection::vec(0u64..5, 1..24)
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let _ = CASE.fetch_add(1, Ordering::Relaxed);
        let runs = Arc::new(Mutex::new(BTreeMap::new()));
        let daemon = Daemon::start(
            DaemonConfig::new().with_workers(2),
            CountingExecutor { runs: Arc::clone(&runs) },
        )
        .unwrap();

        let mut first_id: BTreeMap<u64, u64> = BTreeMap::new();
        for &key in &schedule {
            let spec = JobSpec::new(JobKind::Fig10)
                .with_seed(key)
                .with_dedupe_key(format!("prop-key-{key}"));
            match daemon.submit(spec) {
                Admission::Accepted { id, .. } => {
                    prop_assert!(
                        first_id.insert(key, id).is_none(),
                        "key {} accepted twice", key
                    );
                }
                Admission::Duplicate { id } => {
                    prop_assert_eq!(
                        first_id.get(&key).copied(),
                        Some(id),
                        "duplicate of key {} diverged", key
                    );
                }
                Admission::Rejected { reason } => {
                    return Err(TestCaseError::fail(format!("rejected: {reason}")));
                }
            }
        }
        daemon.shutdown(ShutdownMode::Drain);

        let runs = runs.lock().unwrap();
        for &key in &schedule {
            prop_assert_eq!(
                runs.get(&key).copied(),
                Some(1),
                "key {} did not execute exactly once", key
            );
        }
    }
}
