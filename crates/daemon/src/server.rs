//! The Unix-socket front of the daemon: one `key=value` request line
//! in, one response line out.
//!
//! The transport is deliberately as primitive as the journals: a local
//! `SOCK_STREAM` Unix socket carrying newline-delimited records in the
//! kernel's `key=value` codec. Any shell can drive it (`nc -U`), the
//! [`Client`](crate::client::Client) wraps it, and every request is
//! answered — malformed lines get `ok=false error=…` responses, never
//! a dropped connection.
//!
//! | request                              | response                                      |
//! |--------------------------------------|-----------------------------------------------|
//! | `cmd=ping`                           | `ok=true pong=1`                              |
//! | `cmd=submit job=… seed=… priority=…` | `ok=true result=accepted job_id=… queue_depth=…` or `ok=true result=rejected reason=…` |
//! | `cmd=status job_id=…`                | `ok=true job_id=… state=… [digest=…] [reason=…]` |
//! | `cmd=wait job_id=… [timeout_ms=…]`   | like `status`, plus `result=settled`/`timeout` |
//! | `cmd=cancel job_id=…`                | like `status`                                 |
//! | `cmd=health`                         | `ok=true state=… queue_depth=… in_flight=…`   |
//! | `cmd=stats`                          | `ok=true` + the full daemon ledger + fleet fingerprint |
//! | `cmd=shutdown [mode=drain\|now]`     | `ok=true result=stopped` (after stopping)     |

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use droidsim_kernel::journal;

use crate::daemon::{Admission, Daemon, ShutdownMode};
use crate::spec::JobSpec;
use crate::{encode_fields, DaemonError};

/// Default `cmd=wait` timeout when the request names none.
pub const DEFAULT_WAIT_MS: u64 = 60_000;

/// Serves `daemon` on `socket_path` until the daemon stops. A stale
/// socket file (a previous life that died hard) is replaced. Each
/// connection gets its own thread; a connection may issue any number
/// of requests.
pub fn serve(daemon: &Arc<Daemon>, socket_path: &Path) -> Result<(), DaemonError> {
    if socket_path.exists() {
        std::fs::remove_file(socket_path)?;
    }
    let listener = UnixListener::bind(socket_path)?;
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let daemon = Arc::clone(daemon);
                std::thread::spawn(move || handle_connection(&daemon, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if daemon.is_stopped() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                let _ = std::fs::remove_file(socket_path);
                return Err(DaemonError::Io(e));
            }
        }
    }
    let _ = std::fs::remove_file(socket_path);
    Ok(())
}

fn handle_connection(daemon: &Arc<Daemon>, stream: UnixStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else {
            return; // client went away
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match journal::decode_line(&line) {
            Some(fields) => dispatch(daemon, &fields),
            None => error_response("malformed-request"),
        };
        if writeln!(write_half, "{}", encode_fields(&response)).is_err() {
            return;
        }
        let _ = write_half.flush();
    }
}

fn error_response(error: &str) -> Vec<(&'static str, String)> {
    vec![("ok", "false".to_owned()), ("error", error.to_owned())]
}

fn status_response(daemon: &Daemon, id: Option<u64>) -> Vec<(&'static str, String)> {
    let Some(id) = id else {
        return error_response("missing-job-id");
    };
    match daemon.status(id) {
        Some(status) => {
            let mut out = vec![("ok", "true".to_owned())];
            out.extend(status.kv_fields());
            out
        }
        None => error_response("unknown-job"),
    }
}

/// Routes one decoded request to the daemon and renders the response
/// fields. Public within the crate so in-process tests can drive the
/// protocol without a socket.
pub(crate) fn dispatch(
    daemon: &Daemon,
    fields: &[(String, String)],
) -> Vec<(&'static str, String)> {
    let id = journal::field(fields, "job_id").and_then(|v| v.parse::<u64>().ok());
    match journal::field(fields, "cmd") {
        Some("ping") => vec![("ok", "true".to_owned()), ("pong", "1".to_owned())],
        Some("submit") => match JobSpec::from_fields(fields) {
            Ok(spec) => match daemon.submit(spec) {
                Admission::Accepted { id, queue_depth } => vec![
                    ("ok", "true".to_owned()),
                    ("result", "accepted".to_owned()),
                    ("job_id", id.to_string()),
                    ("queue_depth", queue_depth.to_string()),
                ],
                Admission::Rejected { reason } => vec![
                    ("ok", "true".to_owned()),
                    ("result", "rejected".to_owned()),
                    ("reason", reason),
                ],
            },
            Err(e) => {
                let mut out = error_response("bad-spec");
                out.push(("detail", e));
                out
            }
        },
        Some("status") => status_response(daemon, id),
        Some("wait") => {
            let Some(id) = id else {
                return error_response("missing-job-id");
            };
            let timeout_ms = journal::field(fields, "timeout_ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_WAIT_MS);
            match daemon.wait(id, Duration::from_millis(timeout_ms)) {
                Some(status) => {
                    let mut out = vec![
                        ("ok", "true".to_owned()),
                        (
                            "result",
                            if status.state.is_terminal() {
                                "settled".to_owned()
                            } else {
                                "timeout".to_owned()
                            },
                        ),
                    ];
                    out.extend(status.kv_fields());
                    out
                }
                None => error_response("unknown-job"),
            }
        }
        Some("cancel") => {
            let Some(id) = id else {
                return error_response("missing-job-id");
            };
            match daemon.cancel(id) {
                Some(status) => {
                    let mut out = vec![("ok", "true".to_owned())];
                    out.extend(status.kv_fields());
                    out
                }
                None => error_response("unknown-job"),
            }
        }
        Some("health") => {
            let stats = daemon.stats();
            let state = if daemon.is_stopped() {
                "stopped"
            } else if daemon.is_draining() {
                "draining"
            } else {
                "running"
            };
            vec![
                ("ok", "true".to_owned()),
                ("state", state.to_owned()),
                ("workers", stats.workers.to_string()),
                ("queue_capacity", stats.queue_capacity.to_string()),
                ("queue_depth", stats.ledger.queue_depth.to_string()),
                ("in_flight", stats.ledger.in_flight().to_string()),
            ]
        }
        Some("stats") => {
            let stats = daemon.stats();
            let mut out = vec![("ok", "true".to_owned())];
            out.extend(stats.ledger.kv_fields());
            // Warm-path cache telemetry (fingerprint-excluded): the memo
            // caches live as process statics, so a live capture here is
            // exactly the worker pool's accumulated hit/miss picture.
            out.extend(droidsim_metrics::MemoLedger::capture().kv_fields());
            out.push(("workers", stats.workers.to_string()));
            out.push(("queue_capacity", stats.queue_capacity.to_string()));
            out.push(("fleet", stats.fleet.deterministic_fingerprint()));
            out
        }
        Some("shutdown") => {
            let mode = journal::field(fields, "mode")
                .and_then(ShutdownMode::parse)
                .unwrap_or(ShutdownMode::Drain);
            daemon.shutdown(mode);
            vec![
                ("ok", "true".to_owned()),
                ("result", "stopped".to_owned()),
                ("mode", mode.name().to_owned()),
            ]
        }
        _ => error_response("unknown-cmd"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{DaemonConfig, JobControl, JobExecutor, JobVerdict};
    use crate::spec::{JobKind, JobSpec};
    use crate::Client;
    use droidsim_metrics::FleetLedger;
    use std::path::PathBuf;

    struct EchoExecutor;

    impl JobExecutor for EchoExecutor {
        fn execute(&self, spec: &JobSpec, _ctl: &JobControl) -> JobVerdict {
            JobVerdict::Done {
                digest: spec.seed ^ 0xABCD,
                fleet: FleetLedger::new(),
            }
        }
    }

    fn scratch_socket(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("droidsimd-server-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("droidsimd.sock")
    }

    #[test]
    fn socket_round_trip_submit_wait_stats_shutdown() {
        let socket = scratch_socket("round-trip");
        let daemon = Arc::new(Daemon::start(DaemonConfig::new(), EchoExecutor).unwrap());
        let server = {
            let daemon = Arc::clone(&daemon);
            let socket = socket.clone();
            std::thread::spawn(move || serve(&daemon, &socket))
        };
        let mut client = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
        assert!(client.ping().unwrap());

        let spec = JobSpec::new(JobKind::Fig10)
            .with_seed(7)
            .with_tag("via socket");
        let id = match client.submit(&spec).unwrap() {
            Admission::Accepted { id, .. } => id,
            Admission::Rejected { reason } => panic!("rejected: {reason}"),
        };
        let status = client.wait(id, Duration::from_secs(5)).unwrap();
        assert_eq!(status.state.digest(), Some(7 ^ 0xABCD));
        assert_eq!(status.tag, "via socket");

        let stats = client.stats().unwrap();
        assert_eq!(journal::field(&stats, "accepted"), Some("1"));
        assert_eq!(journal::field(&stats, "completed"), Some("1"));
        assert!(journal::field(&stats, "queue_high_water").is_some());
        assert!(journal::field(&stats, "alloc_events").is_some());
        assert!(journal::field(&stats, "fleet").is_some());

        client.shutdown(ShutdownMode::Drain).unwrap();
        server.join().unwrap().unwrap();
        assert!(!socket.exists(), "socket file is cleaned up");
    }

    #[test]
    fn malformed_and_unknown_requests_get_explicit_errors() {
        let daemon = Daemon::start(DaemonConfig::new(), EchoExecutor).unwrap();
        let bad = journal::decode_line("cmd=warp job_id=1").unwrap();
        let resp = dispatch(&daemon, &bad);
        assert_eq!(resp[0].1, "false");
        let unknown = journal::decode_line("cmd=status job_id=999").unwrap();
        let resp = dispatch(&daemon, &unknown);
        assert!(resp
            .iter()
            .any(|(k, v)| *k == "error" && v == "unknown-job"));
        let no_id = journal::decode_line("cmd=wait").unwrap();
        let resp = dispatch(&daemon, &no_id);
        assert!(resp
            .iter()
            .any(|(k, v)| *k == "error" && v == "missing-job-id"));
        daemon.shutdown(ShutdownMode::Drain);
    }
}
