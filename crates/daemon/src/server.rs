//! The Unix-socket front of the daemon: one `key=value` request line
//! in, one response line out.
//!
//! The transport is deliberately as primitive as the journals: a local
//! `SOCK_STREAM` Unix socket carrying newline-delimited records in the
//! kernel's `key=value` codec. Any shell can drive it (`nc -U`), the
//! [`Client`](crate::client::Client) wraps it, and every request is
//! answered — malformed lines get `ok=false error=…` responses, never
//! a dropped connection.
//!
//! | request                              | response                                      |
//! |--------------------------------------|-----------------------------------------------|
//! | `cmd=ping`                           | `ok=true pong=1`                              |
//! | `cmd=submit job=… seed=… [dedupe=…]` | `ok=true result=accepted job_id=… queue_depth=…`, `result=rejected reason=…`, or `result=duplicate job_id=…` |
//! | `cmd=status job_id=…`                | `ok=true job_id=… state=… [digest=…] [reason=…]` |
//! | `cmd=wait job_id=… [timeout_ms=…]`   | like `status`, plus `result=settled`/`timeout` |
//! | `cmd=cancel job_id=…`                | like `status`                                 |
//! | `cmd=health`                         | `ok=true state=running\|draining\|degraded\|stopped` + journal/queue fields |
//! | `cmd=stats`                          | `ok=true` + the full daemon ledger + fleet fingerprint |
//! | `cmd=shutdown [mode=drain\|now]`     | `ok=true result=stopped` (after stopping)     |
//!
//! A **connection governor** keeps a hostile or broken client from
//! taking the edge down ([`ServerConfig`]): a per-connection read
//! timeout closes stalled connections (slowloris defense), request
//! lines are read through a bounded buffer so a newline-less stream
//! cannot exhaust memory (`error=line-too-long`, then close), and a
//! concurrent-connection cap answers overflow with an explicit
//! `error=too-many-connections` instead of an unbounded thread pile.
//! Every governor action is visible in `cmd=stats`
//! (`conns_rejected`, `slowloris_closed`).

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use droidsim_faults::FaultSite;
use droidsim_kernel::journal;

use crate::daemon::{Admission, Daemon, ShutdownMode};
use crate::faultio::IoFaults;
use crate::spec::JobSpec;
use crate::{encode_fields, DaemonError};

/// Default `cmd=wait` timeout when the request names none.
pub const DEFAULT_WAIT_MS: u64 = 60_000;

/// The connection governor's knobs (see module docs).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection read timeout: a connection that produces no bytes
    /// for this long is closed (counted in `slowloris_closed`).
    pub read_timeout: Duration,
    /// Longest request line accepted, in bytes. Longer (or endless,
    /// newline-less) streams get `error=line-too-long` and a close.
    pub max_line_bytes: usize,
    /// Concurrent-connection cap. Connection `max_conns + 1` is
    /// answered `error=too-many-connections` and closed.
    pub max_conns: usize,
    /// Server-side clamp on `cmd=wait timeout_ms=…`: no client can park
    /// a handler thread longer than this.
    pub max_wait_ms: u64,
    /// Socket fault shim ([`FaultSite::SocketRead`] /
    /// [`FaultSite::SocketWrite`]): an injected hit drops the
    /// connection cold — before reading a request, or after processing
    /// it but before the response (a lost ack). Disarmed by default.
    pub io_faults: IoFaults,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_secs(10),
            max_line_bytes: 8192,
            max_conns: 64,
            max_wait_ms: 300_000,
            io_faults: IoFaults::disarmed(),
        }
    }
}

impl ServerConfig {
    /// The defaults: 10 s read timeout, 8 KiB lines, 64 connections,
    /// 300 s wait clamp, no fault injection.
    pub fn new() -> ServerConfig {
        ServerConfig::default()
    }

    /// Sets the per-connection read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the request-line length bound.
    pub fn with_max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes;
        self
    }

    /// Sets the concurrent-connection cap.
    pub fn with_max_conns(mut self, conns: usize) -> Self {
        self.max_conns = conns;
        self
    }

    /// Sets the server-side `cmd=wait` clamp.
    pub fn with_max_wait_ms(mut self, ms: u64) -> Self {
        self.max_wait_ms = ms;
        self
    }

    /// Installs a socket fault shim (share the handle with
    /// [`DaemonConfig::with_io_faults`](crate::daemon::DaemonConfig::with_io_faults)
    /// so journal and socket chaos draw one schedule).
    pub fn with_io_faults(mut self, io: IoFaults) -> Self {
        self.io_faults = io;
        self
    }
}

/// One claimed slot under the connection cap; released on drop, so a
/// handler thread can never leak its slot however it exits.
struct ConnSlot {
    active: Arc<AtomicUsize>,
}

impl ConnSlot {
    fn claim(active: &Arc<AtomicUsize>, cap: usize) -> Option<ConnSlot> {
        if active.fetch_add(1, Ordering::AcqRel) >= cap {
            active.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(ConnSlot {
            active: Arc::clone(active),
        })
    }
}

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Serves `daemon` on `socket_path` with the default [`ServerConfig`]
/// until the daemon stops. A stale socket file (a previous life that
/// died hard) is replaced. Each connection gets its own thread; a
/// connection may issue any number of requests.
pub fn serve(daemon: &Arc<Daemon>, socket_path: &Path) -> Result<(), DaemonError> {
    serve_with(daemon, socket_path, ServerConfig::default())
}

/// [`serve`] with explicit governor knobs.
pub fn serve_with(
    daemon: &Arc<Daemon>,
    socket_path: &Path,
    cfg: ServerConfig,
) -> Result<(), DaemonError> {
    if socket_path.exists() {
        std::fs::remove_file(socket_path)?;
    }
    let listener = UnixListener::bind(socket_path)?;
    listener.set_nonblocking(true)?;
    let cfg = Arc::new(cfg);
    let active = Arc::new(AtomicUsize::new(0));
    loop {
        match listener.accept() {
            Ok((stream, _)) => match ConnSlot::claim(&active, cfg.max_conns) {
                Some(slot) => {
                    let daemon = Arc::clone(daemon);
                    let cfg = Arc::clone(&cfg);
                    std::thread::spawn(move || handle_connection(&daemon, stream, &cfg, slot));
                }
                None => {
                    // Over the cap: answer explicitly, then close. The
                    // refusal costs one write on the accept loop, not a
                    // thread.
                    daemon.note_conn_rejected();
                    let mut stream = stream;
                    let _ = writeln!(
                        stream,
                        "{}",
                        encode_fields(&error_response("too-many-connections"))
                    );
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if daemon.is_stopped() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                let _ = std::fs::remove_file(socket_path);
                return Err(DaemonError::Io(e));
            }
        }
    }
    let _ = std::fs::remove_file(socket_path);
    Ok(())
}

/// How one bounded line read ended.
enum BoundedRead {
    /// A complete line (without the newline), lossily decoded — invalid
    /// UTF-8 flows on to the codec, which answers `malformed-request`
    /// rather than the connection dying silently.
    Line(String),
    /// The line outgrew the bound before a newline arrived.
    TooLong,
    /// No bytes within the read timeout.
    TimedOut,
    /// EOF (possibly mid-line: a truncated request gets no response).
    Closed,
    /// Any other I/O failure.
    Failed,
}

/// Reads one newline-terminated line without ever buffering more than
/// `max` bytes — the reason `BufReader::read_line` is not used here: it
/// grows its `String` without bound on a newline-less stream.
fn read_bounded_line(reader: &mut BufReader<UnixStream>, max: usize) -> BoundedRead {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return BoundedRead::Closed,
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Unix-socket read timeouts surface as WouldBlock.
                return BoundedRead::TimedOut;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return BoundedRead::Failed,
        };
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + pos > max {
                return BoundedRead::TooLong;
            }
            buf.extend_from_slice(&chunk[..pos]);
            reader.consume(pos + 1);
            return BoundedRead::Line(String::from_utf8_lossy(&buf).into_owned());
        }
        let len = chunk.len();
        if buf.len() + len > max {
            return BoundedRead::TooLong;
        }
        buf.extend_from_slice(chunk);
        reader.consume(len);
    }
}

fn handle_connection(
    daemon: &Arc<Daemon>,
    stream: UnixStream,
    cfg: &ServerConfig,
    _slot: ConnSlot,
) {
    if stream.set_read_timeout(Some(cfg.read_timeout)).is_err() {
        return;
    }
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        if cfg.io_faults.should_inject(FaultSite::SocketRead) {
            return; // injected reset: the connection dies cold
        }
        let line = match read_bounded_line(&mut reader, cfg.max_line_bytes) {
            BoundedRead::Line(line) => line,
            BoundedRead::TooLong => {
                let _ = writeln!(
                    write_half,
                    "{}",
                    encode_fields(&error_response("line-too-long"))
                );
                return;
            }
            BoundedRead::TimedOut => {
                daemon.note_slowloris();
                return;
            }
            BoundedRead::Closed | BoundedRead::Failed => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match journal::decode_line(&line) {
            Some(fields) => dispatch(daemon, &fields, cfg.max_wait_ms),
            None => error_response("malformed-request"),
        };
        if cfg.io_faults.should_inject(FaultSite::SocketWrite) {
            return; // injected reset after processing: a lost ack
        }
        if writeln!(write_half, "{}", encode_fields(&response)).is_err() {
            return;
        }
        let _ = write_half.flush();
    }
}

fn error_response(error: &str) -> Vec<(&'static str, String)> {
    vec![("ok", "false".to_owned()), ("error", error.to_owned())]
}

fn status_response(daemon: &Daemon, id: Option<u64>) -> Vec<(&'static str, String)> {
    let Some(id) = id else {
        return error_response("missing-job-id");
    };
    match daemon.status(id) {
        Some(status) => {
            let mut out = vec![("ok", "true".to_owned())];
            out.extend(status.kv_fields());
            out
        }
        None => error_response("unknown-job"),
    }
}

/// Routes one decoded request to the daemon and renders the response
/// fields; `max_wait_ms` is the server-side clamp on `cmd=wait`.
/// Public within the crate so in-process tests can drive the protocol
/// without a socket.
pub(crate) fn dispatch(
    daemon: &Daemon,
    fields: &[(String, String)],
    max_wait_ms: u64,
) -> Vec<(&'static str, String)> {
    let id = journal::field(fields, "job_id").and_then(|v| v.parse::<u64>().ok());
    match journal::field(fields, "cmd") {
        Some("ping") => vec![("ok", "true".to_owned()), ("pong", "1".to_owned())],
        Some("submit") => match JobSpec::from_fields(fields) {
            Ok(spec) => match daemon.submit(spec) {
                Admission::Accepted { id, queue_depth } => vec![
                    ("ok", "true".to_owned()),
                    ("result", "accepted".to_owned()),
                    ("job_id", id.to_string()),
                    ("queue_depth", queue_depth.to_string()),
                ],
                Admission::Rejected { reason } => vec![
                    ("ok", "true".to_owned()),
                    ("result", "rejected".to_owned()),
                    ("reason", reason),
                ],
                Admission::Duplicate { id } => {
                    let mut out = vec![
                        ("ok", "true".to_owned()),
                        ("result", "duplicate".to_owned()),
                        ("job_id", id.to_string()),
                    ];
                    // The original's current state rides along, so a
                    // retrying client learns the outcome in one round.
                    if let Some(status) = daemon.status(id) {
                        out.extend(status.state.kv_fields());
                    }
                    out
                }
            },
            Err(e) => {
                let mut out = error_response("bad-spec");
                out.push(("detail", e));
                out
            }
        },
        Some("status") => status_response(daemon, id),
        Some("wait") => {
            let Some(id) = id else {
                return error_response("missing-job-id");
            };
            // Clamped: a client asking for u64::MAX parks the handler
            // for max_wait_ms, not forever.
            let timeout_ms = journal::field(fields, "timeout_ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_WAIT_MS)
                .min(max_wait_ms);
            match daemon.wait(id, Duration::from_millis(timeout_ms)) {
                Some(status) => {
                    let mut out = vec![
                        ("ok", "true".to_owned()),
                        (
                            "result",
                            if status.state.is_terminal() {
                                "settled".to_owned()
                            } else {
                                "timeout".to_owned()
                            },
                        ),
                    ];
                    out.extend(status.kv_fields());
                    out
                }
                None => error_response("unknown-job"),
            }
        }
        Some("cancel") => {
            let Some(id) = id else {
                return error_response("missing-job-id");
            };
            match daemon.cancel(id) {
                Some(status) => {
                    let mut out = vec![("ok", "true".to_owned())];
                    out.extend(status.kv_fields());
                    out
                }
                None => error_response("unknown-job"),
            }
        }
        Some("health") => {
            let stats = daemon.stats();
            let mut out = vec![("ok", "true".to_owned())];
            out.extend(daemon.health_fields());
            out.push(("workers", stats.workers.to_string()));
            out.push(("queue_capacity", stats.queue_capacity.to_string()));
            out.push(("queue_depth", stats.ledger.queue_depth.to_string()));
            out
        }
        Some("stats") => {
            let stats = daemon.stats();
            let mut out = vec![("ok", "true".to_owned())];
            out.extend(stats.ledger.kv_fields());
            // Warm-path cache telemetry (fingerprint-excluded): the memo
            // caches live as process statics, so a live capture here is
            // exactly the worker pool's accumulated hit/miss picture.
            out.extend(droidsim_metrics::MemoLedger::capture().kv_fields());
            out.push(("workers", stats.workers.to_string()));
            out.push(("queue_capacity", stats.queue_capacity.to_string()));
            out.push(("fleet", stats.fleet.deterministic_fingerprint()));
            out
        }
        Some("shutdown") => {
            let mode = journal::field(fields, "mode")
                .and_then(ShutdownMode::parse)
                .unwrap_or(ShutdownMode::Drain);
            daemon.shutdown(mode);
            vec![
                ("ok", "true".to_owned()),
                ("result", "stopped".to_owned()),
                ("mode", mode.name().to_owned()),
            ]
        }
        _ => error_response("unknown-cmd"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{DaemonConfig, JobControl, JobExecutor, JobVerdict};
    use crate::spec::{JobKind, JobSpec};
    use crate::Client;
    use droidsim_metrics::FleetLedger;
    use std::io::Read;
    use std::path::PathBuf;
    use std::time::Instant;

    struct EchoExecutor;

    impl JobExecutor for EchoExecutor {
        fn execute(&self, spec: &JobSpec, _ctl: &JobControl) -> JobVerdict {
            JobVerdict::Done {
                digest: spec.seed ^ 0xABCD,
                fleet: FleetLedger::new(),
            }
        }
    }

    /// An executor that blocks until cancelled — for tests that need a
    /// job which never settles on its own.
    struct ParkedExecutor;

    impl JobExecutor for ParkedExecutor {
        fn execute(&self, _spec: &JobSpec, ctl: &JobControl) -> JobVerdict {
            while !ctl.cancel.is_cancelled() {
                std::thread::sleep(Duration::from_millis(2));
            }
            JobVerdict::Cancelled {
                reason: "parked".to_owned(),
            }
        }
    }

    fn scratch_socket(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("droidsimd-server-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("droidsimd.sock")
    }

    fn serve_in_background(
        daemon: &Arc<Daemon>,
        socket: &Path,
        cfg: ServerConfig,
    ) -> std::thread::JoinHandle<Result<(), DaemonError>> {
        let daemon = Arc::clone(daemon);
        let socket = socket.to_path_buf();
        std::thread::spawn(move || serve_with(&daemon, &socket, cfg))
    }

    fn raw_connect(socket: &PathBuf) -> UnixStream {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(s) = UnixStream::connect(socket) {
                return s;
            }
            assert!(Instant::now() < deadline, "server socket never appeared");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn read_response(stream: &mut UnixStream) -> String {
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    }

    #[test]
    fn socket_round_trip_submit_wait_stats_shutdown() {
        let socket = scratch_socket("round-trip");
        let daemon = Arc::new(Daemon::start(DaemonConfig::new(), EchoExecutor).unwrap());
        let server = {
            let daemon = Arc::clone(&daemon);
            let socket = socket.clone();
            std::thread::spawn(move || serve(&daemon, &socket))
        };
        let mut client = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
        assert!(client.ping().unwrap());

        let spec = JobSpec::new(JobKind::Fig10)
            .with_seed(7)
            .with_tag("via socket");
        let id = match client.submit(&spec).unwrap() {
            Admission::Accepted { id, .. } => id,
            Admission::Rejected { reason } => panic!("rejected: {reason}"),
            Admission::Duplicate { id } => panic!("unexpected duplicate of {id}"),
        };
        let status = client.wait(id, Duration::from_secs(5)).unwrap();
        assert_eq!(status.state.digest(), Some(7 ^ 0xABCD));
        assert_eq!(status.tag, "via socket");

        let stats = client.stats().unwrap();
        assert_eq!(journal::field(&stats, "accepted"), Some("1"));
        assert_eq!(journal::field(&stats, "completed"), Some("1"));
        assert!(journal::field(&stats, "queue_high_water").is_some());
        assert!(journal::field(&stats, "alloc_events").is_some());
        assert!(journal::field(&stats, "dedupe_hits").is_some());
        assert!(journal::field(&stats, "fleet").is_some());

        client.shutdown(ShutdownMode::Drain).unwrap();
        server.join().unwrap().unwrap();
        assert!(!socket.exists(), "socket file is cleaned up");
    }

    #[test]
    fn duplicate_submits_over_the_socket_return_the_original_id() {
        let socket = scratch_socket("duplicate");
        let daemon = Arc::new(Daemon::start(DaemonConfig::new(), EchoExecutor).unwrap());
        let server = serve_in_background(&daemon, &socket, ServerConfig::new());
        let mut client = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
        let spec = JobSpec::new(JobKind::Fig10)
            .with_seed(9)
            .with_dedupe_key("dup-key");
        let id = match client.submit(&spec).unwrap() {
            Admission::Accepted { id, .. } => id,
            other => panic!("expected acceptance, got {other:?}"),
        };
        match client.submit(&spec).unwrap() {
            Admission::Duplicate { id: dup } => assert_eq!(dup, id),
            other => panic!("expected duplicate, got {other:?}"),
        }
        client.shutdown(ShutdownMode::Drain).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn connection_cap_answers_too_many_connections() {
        let socket = scratch_socket("conn-cap");
        let daemon = Arc::new(Daemon::start(DaemonConfig::new(), EchoExecutor).unwrap());
        let server = serve_in_background(&daemon, &socket, ServerConfig::new().with_max_conns(1));
        // First connection holds its slot (and proves it works)…
        let mut held = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
        assert!(held.ping().unwrap());
        // …so the second is refused explicitly.
        let mut refused = raw_connect(&socket);
        let line = read_response(&mut refused);
        assert!(line.contains("error=too-many-connections"), "got {line:?}");
        // The refusal is observable, and releasing the held slot
        // re-opens the door.
        assert!(daemon.stats().ledger.conns_rejected >= 1);
        drop(held);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut retry = raw_connect(&socket);
            writeln!(retry, "cmd=ping").unwrap();
            if read_response(&mut retry).contains("pong=1") {
                break;
            }
            assert!(Instant::now() < deadline, "slot never freed");
            std::thread::sleep(Duration::from_millis(10));
        }
        daemon.shutdown(ShutdownMode::Drain);
        server.join().unwrap().unwrap();
    }

    #[test]
    fn stalled_connections_are_closed_by_the_read_timeout() {
        let socket = scratch_socket("slowloris");
        let daemon = Arc::new(Daemon::start(DaemonConfig::new(), EchoExecutor).unwrap());
        let server = serve_in_background(
            &daemon,
            &socket,
            ServerConfig::new().with_read_timeout(Duration::from_millis(50)),
        );
        // Connect, send a *partial* line, then stall.
        let mut stalled = raw_connect(&socket);
        stalled.write_all(b"cmd=pi").unwrap();
        stalled.flush().unwrap();
        // The server closes us: the next read returns EOF.
        let mut buf = Vec::new();
        stalled
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let n = stalled.read_to_end(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "no response to a stalled half-request");
        let deadline = Instant::now() + Duration::from_secs(5);
        while daemon.stats().ledger.slowloris_closed == 0 {
            assert!(Instant::now() < deadline, "timeout close never counted");
            std::thread::sleep(Duration::from_millis(5));
        }
        daemon.shutdown(ShutdownMode::Drain);
        server.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_and_non_utf8_lines_get_exactly_one_error() {
        let socket = scratch_socket("governor-lines");
        let daemon = Arc::new(Daemon::start(DaemonConfig::new(), EchoExecutor).unwrap());
        let server = serve_in_background(
            &daemon,
            &socket,
            ServerConfig::new().with_max_line_bytes(64),
        );
        // A newline-less flood larger than the bound: one explicit
        // error, then the connection is closed (bounded memory, no
        // panic).
        let mut flood = raw_connect(&socket);
        flood.write_all(&[b'a'; 4096]).unwrap();
        flood.flush().unwrap();
        let line = read_response(&mut flood);
        assert!(line.contains("error=line-too-long"), "got {line:?}");
        let mut rest = Vec::new();
        flood
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(flood.read_to_end(&mut rest).unwrap_or(0), 0, "then EOF");
        // Invalid UTF-8 inside a normal-sized line: answered, not
        // dropped.
        let mut garbled = raw_connect(&socket);
        garbled.write_all(b"\xff\xfe\xfa garbage\n").unwrap();
        garbled.flush().unwrap();
        let line = read_response(&mut garbled);
        assert!(line.contains("ok=false"), "got {line:?}");
        daemon.shutdown(ShutdownMode::Drain);
        server.join().unwrap().unwrap();
    }

    #[test]
    fn wait_timeouts_are_clamped_server_side() {
        let daemon = Daemon::start(DaemonConfig::new().with_workers(1), ParkedExecutor).unwrap();
        let submit = journal::decode_line("cmd=submit job=fig10").unwrap();
        let resp = dispatch(&daemon, &submit, 50);
        let id: u64 = resp
            .iter()
            .find(|(k, _)| *k == "job_id")
            .unwrap()
            .1
            .parse()
            .unwrap();
        // The request asks for (effectively) forever; the clamp answers
        // in ~50 ms with an honest result=timeout.
        let req =
            journal::decode_line(&format!("cmd=wait job_id={id} timeout_ms={}", u64::MAX)).unwrap();
        let started = Instant::now();
        let resp = dispatch(&daemon, &req, 50);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "clamp must bound the park"
        );
        assert!(resp.iter().any(|(k, v)| *k == "result" && v == "timeout"));
        daemon.cancel(id);
        daemon.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn health_reports_the_state_machine_and_journal_fields() {
        let daemon = Daemon::start(DaemonConfig::new(), EchoExecutor).unwrap();
        let req = journal::decode_line("cmd=health").unwrap();
        let resp = dispatch(&daemon, &req, DEFAULT_WAIT_MS);
        let find = |key: &str| {
            resp.iter()
                .find(|(k, _)| *k == key)
                .map_or_else(|| panic!("missing {key}"), |(_, v)| v.clone())
        };
        assert_eq!(find("state"), "running");
        assert_eq!(find("journal"), "disabled");
        assert_eq!(find("journal_degraded"), "false");
        assert_eq!(find("journal_backlog"), "0");
        daemon.shutdown(ShutdownMode::Drain);
        let resp = dispatch(&daemon, &req, DEFAULT_WAIT_MS);
        assert!(resp.iter().any(|(k, v)| *k == "state" && v == "stopped"));
    }

    #[test]
    fn malformed_and_unknown_requests_get_explicit_errors() {
        let daemon = Daemon::start(DaemonConfig::new(), EchoExecutor).unwrap();
        let bad = journal::decode_line("cmd=warp job_id=1").unwrap();
        let resp = dispatch(&daemon, &bad, DEFAULT_WAIT_MS);
        assert_eq!(resp[0].1, "false");
        let unknown = journal::decode_line("cmd=status job_id=999").unwrap();
        let resp = dispatch(&daemon, &unknown, DEFAULT_WAIT_MS);
        assert!(resp
            .iter()
            .any(|(k, v)| *k == "error" && v == "unknown-job"));
        let no_id = journal::decode_line("cmd=wait").unwrap();
        let resp = dispatch(&daemon, &no_id, DEFAULT_WAIT_MS);
        assert!(resp
            .iter()
            .any(|(k, v)| *k == "error" && v == "missing-job-id"));
        daemon.shutdown(ShutdownMode::Drain);
    }
}
