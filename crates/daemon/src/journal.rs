//! The daemon's crash-safe acceptance journal.
//!
//! The durability contract of the daemon is **accept-before-ack**: a
//! submission is journaled (and fsync'd) *before* the client receives
//! its `accepted` response, and every terminal state transition is
//! journaled when it happens. A daemon that crashes and restarts can
//! therefore replay the journal and know exactly which acknowledged
//! jobs have no terminal state yet — those are re-queued, and their
//! per-job fleet journals (written by the supervised runner) let a
//! half-finished study resume task-by-task to the same digest.
//!
//! The format is the same kernel `key=value` line codec as the fleet
//! journal, with the same torn-tail rule: reading stops at the first
//! malformed line, so a crash mid-append costs at most the record
//! being written — never the records before it. A file whose header is
//! not `kind=daemon-journal` is rejected outright (foreign journal),
//! never silently reinterpreted.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use droidsim_kernel::journal;

use crate::faultio::{enospc_error, IoFaults, WriteFault};
use crate::spec::{JobSpec, JobState};
use crate::{encode_fields, DaemonError};

/// Journal format version written into (and required of) the header.
pub const JOURNAL_VERSION: u32 = 1;

/// One job as the journal remembers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournaledJob {
    /// The daemon-assigned id.
    pub id: u64,
    /// The accepted spec.
    pub spec: JobSpec,
    /// The last journaled *terminal* state, `None` while incomplete —
    /// an incomplete entry is an acknowledged promise a restarted
    /// daemon must resume.
    pub terminal: Option<JobState>,
}

/// Everything a journal replay reconstructs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalView {
    /// Every accepted job in id order.
    pub jobs: BTreeMap<u64, JournaledJob>,
    /// The next id a restarted daemon may assign (max seen + 1).
    pub next_id: u64,
}

impl JournalView {
    /// Jobs acknowledged but not yet terminal — the resume set.
    pub fn incomplete(&self) -> impl Iterator<Item = &JournaledJob> {
        self.jobs.values().filter(|j| j.terminal.is_none())
    }
}

/// Append handle to a daemon journal (see module docs).
///
/// Every append goes through the [`IoFaults`] shim, and the handle
/// tracks the byte length of the last *known-durable* prefix: when a
/// write or fsync fails — injected or real — the bytes past that
/// prefix are untrustworthy, so the next append (or an explicit
/// [`DaemonJournal::probe`]) first rolls the file back to the clean
/// length. A failed append therefore never corrupts the records before
/// it, and a later successful append never lands after a tear.
#[derive(Debug)]
pub struct DaemonJournal {
    file: File,
    path: PathBuf,
    /// Bytes known fully written *and* fsync'd.
    clean_len: u64,
    /// A write or sync failed after `clean_len`: roll back before the
    /// next append.
    dirty: bool,
    faults: IoFaults,
}

impl DaemonJournal {
    /// Opens `path` for appending with a disarmed fault shim (see
    /// [`DaemonJournal::open_append_with`]).
    pub fn open_append(path: &Path) -> Result<DaemonJournal, DaemonError> {
        DaemonJournal::open_append_with(path, IoFaults::disarmed())
    }

    /// Opens `path` for appending, writing the header if the file is
    /// new or empty. An existing file must be a daemon journal of the
    /// supported version — anything else is a [`DaemonError::Journal`]
    /// — and a torn tail (the half-line a crash mid-append leaves) is
    /// truncated away first, so new records land after the last valid
    /// one instead of merging into the tear. `faults` shims every
    /// subsequent append (the open itself is never fault-injected: a
    /// daemon that cannot even open its journal should fail loudly at
    /// startup, not degrade).
    pub fn open_append_with(path: &Path, faults: IoFaults) -> Result<DaemonJournal, DaemonError> {
        let mut exists = path.exists() && std::fs::metadata(path)?.len() > 0;
        if exists {
            // Full validation: a foreign or corrupt header must fail
            // *here*, before anything is appended after it. One
            // exception: a header line torn mid-write (a crash during
            // the very first append — no newline anywhere) proves no
            // record was ever accepted, so the file restarts empty.
            match DaemonJournal::replay(path) {
                Ok((_, clean_len)) => {
                    if clean_len < std::fs::metadata(path)?.len() {
                        OpenOptions::new()
                            .write(true)
                            .open(path)?
                            .set_len(clean_len)?;
                    }
                }
                Err(e) => {
                    if !DaemonJournal::is_torn_header(path)? {
                        return Err(e);
                    }
                    OpenOptions::new().write(true).open(path)?.set_len(0)?;
                    exists = false;
                }
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if !exists {
            let header = journal::encode_line(&[
                ("kind", "daemon-journal"),
                ("version", &JOURNAL_VERSION.to_string()),
            ]);
            writeln!(file, "{header}")?;
            file.sync_data()?;
        }
        let clean_len = std::fs::metadata(path)?.len();
        Ok(DaemonJournal {
            file,
            path: path.to_path_buf(),
            clean_len,
            dirty: false,
            faults,
        })
    }

    /// Journals an acceptance. Must complete (including fsync) before
    /// the client is told `accepted` — that ordering *is* the
    /// durability contract.
    pub fn record_accepted(&mut self, id: u64, spec: &JobSpec) -> Result<(), DaemonError> {
        let mut fields = vec![("kind", "accepted".to_owned()), ("id", id.to_string())];
        fields.extend(spec.kv_fields());
        self.append(&fields)
    }

    /// Journals a terminal state transition. Non-terminal states are
    /// never journaled (a restart infers `queued` from absence).
    pub fn record_state(&mut self, id: u64, state: &JobState) -> Result<(), DaemonError> {
        debug_assert!(state.is_terminal(), "only terminal states are journaled");
        let mut fields = vec![("kind", "state".to_owned()), ("id", id.to_string())];
        fields.extend(state.kv_fields());
        self.append(&fields)
    }

    /// Appends one fsync'd probe record. The replay skips probe
    /// records, so they carry no state — their only job is to prove,
    /// end to end through the same write+sync path every real record
    /// takes, that the journal accepts bytes again. The degraded
    /// daemon's watchdog calls this each tick until it succeeds.
    pub fn probe(&mut self) -> Result<(), DaemonError> {
        self.append(&[("kind", "probe".to_owned())])
    }

    /// Whether the last append left untrusted bytes past the clean
    /// prefix (rolled back automatically before the next append).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    fn append(&mut self, fields: &[(&'static str, String)]) -> Result<(), DaemonError> {
        if self.dirty {
            self.rollback()?;
        }
        let mut line = encode_fields(fields);
        line.push('\n');
        match self.faults.journal_write_fault() {
            Some(WriteFault::Enospc) => {
                // Refused before any byte lands: the file is still
                // clean, only the record is lost.
                return Err(DaemonError::Io(enospc_error()));
            }
            Some(WriteFault::Short) => {
                // Half the record lands, then the device gives up: the
                // torn line a crash leaves, forced on demand. The next
                // append rolls it back.
                let half = &line.as_bytes()[..line.len() / 2];
                let wrote = self.file.write_all(half);
                self.dirty = true;
                wrote?;
                return Err(DaemonError::Io(enospc_error()));
            }
            None => {}
        }
        if let Err(e) = self.file.write_all(line.as_bytes()) {
            // A real write failure of unknown extent: distrust the tail.
            self.dirty = true;
            return Err(DaemonError::Io(e));
        }
        let synced = match self.faults.journal_sync_fault() {
            Some(injected) => Err(injected),
            None => self.file.sync_data(),
        };
        if let Err(e) = synced {
            // After a failed fsync the bytes may or may not be on disk;
            // the only safe stance is "not journaled": roll back and
            // rewrite later.
            self.dirty = true;
            return Err(DaemonError::Io(e));
        }
        self.clean_len += line.len() as u64;
        Ok(())
    }

    /// Discards whatever a failed append left past the clean prefix.
    fn rollback(&mut self) -> Result<(), DaemonError> {
        OpenOptions::new()
            .write(true)
            .open(&self.path)?
            .set_len(self.clean_len)?;
        // Reopen the append handle: its internal cursor may sit past
        // the truncation point.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.dirty = false;
        Ok(())
    }

    /// Whether the file's first line is torn mid-write: non-empty but
    /// with no newline anywhere. Such a file never completed its
    /// header, so it cannot contain an accepted record.
    fn is_torn_header(path: &Path) -> Result<bool, DaemonError> {
        use std::io::Read;
        let mut first = Vec::new();
        let mut reader = BufReader::new(File::open(path)?);
        reader.read_to_end(&mut first)?;
        Ok(!first.is_empty() && !first.contains(&b'\n'))
    }

    /// Replays a journal. Malformed tails (a torn final line, a record
    /// referencing an id no `accepted` line introduced, an unknown
    /// record kind) end the replay at that point — everything decoded
    /// before the tear stands. A missing/foreign header is an error.
    pub fn load(path: &Path) -> Result<JournalView, DaemonError> {
        DaemonJournal::replay(path).map(|(view, _)| view)
    }

    /// [`DaemonJournal::load`] plus the byte length of the valid prefix
    /// (everything up to and including the last decodable record) —
    /// what [`DaemonJournal::open_append`] truncates a torn file to.
    fn replay(path: &Path) -> Result<(JournalView, u64), DaemonError> {
        let mut reader = BufReader::new(File::open(path)?);
        let mut line = String::new();
        let mut clean_len: u64 = 0;
        let header_len = reader.read_line(&mut line)?;
        let header = if line.ends_with('\n') {
            journal::decode_line(&line)
        } else {
            None // empty, or a header torn mid-write: unreadable
        }
        .ok_or_else(|| {
            DaemonError::Journal(format!("{}: missing or unreadable header", path.display()))
        })?;
        if journal::field(&header, "kind") != Some("daemon-journal") {
            return Err(DaemonError::Journal(format!(
                "{}: not a daemon journal",
                path.display()
            )));
        }
        let version: u32 = journal::field(&header, "version")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| {
                DaemonError::Journal(format!("{}: header lacks a version", path.display()))
            })?;
        if version != JOURNAL_VERSION {
            return Err(DaemonError::Journal(format!(
                "{}: journal version {version} (this daemon speaks {JOURNAL_VERSION})",
                path.display()
            )));
        }
        clean_len += header_len as u64;
        let mut view = JournalView {
            next_id: 1,
            ..JournalView::default()
        };
        loop {
            line.clear();
            let read = reader.read_line(&mut line)?;
            if read == 0 || !line.ends_with('\n') {
                break; // EOF, or a record torn mid-write
            }
            // `clean_len` only advances once the record is *accepted* —
            // a complete-but-invalid line is part of the corrupt tail.
            let Some(fields) = journal::decode_line(&line) else {
                break;
            };
            let id: Option<u64> = journal::field(&fields, "id").and_then(|v| v.parse().ok());
            let record = (journal::field(&fields, "kind"), id);
            match record {
                // A degraded-mode health probe: proves the journal
                // accepts writes again, carries no job state.
                (Some("probe"), _) => {}
                (Some("accepted"), Some(id)) => {
                    let Ok(spec) = JobSpec::from_fields(&fields) else {
                        break;
                    };
                    view.jobs.insert(
                        id,
                        JournaledJob {
                            id,
                            spec,
                            terminal: None,
                        },
                    );
                    view.next_id = view.next_id.max(id + 1);
                }
                (Some("state"), Some(id)) => {
                    let Ok(state) = JobState::from_fields(&fields) else {
                        break;
                    };
                    let Some(entry) = view.jobs.get_mut(&id) else {
                        break; // state for an id never accepted: corrupt tail
                    };
                    if state.is_terminal() {
                        entry.terminal = Some(state);
                    }
                }
                _ => break, // unknown record kind or unparseable id
            }
            clean_len += read as u64;
        }
        Ok((view, clean_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobKind;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("droidsimd-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("daemon.journal")
    }

    fn spec(seed: u64) -> JobSpec {
        JobSpec::new(JobKind::Table5 { apps: 3 }).with_seed(seed)
    }

    #[test]
    fn replay_reconstructs_accepted_and_terminal_jobs() {
        let path = scratch("replay");
        {
            let mut j = DaemonJournal::open_append(&path).unwrap();
            j.record_accepted(1, &spec(11)).unwrap();
            j.record_accepted(2, &spec(22)).unwrap();
            j.record_state(1, &JobState::Done { digest: 0xABCD })
                .unwrap();
            j.record_accepted(3, &spec(33)).unwrap();
            j.record_state(
                3,
                &JobState::Shed {
                    reason: "memory-pressure".to_owned(),
                },
            )
            .unwrap();
        }
        let view = DaemonJournal::load(&path).unwrap();
        assert_eq!(view.jobs.len(), 3);
        assert_eq!(view.next_id, 4);
        assert_eq!(
            view.jobs[&1].terminal,
            Some(JobState::Done { digest: 0xABCD })
        );
        assert_eq!(view.jobs[&2].terminal, None, "job 2 is the resume set");
        let incomplete: Vec<u64> = view.incomplete().map(|j| j.id).collect();
        assert_eq!(incomplete, vec![2]);
        assert_eq!(view.jobs[&2].spec.seed, 22, "spec survives the round trip");
    }

    #[test]
    fn torn_tail_keeps_the_prefix() {
        let path = scratch("torn");
        {
            let mut j = DaemonJournal::open_append(&path).unwrap();
            j.record_accepted(1, &spec(1)).unwrap();
            j.record_state(1, &JobState::Done { digest: 7 }).unwrap();
            j.record_accepted(2, &spec(2)).unwrap();
        }
        // Simulate a crash mid-append: chop the file mid-record.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 9]).unwrap();
        let view = DaemonJournal::load(&path).unwrap();
        assert_eq!(view.jobs[&1].terminal, Some(JobState::Done { digest: 7 }));
        assert!(!view.jobs.contains_key(&2), "torn acceptance is dropped");
        // And the journal reopens for appending after the tear.
        let mut j = DaemonJournal::open_append(&path).unwrap();
        j.record_accepted(9, &spec(9)).unwrap();
        assert!(DaemonJournal::load(&path).unwrap().jobs.contains_key(&9));
    }

    #[test]
    fn foreign_files_are_rejected_not_reinterpreted() {
        let path = scratch("foreign");
        fs::write(&path, "kind=header seed=1 items=4\n").unwrap(); // a *fleet* journal
        assert!(matches!(
            DaemonJournal::load(&path),
            Err(DaemonError::Journal(_))
        ));
        assert!(
            matches!(
                DaemonJournal::open_append(&path),
                Err(DaemonError::Journal(_))
            ),
            "appending to a foreign file must fail before writing"
        );
        fs::write(&path, "kind=daemon-journal version=99\n").unwrap();
        assert!(matches!(
            DaemonJournal::load(&path),
            Err(DaemonError::Journal(_))
        ));
    }

    #[test]
    fn torn_header_restarts_the_journal_empty() {
        let path = scratch("torn-header");
        fs::write(&path, "kind=daemon-jour").unwrap(); // crash mid-header
        assert!(
            DaemonJournal::load(&path).is_err(),
            "a torn header is unreadable"
        );
        // …but append recovery is safe: no record can exist before the
        // header, so the file restarts empty instead of bricking.
        let mut j = DaemonJournal::open_append(&path).unwrap();
        j.record_accepted(1, &spec(1)).unwrap();
        let view = DaemonJournal::load(&path).unwrap();
        assert_eq!(view.jobs.len(), 1);
        // A *complete* foreign header still refuses recovery.
        fs::write(&path, "kind=fleet-journal version=1\n").unwrap();
        assert!(DaemonJournal::open_append(&path).is_err());
    }

    #[test]
    fn injected_write_faults_never_corrupt_the_accepted_prefix() {
        use droidsim_faults::{FaultPlan, FaultSite};
        let path = scratch("io-faults");
        // Every odd append fails (alternating ENOSPC and short write);
        // the journal must repair itself so every *successful* append
        // replays, and nothing before a failure is ever lost.
        let io = crate::faultio::IoFaults::new(
            FaultPlan::seeded(3)
                .on_nth_probe(FaultSite::JournalWrite, 1)
                .on_nth_probe(FaultSite::JournalWrite, 3)
                .on_nth_probe(FaultSite::JournalWrite, 5),
        );
        let mut j = DaemonJournal::open_append_with(&path, io).unwrap();
        let mut accepted = Vec::new();
        for id in 1..=6u64 {
            if j.record_accepted(id, &spec(id)).is_ok() {
                accepted.push(id);
            }
        }
        assert_eq!(accepted, vec![2, 4, 6], "odd appends were refused");
        let view = DaemonJournal::load(&path).unwrap();
        let replayed: Vec<u64> = view.jobs.keys().copied().collect();
        assert_eq!(replayed, accepted, "exactly the successes replay");
        // A short write left torn bytes mid-file at some point; the
        // repair must have rolled them back, so the file is pure valid
        // lines.
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'), "no torn tail survives");
        assert_eq!(text.lines().count(), 1 + accepted.len());
    }

    #[test]
    fn sync_faults_roll_back_and_probe_records_replay_clean() {
        use droidsim_faults::{FaultPlan, FaultSite};
        let path = scratch("sync-fault");
        let io = crate::faultio::IoFaults::new(
            FaultPlan::seeded(4).on_nth_probe(FaultSite::JournalSync, 1),
        );
        let mut j = DaemonJournal::open_append_with(&path, io).unwrap();
        assert!(
            j.record_accepted(1, &spec(1)).is_err(),
            "a failed fsync means not journaled"
        );
        assert!(j.is_dirty(), "post-fsync-failure bytes are untrusted");
        // The probe rolls back the untrusted tail and proves the path.
        j.probe().unwrap();
        assert!(!j.is_dirty());
        j.record_accepted(2, &spec(2)).unwrap();
        let view = DaemonJournal::load(&path).unwrap();
        assert!(!view.jobs.contains_key(&1), "unsynced record is gone");
        assert!(view.jobs.contains_key(&2));
        // Probe records are invisible to the view but keep the replay
        // walking (they are *not* a torn tail).
        assert_eq!(view.next_id, 3);
    }

    #[test]
    fn state_for_unknown_id_ends_the_replay() {
        let path = scratch("unknown-id");
        {
            let mut j = DaemonJournal::open_append(&path).unwrap();
            j.record_accepted(1, &spec(1)).unwrap();
        }
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("kind=state id=42 state=done digest=00000000000000ff\n");
        text.push_str("kind=accepted id=5 job=fig10\n"); // after the tear: ignored
        fs::write(&path, text).unwrap();
        let view = DaemonJournal::load(&path).unwrap();
        assert_eq!(view.jobs.len(), 1);
        assert!(view.jobs.contains_key(&1));
    }
}
