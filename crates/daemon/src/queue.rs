//! The bounded, priority-aware admission queue.
//!
//! Three FIFO rings (one per [`Priority`]) behind one mutex, with a
//! hard capacity across all rings. Admission control is the queue's
//! whole point: a full queue never silently grows and never silently
//! drops — [`AdmissionQueue::try_admit`] either queues the job, names
//! the lower-priority victim it displaced, or reports `Full` so the
//! caller can send an explicit rejection. Workers block in
//! [`AdmissionQueue::pop`], which serves the highest non-empty ring
//! first and FIFO within a ring.
//!
//! The queue stores plain [`QueuedJob`] values and knows nothing about
//! job tables or journals; the daemon core composes those around it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::spec::{JobSpec, Priority};

/// One queued admission: the job id and its spec (the spec rides along
/// so a displaced victim can be reported without a table lookup).
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// The daemon-assigned job id.
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &QueuedJob) -> bool {
        self.id == other.id
    }
}

/// What [`AdmissionQueue::try_admit`] decided.
#[derive(Debug)]
pub enum Admit {
    /// The job was queued; `depth` is the queue depth after insertion.
    Queued {
        /// Queue depth including the new job.
        depth: usize,
    },
    /// The queue was full but a strictly-lower-priority job could make
    /// room: `shed` was removed (newest of the lowest non-empty class)
    /// and the new job queued in its place.
    Displaced {
        /// The displaced victim. The caller owes it an explicit
        /// terminal `Shed` state — displacement must never be silent.
        shed: QueuedJob,
        /// Queue depth after the swap (unchanged: one out, one in).
        depth: usize,
    },
    /// Full, and nothing queued is lower-priority than the new job.
    /// The caller owes the client an explicit `Rejected` response.
    Full,
}

#[derive(Debug, Default)]
struct Rings {
    by_priority: [VecDeque<QueuedJob>; 3],
}

impl Rings {
    fn depth(&self) -> usize {
        self.by_priority.iter().map(VecDeque::len).sum()
    }

    /// Pops the head of the highest-priority non-empty ring.
    fn pop_highest(&mut self) -> Option<QueuedJob> {
        self.by_priority
            .iter_mut()
            .rev()
            .find_map(VecDeque::pop_front)
    }

    /// Removes the *newest* job of the lowest non-empty ring strictly
    /// below `than` — the displacement victim. Newest-first keeps the
    /// shed job the one that has waited least (and so loses least).
    fn displace_below(&mut self, than: Priority) -> Option<QueuedJob> {
        self.by_priority[..than.ring()]
            .iter_mut()
            .find(|ring| !ring.is_empty())
            .and_then(VecDeque::pop_back)
    }
}

/// The bounded priority queue (see module docs).
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    rings: Mutex<Rings>,
    available: Condvar,
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` jobs (clamped to ≥ 1).
    pub fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            capacity: capacity.max(1),
            rings: Mutex::new(Rings::default()),
            available: Condvar::new(),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (all rings).
    pub fn depth(&self) -> usize {
        self.lock().depth()
    }

    /// Whether a submission at `priority` would be admitted right now —
    /// free capacity, or a displaceable lower-priority victim. Advisory
    /// only under concurrency: pops can only *shrink* the queue, so a
    /// `true` from the daemon's serialized admission path stays true.
    pub fn would_admit(&self, priority: Priority) -> bool {
        let rings = self.lock();
        rings.depth() < self.capacity
            || rings.by_priority[..priority.ring()]
                .iter()
                .any(|ring| !ring.is_empty())
    }

    /// Admits, displaces, or refuses (see [`Admit`]).
    pub fn try_admit(&self, job: QueuedJob) -> Admit {
        let mut rings = self.lock();
        if rings.depth() < self.capacity {
            let ring = job.spec.priority.ring();
            rings.by_priority[ring].push_back(job);
            let depth = rings.depth();
            drop(rings);
            self.available.notify_one();
            return Admit::Queued { depth };
        }
        match rings.displace_below(job.spec.priority) {
            Some(shed) => {
                let ring = job.spec.priority.ring();
                rings.by_priority[ring].push_back(job);
                let depth = rings.depth();
                drop(rings);
                self.available.notify_one();
                Admit::Displaced { shed, depth }
            }
            None => Admit::Full,
        }
    }

    /// Enqueues bypassing the capacity check — only for jobs that were
    /// *already acknowledged* in a previous daemon life and are being
    /// re-queued from the journal at startup. Durability trumps the
    /// bound: an accepted job is a promise.
    pub fn push_resumed(&self, job: QueuedJob) {
        let ring = job.spec.priority.ring();
        self.lock().by_priority[ring].push_back(job);
        self.available.notify_one();
    }

    /// Blocks for the next job, highest priority first. Returns `None`
    /// when `stop_now` is set (even with jobs still queued — they stay
    /// put, parked for a later resume) or when `draining` is set and
    /// the queue is empty.
    pub fn pop(&self, stop_now: &AtomicBool, draining: &AtomicBool) -> Option<QueuedJob> {
        let mut rings = self.lock();
        loop {
            if stop_now.load(Ordering::Acquire) {
                return None;
            }
            if let Some(job) = rings.pop_highest() {
                return Some(job);
            }
            if draining.load(Ordering::Acquire) {
                return None;
            }
            // Bounded wait so a stop flag set without a notify (e.g. a
            // crashing controller) still terminates the pool promptly.
            let (guard, _) = self
                .available
                .wait_timeout(rings, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            rings = guard;
        }
    }

    /// Removes a specific queued job (client cancel / expired deadline
    /// of a job that has not started). `None` when the job is not
    /// queued — already popped, or never here.
    pub fn remove(&self, id: u64) -> Option<QueuedJob> {
        let mut rings = self.lock();
        for ring in &mut rings.by_priority {
            if let Some(pos) = ring.iter().position(|j| j.id == id) {
                return ring.remove(pos);
            }
        }
        None
    }

    /// Drains the lowest-priority non-empty ring strictly below `keep`
    /// — one reclaim pass of the memory-pressure shedding policy.
    /// Shedding one class per pass is deliberate: pressure that clears
    /// after shedding `Low` never touches `Normal`.
    pub fn shed_lowest_class(&self, keep: Priority) -> Vec<QueuedJob> {
        let mut rings = self.lock();
        for ring in &mut rings.by_priority[..keep.ring()] {
            if !ring.is_empty() {
                return ring.drain(..).collect();
            }
        }
        Vec::new()
    }

    /// Wakes every blocked [`AdmissionQueue::pop`] so stop flags get
    /// re-checked immediately.
    pub fn wake_all(&self) {
        self.available.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Rings> {
        self.rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobKind;

    fn job(id: u64, priority: Priority) -> QueuedJob {
        QueuedJob {
            id,
            spec: JobSpec::new(JobKind::Fig10).with_priority(priority),
        }
    }

    fn pop_now(q: &AdmissionQueue) -> Option<u64> {
        // Non-blocking pop: drain with the draining flag set.
        let stop = AtomicBool::new(false);
        let draining = AtomicBool::new(true);
        q.pop(&stop, &draining).map(|j| j.id)
    }

    #[test]
    fn serves_priority_then_fifo() {
        let q = AdmissionQueue::new(8);
        for (id, p) in [
            (1, Priority::Low),
            (2, Priority::Normal),
            (3, Priority::High),
            (4, Priority::Normal),
            (5, Priority::High),
        ] {
            assert!(matches!(q.try_admit(job(id, p)), Admit::Queued { .. }));
        }
        let order: Vec<u64> = std::iter::from_fn(|| pop_now(&q)).collect();
        assert_eq!(order, vec![3, 5, 2, 4, 1]);
    }

    #[test]
    fn full_queue_refuses_equal_priority_but_displaces_lower() {
        let q = AdmissionQueue::new(2);
        assert!(matches!(
            q.try_admit(job(1, Priority::Low)),
            Admit::Queued { .. }
        ));
        assert!(matches!(
            q.try_admit(job(2, Priority::Low)),
            Admit::Queued { .. }
        ));
        // Same priority cannot displace.
        assert!(matches!(q.try_admit(job(3, Priority::Low)), Admit::Full));
        assert!(!q.would_admit(Priority::Low));
        assert!(q.would_admit(Priority::High));
        // Higher priority displaces the newest low job (id 2).
        match q.try_admit(job(4, Priority::High)) {
            Admit::Displaced { shed, depth } => {
                assert_eq!(shed.id, 2, "newest of the lowest class is shed");
                assert_eq!(depth, 2, "one out, one in");
            }
            other => panic!("expected displacement, got {other:?}"),
        }
        assert_eq!(pop_now(&q), Some(4));
        assert_eq!(pop_now(&q), Some(1));
    }

    #[test]
    fn reclaim_pass_sheds_one_class_at_a_time() {
        let q = AdmissionQueue::new(8);
        for (id, p) in [
            (1, Priority::Low),
            (2, Priority::Low),
            (3, Priority::Normal),
            (4, Priority::High),
        ] {
            assert!(matches!(q.try_admit(job(id, p)), Admit::Queued { .. }));
        }
        let first: Vec<u64> = q
            .shed_lowest_class(Priority::High)
            .iter()
            .map(|j| j.id)
            .collect();
        assert_eq!(first, vec![1, 2], "first pass sheds the Low ring only");
        let second: Vec<u64> = q
            .shed_lowest_class(Priority::High)
            .iter()
            .map(|j| j.id)
            .collect();
        assert_eq!(second, vec![3], "second pass reaches Normal");
        assert!(
            q.shed_lowest_class(Priority::High).is_empty(),
            "High is never shed"
        );
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn remove_targets_one_job_and_resume_bypasses_capacity() {
        let q = AdmissionQueue::new(1);
        assert!(matches!(
            q.try_admit(job(1, Priority::Normal)),
            Admit::Queued { .. }
        ));
        assert!(matches!(q.try_admit(job(2, Priority::Normal)), Admit::Full));
        q.push_resumed(job(7, Priority::Normal)); // acknowledged last life
        assert_eq!(q.depth(), 2, "resume overrides the bound");
        assert_eq!(q.remove(1).map(|j| j.id), Some(1));
        assert_eq!(q.remove(1).map(|j| j.id), None);
        assert_eq!(pop_now(&q), Some(7));
    }

    #[test]
    fn pop_blocks_until_work_or_stop() {
        let q = std::sync::Arc::new(AdmissionQueue::new(4));
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let draining = std::sync::Arc::new(AtomicBool::new(false));
        let handle = {
            let (q, stop, draining) = (q.clone(), stop.clone(), draining.clone());
            std::thread::spawn(move || q.pop(&stop, &draining).map(|j| j.id))
        };
        std::thread::sleep(Duration::from_millis(30));
        assert!(matches!(
            q.try_admit(job(9, Priority::Normal)),
            Admit::Queued { .. }
        ));
        assert_eq!(handle.join().unwrap(), Some(9));
        // stop_now returns None even with work queued (parking).
        assert!(matches!(
            q.try_admit(job(10, Priority::Normal)),
            Admit::Queued { .. }
        ));
        stop.store(true, Ordering::Release);
        q.wake_all();
        assert_eq!(q.pop(&stop, &draining), None);
        assert_eq!(q.depth(), 1, "parked job stays queued");
    }
}
