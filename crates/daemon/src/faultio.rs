//! The daemon edge's injectable I/O fault shim.
//!
//! Every I/O the daemon's durability and protocol layers perform —
//! journal record writes, journal fsyncs, socket reads, socket writes —
//! funnels through one shared [`IoFaults`] handle before touching the
//! kernel. The handle wraps a seeded [`FaultPlan`], so a chaos run is
//! a *schedule*, not a dice roll: the same seed replays the same
//! `ENOSPC` at the same record, the same reset on the same connection.
//!
//! The shim decides *that* a fault strikes; the call sites decide what
//! it means. [`IoFaults::journal_write_fault`] additionally picks the
//! flavor — a clean `ENOSPC` before any byte lands, or a short write
//! that tears the record mid-line — alternating deterministically so
//! both repair paths stay exercised.
//!
//! A disarmed shim ([`IoFaults::disarmed`], the default everywhere) is
//! a no-op: the production daemon pays one mutex lock per probe only
//! when a plan is armed, and nothing at all changes about the I/O.

use std::io;
use std::sync::{Arc, Mutex};

use droidsim_faults::{FaultPlan, FaultSite};

/// How an injected journal-write fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write fails outright before any byte reaches the file —
    /// the classic `ENOSPC` answer.
    Enospc,
    /// Roughly half the record's bytes land, then the write fails:
    /// the torn line a crash-during-append leaves, forced on demand.
    Short,
}

/// Shared, cloneable handle to the daemon edge's fault schedule (see
/// module docs). Clones share the same underlying plan, so the journal
/// and the socket server consume one deterministic schedule between
/// them.
#[derive(Debug, Clone, Default)]
pub struct IoFaults {
    plan: Arc<Mutex<FaultPlan>>,
}

impl IoFaults {
    /// A shim that never injects — the production configuration.
    pub fn disarmed() -> IoFaults {
        IoFaults::default()
    }

    /// A shim driven by `plan` (arm sites with
    /// [`FaultPlan::with_rate`] / [`FaultPlan::on_nth_probe`] first).
    pub fn new(plan: FaultPlan) -> IoFaults {
        IoFaults {
            plan: Arc::new(Mutex::new(plan)),
        }
    }

    /// Swaps the schedule at runtime — how a chaos harness opens and
    /// closes fault windows (e.g. an `ENOSPC` window that later
    /// clears) without rebuilding the daemon.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.lock() = plan;
    }

    /// Whether any site can ever inject.
    pub fn is_armed(&self) -> bool {
        self.lock().is_armed()
    }

    /// One probe at `site` (counts even when disarmed, so forced
    /// indices stay aligned with the probe sequence).
    pub fn should_inject(&self, site: FaultSite) -> bool {
        self.lock().should_inject(site)
    }

    /// Probes [`FaultSite::JournalWrite`]; on a hit, picks the flavor
    /// by alternating on the site's injection count so ENOSPC and
    /// short-write repairs are both replayed deterministically.
    pub fn journal_write_fault(&self) -> Option<WriteFault> {
        let mut plan = self.lock();
        if !plan.should_inject(FaultSite::JournalWrite) {
            return None;
        }
        if plan.injected(FaultSite::JournalWrite) % 2 == 1 {
            Some(WriteFault::Enospc)
        } else {
            Some(WriteFault::Short)
        }
    }

    /// Probes [`FaultSite::JournalSync`], returning the injected fsync
    /// error on a hit.
    pub fn journal_sync_fault(&self) -> Option<io::Error> {
        self.should_inject(FaultSite::JournalSync)
            .then(|| injected_io_error("injected fsync failure"))
    }

    /// Injections recorded at `site` so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.lock().injected(site)
    }

    /// Probes recorded at `site` so far.
    pub fn probes(&self, site: FaultSite) -> u64 {
        self.lock().probes(site)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultPlan> {
        self.plan
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The error an injected `ENOSPC` surfaces as. `StorageFull` is the
/// std mapping of `ENOSPC`, so real and injected full disks take the
/// same degraded path.
pub(crate) fn enospc_error() -> io::Error {
    io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC")
}

fn injected_io_error(what: &str) -> io::Error {
    io::Error::other(what.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_shim_never_injects() {
        let io = IoFaults::disarmed();
        assert!(!io.is_armed());
        for _ in 0..100 {
            assert_eq!(io.journal_write_fault(), None);
            assert!(io.journal_sync_fault().is_none());
            assert!(!io.should_inject(FaultSite::SocketRead));
            assert!(!io.should_inject(FaultSite::SocketWrite));
        }
    }

    #[test]
    fn clones_share_one_schedule() {
        let io = IoFaults::new(
            FaultPlan::seeded(5)
                .on_nth_probe(FaultSite::JournalWrite, 1)
                .on_nth_probe(FaultSite::JournalWrite, 2),
        );
        let clone = io.clone();
        // The clone's probe consumes the shared schedule's first forced
        // index; the original sees the second.
        assert!(clone.journal_write_fault().is_some());
        assert!(io.journal_write_fault().is_some());
        assert_eq!(io.journal_write_fault(), None, "schedule is shared");
        assert_eq!(io.probes(FaultSite::JournalWrite), 3);
        assert_eq!(io.injected(FaultSite::JournalWrite), 2);
    }

    #[test]
    fn write_fault_flavors_alternate_deterministically() {
        let io = IoFaults::new(FaultPlan::seeded(1).with_rate(FaultSite::JournalWrite, 1.0));
        let flavors: Vec<WriteFault> = (0..4).filter_map(|_| io.journal_write_fault()).collect();
        assert_eq!(
            flavors,
            [
                WriteFault::Enospc,
                WriteFault::Short,
                WriteFault::Enospc,
                WriteFault::Short
            ]
        );
    }

    #[test]
    fn set_plan_opens_and_closes_windows() {
        let io = IoFaults::disarmed();
        assert_eq!(io.journal_write_fault(), None);
        io.set_plan(FaultPlan::seeded(2).with_rate(FaultSite::JournalWrite, 1.0));
        assert!(io.is_armed());
        assert!(io.journal_write_fault().is_some());
        io.set_plan(FaultPlan::disarmed());
        assert_eq!(io.journal_write_fault(), None, "window closed");
    }
}
