//! Job specifications and job states: the vocabulary shared by the
//! wire protocol, the daemon journal, and the scheduler core.
//!
//! Everything here round-trips through the kernel's `key=value` line
//! codec ([`droidsim_kernel::journal`]) so the exact same encoding
//! serves three masters: a client's `cmd=submit` request line, the
//! daemon journal's `kind=accepted` durability record, and the
//! `status`/`wait` response lines. One codec, one set of field names,
//! no translation layers to drift apart.

use droidsim_kernel::journal;

/// Scheduling priority of a submitted job. Declared lowest-first so the
/// derived `Ord` matches scheduling order (`Low < Normal < High`).
///
/// Priority is the load-shedding axis: when the admission queue is full
/// a higher-priority submission may displace the newest lower-priority
/// queued job, and a memory-pressure reclaim pass sheds the lowest
/// non-empty class first. Within a class the queue is FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Shed first; rejected at the door under memory pressure.
    Low,
    /// The default; rejected at the door under memory pressure.
    Normal,
    /// Displaces queued `Low`/`Normal` work when the queue is full and
    /// is still admitted under memory pressure.
    High,
}

impl Priority {
    /// Every priority, lowest first.
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];

    /// The wire/journal tag.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parses a wire/journal tag.
    pub fn parse(tag: &str) -> Option<Priority> {
        Priority::ALL.into_iter().find(|p| p.name() == tag)
    }

    /// Index into per-priority ring arrays (0 = `Low`).
    pub(crate) fn ring(self) -> usize {
        self as usize
    }
}

/// Which study a job runs. Mirrors the standalone experiment binaries:
/// a daemon job is the same simulation work, just scheduled by the
/// resident service instead of a fresh process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// Table 5 sweep over the first `apps` top-100 app specs.
    Table5 {
        /// How many app specs to simulate (≥ 1).
        apps: usize,
    },
    /// The Figure 10 rotation-storm study.
    Fig10,
    /// The handling-mode ablation grid.
    Ablation,
    /// A fault-matrix campaign: `tasks` simulations under an injected
    /// `fleet-task` fault rate, relying on deterministic retries to
    /// land on the clean digest.
    FaultMatrix {
        /// How many simulation tasks to run (≥ 1).
        tasks: usize,
        /// Injected fleet-task fault rate in percent (0–100).
        rate_pct: u8,
    },
}

impl JobKind {
    /// The wire/journal tag (`job=` field value).
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Table5 { .. } => "table5",
            JobKind::Fig10 => "fig10",
            JobKind::Ablation => "ablation",
            JobKind::FaultMatrix { .. } => "fault-matrix",
        }
    }
}

/// One submitted job: what to run and how to schedule it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The study to run.
    pub kind: JobKind,
    /// Root seed for the study's deterministic RNG streams.
    pub seed: u64,
    /// Scheduling priority (see [`Priority`]).
    pub priority: Priority,
    /// Worker threads *inside* the job's own fleet run (≥ 1). The
    /// daemon's pool parallelism is across jobs; this is within one.
    pub inner_jobs: usize,
    /// Per-task wall-clock budget for the job's fleet watchdog, in
    /// milliseconds. `None` leaves the stall watchdog disarmed.
    pub task_budget_ms: Option<u64>,
    /// Whole-job wall-clock deadline in milliseconds, measured from
    /// acceptance (re-armed from resume when a restarted daemon
    /// re-queues the job). `None` means no deadline.
    pub deadline_ms: Option<u64>,
    /// Retry bound for the job's fleet tasks.
    pub max_retries: u32,
    /// Free-form client label, echoed in status lines. May be empty.
    pub tag: String,
    /// Client-supplied idempotency key. When non-empty, a resubmission
    /// with the same key returns the *original* job's id and state
    /// (`result=duplicate`) instead of scheduling a second execution —
    /// the contract that makes blind retry after a lost ack safe.
    /// Empty means no deduplication.
    pub dedupe_key: String,
}

impl JobSpec {
    /// A spec with the default scheduling knobs: seed `0x5EED`,
    /// [`Priority::Normal`], one inner worker, three retries, no
    /// budget, no deadline.
    pub fn new(kind: JobKind) -> JobSpec {
        JobSpec {
            kind,
            seed: 0x5EED,
            priority: Priority::Normal,
            inner_jobs: 1,
            task_budget_ms: None,
            deadline_ms: None,
            max_retries: 3,
            tag: String::new(),
            dedupe_key: String::new(),
        }
    }

    /// Sets the root seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the whole-job deadline in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the client label.
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// Sets the idempotency key (see the `dedupe_key` field docs).
    pub fn with_dedupe_key(mut self, key: impl Into<String>) -> Self {
        self.dedupe_key = key.into();
        self
    }

    /// The spec as `key=value` fields, in a fixed order. Optional knobs
    /// at their defaults are omitted, so a minimal submit line stays
    /// minimal.
    pub fn kv_fields(&self) -> Vec<(&'static str, String)> {
        let mut out = vec![("job", self.kind.name().to_owned())];
        match &self.kind {
            JobKind::Table5 { apps } => out.push(("apps", apps.to_string())),
            JobKind::FaultMatrix { tasks, rate_pct } => {
                out.push(("tasks", tasks.to_string()));
                out.push(("rate_pct", rate_pct.to_string()));
            }
            JobKind::Fig10 | JobKind::Ablation => {}
        }
        out.push(("seed", self.seed.to_string()));
        out.push(("priority", self.priority.name().to_owned()));
        out.push(("inner_jobs", self.inner_jobs.to_string()));
        if let Some(ms) = self.task_budget_ms {
            out.push(("budget_ms", ms.to_string()));
        }
        if let Some(ms) = self.deadline_ms {
            out.push(("deadline_ms", ms.to_string()));
        }
        out.push(("retries", self.max_retries.to_string()));
        if !self.tag.is_empty() {
            out.push(("tag", self.tag.clone()));
        }
        if !self.dedupe_key.is_empty() {
            out.push(("dedupe", self.dedupe_key.clone()));
        }
        out
    }

    /// Rebuilds a spec from decoded `key=value` fields (a submit line
    /// or a journal `accepted` record). Unknown keys are ignored so the
    /// protocol can grow; missing or malformed required keys are a
    /// descriptive error.
    pub fn from_fields(fields: &[(String, String)]) -> Result<JobSpec, String> {
        let kind_tag = journal::field(fields, "job").ok_or("missing job= field")?;
        let kind = match kind_tag {
            "table5" => JobKind::Table5 {
                apps: parse_field(fields, "apps")?,
            },
            "fig10" => JobKind::Fig10,
            "ablation" => JobKind::Ablation,
            "fault-matrix" => JobKind::FaultMatrix {
                tasks: parse_field(fields, "tasks")?,
                rate_pct: parse_field(fields, "rate_pct")?,
            },
            other => return Err(format!("unknown job kind {other:?}")),
        };
        let mut spec = JobSpec::new(kind);
        if let Some(v) = journal::field(fields, "seed") {
            spec.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
        }
        if let Some(v) = journal::field(fields, "priority") {
            spec.priority = Priority::parse(v).ok_or_else(|| format!("bad priority {v:?}"))?;
        }
        if let Some(v) = journal::field(fields, "inner_jobs") {
            spec.inner_jobs = v.parse().map_err(|_| format!("bad inner_jobs {v:?}"))?;
        }
        if let Some(v) = journal::field(fields, "budget_ms") {
            spec.task_budget_ms = Some(v.parse().map_err(|_| format!("bad budget_ms {v:?}"))?);
        }
        if let Some(v) = journal::field(fields, "deadline_ms") {
            spec.deadline_ms = Some(v.parse().map_err(|_| format!("bad deadline_ms {v:?}"))?);
        }
        if let Some(v) = journal::field(fields, "retries") {
            spec.max_retries = v.parse().map_err(|_| format!("bad retries {v:?}"))?;
        }
        if let Some(v) = journal::field(fields, "tag") {
            spec.tag = v.to_owned();
        }
        if let Some(v) = journal::field(fields, "dedupe") {
            spec.dedupe_key = v.to_owned();
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the size knobs a hostile or buggy client could zero out.
    pub fn validate(&self) -> Result<(), String> {
        match &self.kind {
            JobKind::Table5 { apps } if *apps == 0 => return Err("apps must be ≥ 1".to_owned()),
            JobKind::FaultMatrix { tasks, .. } if *tasks == 0 => {
                return Err("tasks must be ≥ 1".to_owned());
            }
            JobKind::FaultMatrix { rate_pct, .. } if *rate_pct > 100 => {
                return Err("rate_pct must be ≤ 100".to_owned());
            }
            _ => {}
        }
        if self.inner_jobs == 0 {
            return Err("inner_jobs must be ≥ 1".to_owned());
        }
        Ok(())
    }
}

/// Where a job is in its lifecycle. The last four variants are
/// *terminal*: once entered, the state never changes again and (except
/// for shutdown parking, see the daemon docs) is journaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the admission queue.
    Queued,
    /// Claimed by a pool worker and executing.
    Running,
    /// Finished cleanly with the study digest.
    Done {
        /// The study's combined digest.
        digest: u64,
    },
    /// Finished unsuccessfully (quarantined tasks or a worker panic).
    Failed {
        /// What went wrong.
        reason: String,
    },
    /// Cancelled by a client request or an expired deadline.
    Cancelled {
        /// Who/what cancelled it (`client-cancel`, `deadline-exceeded`).
        reason: String,
    },
    /// Shed by the load-shedding policy — displaced by a
    /// higher-priority submission or reclaimed under memory pressure.
    /// Always explicit, never silent: the job's status reports it.
    Shed {
        /// Which shedding path fired.
        reason: String,
    },
}

impl JobState {
    /// Whether the state is final.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }

    /// The stable wire/journal tag.
    pub fn tag(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::Cancelled { .. } => "cancelled",
            JobState::Shed { .. } => "shed",
        }
    }

    /// The digest, when the job finished cleanly.
    pub fn digest(&self) -> Option<u64> {
        match self {
            JobState::Done { digest } => Some(*digest),
            _ => None,
        }
    }

    /// The failure/cancellation/shed reason, when there is one.
    pub fn reason(&self) -> Option<&str> {
        match self {
            JobState::Failed { reason }
            | JobState::Cancelled { reason }
            | JobState::Shed { reason } => Some(reason),
            _ => None,
        }
    }

    /// The state as `key=value` fields (`state=` plus `digest=`/
    /// `reason=` when applicable).
    pub fn kv_fields(&self) -> Vec<(&'static str, String)> {
        let mut out = vec![("state", self.tag().to_owned())];
        if let Some(d) = self.digest() {
            out.push(("digest", format!("{d:016x}")));
        }
        if let Some(r) = self.reason() {
            out.push(("reason", r.to_owned()));
        }
        out
    }

    /// Rebuilds a state from decoded fields.
    pub fn from_fields(fields: &[(String, String)]) -> Result<JobState, String> {
        let tag = journal::field(fields, "state").ok_or("missing state= field")?;
        let reason = || {
            journal::field(fields, "reason")
                .unwrap_or("unrecorded")
                .to_owned()
        };
        Ok(match tag {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => {
                let hex = journal::field(fields, "digest").ok_or("done without digest=")?;
                JobState::Done {
                    digest: u64::from_str_radix(hex, 16)
                        .map_err(|_| format!("bad digest {hex:?}"))?,
                }
            }
            "failed" => JobState::Failed { reason: reason() },
            "cancelled" => JobState::Cancelled { reason: reason() },
            "shed" => JobState::Shed { reason: reason() },
            other => return Err(format!("unknown state {other:?}")),
        })
    }
}

fn parse_field<T: std::str::FromStr>(fields: &[(String, String)], key: &str) -> Result<T, String> {
    journal::field(fields, key)
        .ok_or_else(|| format!("missing {key}= field"))?
        .parse()
        .map_err(|_| format!("bad {key}= field"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode_fields;

    fn round_trip(spec: &JobSpec) -> JobSpec {
        let line = encode_fields(&spec.kv_fields());
        let fields = journal::decode_line(&line).expect("spec line decodes");
        JobSpec::from_fields(&fields).expect("spec fields parse")
    }

    #[test]
    fn specs_round_trip_through_the_line_codec() {
        let specs = [
            JobSpec::new(JobKind::Table5 { apps: 25 }),
            JobSpec::new(JobKind::Fig10)
                .with_seed(99)
                .with_priority(Priority::High),
            JobSpec::new(JobKind::Ablation).with_tag("night run = batch 7"),
            JobSpec::new(JobKind::Fig10).with_dedupe_key("load-7-42"),
            JobSpec {
                kind: JobKind::FaultMatrix {
                    tasks: 64,
                    rate_pct: 5,
                },
                seed: 7,
                priority: Priority::Low,
                inner_jobs: 4,
                task_budget_ms: Some(1500),
                deadline_ms: Some(60_000),
                max_retries: 2,
                tag: "matrix".to_owned(),
                dedupe_key: "matrix-key".to_owned(),
            },
        ];
        for spec in &specs {
            assert_eq!(&round_trip(spec), spec, "kind {}", spec.kind.name());
        }
    }

    #[test]
    fn spec_parse_rejects_nonsense() {
        let bad = [
            "cmd=submit",                            // no job kind at all
            "job=warp-drive",                        // unknown kind
            "job=table5",                            // table5 without apps
            "job=table5 apps=0",                     // zero-sized sweep
            "job=fig10 priority=urgent",             // unknown priority
            "job=fig10 inner_jobs=0",                // zero workers
            "job=fault-matrix tasks=8 rate_pct=101", // rate over 100%
        ];
        for line in bad {
            let fields = journal::decode_line(line).unwrap();
            assert!(
                JobSpec::from_fields(&fields).is_err(),
                "line {line:?} must be rejected"
            );
        }
    }

    #[test]
    fn priority_order_matches_scheduling_order() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        for p in Priority::ALL {
            assert_eq!(Priority::parse(p.name()), Some(p));
        }
        assert_eq!(Priority::parse("URGENT"), None);
    }

    #[test]
    fn states_round_trip_and_classify() {
        let states = [
            JobState::Queued,
            JobState::Running,
            JobState::Done {
                digest: 0xDEAD_BEEF,
            },
            JobState::Failed {
                reason: "3 task(s) quarantined".to_owned(),
            },
            JobState::Cancelled {
                reason: "deadline-exceeded".to_owned(),
            },
            JobState::Shed {
                reason: "memory-pressure".to_owned(),
            },
        ];
        for state in &states {
            let line = encode_fields(&state.kv_fields());
            let fields = journal::decode_line(&line).unwrap();
            assert_eq!(&JobState::from_fields(&fields).unwrap(), state);
            assert_eq!(
                state.is_terminal(),
                !matches!(state, JobState::Queued | JobState::Running)
            );
        }
        assert_eq!(states[2].digest(), Some(0xDEAD_BEEF));
        assert_eq!(states[5].reason(), Some("memory-pressure"));
    }
}
