//! `droidsim-daemon`: a resident fleet service for the RCHDroid
//! reproduction.
//!
//! The experiment binaries (`table5`, `fig10`, …) are batch processes:
//! one study, one process, one exit code. This crate turns the same
//! machinery into a long-running service — `droidsimd` — that accepts
//! simulation jobs over a local Unix socket, schedules them on a
//! persistent worker pool, and survives being killed mid-run:
//!
//! * **Admission control** ([`queue`]): a bounded priority queue that
//!   answers every submission explicitly — `accepted` (journaled
//!   first), or `rejected` with the reason. Nothing is ever silently
//!   dropped.
//! * **Durability** ([`journal`]): accept-before-ack journaling plus
//!   per-job fleet journals, so a restarted daemon resumes every
//!   acknowledged incomplete job to a digest identical to an
//!   uninterrupted run.
//! * **Load shedding** ([`headroom`], [`daemon`]): under memory
//!   pressure the watchdog sheds the lowest-priority queued class with
//!   an explicit terminal `shed` state, and the door rejects non-high
//!   submissions outright.
//! * **Protocol** ([`server`], [`client`]): one request line in, one
//!   response line out, encoded with the same `key=value` codec as
//!   every journal in the workspace
//!   ([`droidsim_kernel::journal`]).
//!
//! The scheduling core is transport-agnostic (a [`Daemon`] can be
//! driven in-process, which is how the unit tests and the restart
//! property tests use it); the socket layer is a thin loop on top.

pub mod client;
pub mod daemon;
pub mod faultio;
pub mod headroom;
pub mod journal;
pub mod queue;
pub mod server;
pub mod spec;

pub use client::{Backoff, Client, RetryingClient};
pub use daemon::{
    Admission, Daemon, DaemonConfig, DaemonStats, JobControl, JobExecutor, JobStatus, JobVerdict,
    ShutdownMode,
};
pub use faultio::{IoFaults, WriteFault};
pub use headroom::HeadroomProbe;
pub use journal::{DaemonJournal, JournalView, JournaledJob};
pub use queue::{AdmissionQueue, Admit, QueuedJob};
pub use spec::{JobKind, JobSpec, JobState, Priority};

/// This crate's errors: I/O, journal integrity, protocol violations.
#[derive(Debug)]
pub enum DaemonError {
    /// An underlying I/O failure (socket, journal file).
    Io(std::io::Error),
    /// A journal that cannot be trusted: foreign header, unsupported
    /// version, or a caller-visible integrity problem.
    Journal(String),
    /// A malformed request or response line.
    Proto(String),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "daemon I/O: {e}"),
            DaemonError::Journal(m) => write!(f, "daemon journal: {m}"),
            DaemonError::Proto(m) => write!(f, "daemon protocol: {m}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e)
    }
}

/// Encodes owned `(key, value)` pairs with the kernel line codec.
pub(crate) fn encode_fields(fields: &[(&'static str, String)]) -> String {
    let borrowed: Vec<(&str, &str)> = fields.iter().map(|(k, v)| (*k, v.as_str())).collect();
    droidsim_kernel::journal::encode_line(&borrowed)
}
