//! A blocking client for the daemon's line protocol.
//!
//! One [`Client`] owns one connection and issues one request line at a
//! time, reading exactly one response line per request (the protocol
//! has no server pushes, so this lock-step discipline is complete).
//! The typed helpers ([`Client::submit`], [`Client::wait`], …) wrap
//! [`Client::request`], which is public so tools can speak extensions
//! the helpers do not know.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use droidsim_kernel::journal;

use crate::daemon::{Admission, JobStatus, ShutdownMode};
use crate::spec::JobSpec;

/// A connected protocol client (see module docs).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects to a listening daemon socket.
    pub fn connect(socket_path: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(socket_path)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Connects, retrying until `timeout` — for racing a daemon that is
    /// still starting up (or restarting).
    pub fn connect_retry(socket_path: &Path, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(socket_path) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Sends one request line and reads one response line, decoded.
    pub fn request(&mut self, fields: &[(&str, &str)]) -> io::Result<Vec<(String, String)>> {
        let line = journal::encode_line(fields);
        let stream = self.reader.get_mut();
        writeln!(stream, "{line}")?;
        stream.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        journal::decode_line(&response).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable response: {response:?}"),
            )
        })
    }

    /// `cmd=ping` — true when the daemon answers.
    pub fn ping(&mut self) -> io::Result<bool> {
        let resp = self.request(&[("cmd", "ping")])?;
        Ok(journal::field(&resp, "pong") == Some("1"))
    }

    /// Submits a job, returning the daemon's explicit verdict.
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<Admission> {
        let owned = spec.kv_fields();
        let mut fields: Vec<(&str, &str)> = vec![("cmd", "submit")];
        fields.extend(owned.iter().map(|(k, v)| (*k, v.as_str())));
        let resp = self.request(&fields)?;
        match journal::field(&resp, "result") {
            Some("accepted") => {
                let id = journal::field(&resp, "job_id")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad_response("accepted without job_id"))?;
                let queue_depth = journal::field(&resp, "queue_depth")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                Ok(Admission::Accepted { id, queue_depth })
            }
            Some("rejected") => Ok(Admission::Rejected {
                reason: journal::field(&resp, "reason")
                    .unwrap_or("unspecified")
                    .to_owned(),
            }),
            _ => Err(bad_response(&render(&resp))),
        }
    }

    /// `cmd=status` for one job.
    pub fn status(&mut self, id: u64) -> io::Result<JobStatus> {
        let resp = self.request(&[("cmd", "status"), ("job_id", &id.to_string())])?;
        parse_status(&resp)
    }

    /// `cmd=wait` — blocks (server-side) until the job settles or the
    /// timeout elapses, returning the status either way.
    pub fn wait(&mut self, id: u64, timeout: Duration) -> io::Result<JobStatus> {
        let timeout_ms = timeout.as_millis().to_string();
        let resp = self.request(&[
            ("cmd", "wait"),
            ("job_id", &id.to_string()),
            ("timeout_ms", &timeout_ms),
        ])?;
        parse_status(&resp)
    }

    /// `cmd=cancel` — requests cooperative cancellation.
    pub fn cancel(&mut self, id: u64) -> io::Result<JobStatus> {
        let resp = self.request(&[("cmd", "cancel"), ("job_id", &id.to_string())])?;
        parse_status(&resp)
    }

    /// `cmd=health` — the coarse liveness fields.
    pub fn health(&mut self) -> io::Result<Vec<(String, String)>> {
        self.request(&[("cmd", "health")])
    }

    /// `cmd=stats` — the full ledger snapshot as decoded fields.
    pub fn stats(&mut self) -> io::Result<Vec<(String, String)>> {
        self.request(&[("cmd", "stats")])
    }

    /// `cmd=shutdown` — stops the daemon; the response arrives after
    /// the stop completes. A connection that dies after the request is
    /// sent also counts as success: a stopping `droidsimd` process may
    /// exit before its handler thread flushes the response line, and
    /// the daemon going away is exactly what was asked for.
    pub fn shutdown(&mut self, mode: ShutdownMode) -> io::Result<()> {
        let resp = match self.request(&[("cmd", "shutdown"), ("mode", mode.name())]) {
            Ok(resp) => resp,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::UnexpectedEof
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::BrokenPipe
                ) =>
            {
                return Ok(())
            }
            Err(e) => return Err(e),
        };
        if journal::field(&resp, "result") == Some("stopped") {
            Ok(())
        } else {
            Err(bad_response(&render(&resp)))
        }
    }
}

fn parse_status(resp: &[(String, String)]) -> io::Result<JobStatus> {
    if journal::field(resp, "ok") != Some("true") {
        return Err(bad_response(&render(resp)));
    }
    JobStatus::from_fields(resp).map_err(|e| bad_response(&e))
}

fn bad_response(detail: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("daemon: {detail}"))
}

fn render(fields: &[(String, String)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}
