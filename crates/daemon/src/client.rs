//! A blocking client for the daemon's line protocol.
//!
//! One [`Client`] owns one connection and issues one request line at a
//! time, reading exactly one response line per request (the protocol
//! has no server pushes, so this lock-step discipline is complete).
//! The typed helpers ([`Client::submit`], [`Client::wait`], …) wrap
//! [`Client::request`], which is public so tools can speak extensions
//! the helpers do not know.
//!
//! [`RetryingClient`] layers resilience on top: transparent reconnect
//! with capped, jittered exponential [`Backoff`] when the connection
//! dies mid-operation (a daemon restart, an injected socket reset, a
//! governor close). Blind retry is only safe because submission is
//! idempotent — which is why [`RetryingClient::submit`] *requires* a
//! `dedupe_key` and refuses specs without one.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use droidsim_kernel::journal;

use crate::daemon::{Admission, JobStatus, ShutdownMode};
use crate::spec::JobSpec;

/// Capped, jittered exponential backoff: delay `n` is
/// `base · 2ⁿ` (capped at `cap`), scaled by a 50–100 % jitter drawn
/// from a tiny xorshift stream so herds of retrying clients spread out
/// instead of thundering in lock-step.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    jitter: u64,
}

impl Backoff {
    /// A schedule from `base` to `cap`; `seed` drives the jitter
    /// stream (any value, including 0, is fine).
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            cap,
            attempt: 0,
            jitter: seed | 1, // xorshift must not start at 0
        }
    }

    /// The schedule `connect_retry` and [`RetryingClient`] share:
    /// 1 ms doubling to a 100 ms cap.
    pub fn for_reconnect(seed: u64) -> Backoff {
        Backoff::new(Duration::from_millis(1), Duration::from_millis(100), seed)
    }

    /// The next delay, advancing the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        // xorshift64: cheap, seedable, good enough to de-correlate
        // retry herds.
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let pct = 50 + (self.jitter % 51); // 50..=100
        exp.mul_f64(pct as f64 / 100.0)
    }

    /// Back to the first step (call after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// A connected protocol client (see module docs).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects to a listening daemon socket.
    pub fn connect(socket_path: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(socket_path)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Connects, retrying with jittered exponential backoff until
    /// `timeout` — for racing a daemon that is still starting up (or
    /// restarting).
    pub fn connect_retry(socket_path: &Path, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::for_reconnect(0x5EED);
        loop {
            match Client::connect(socket_path) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(backoff.next_delay()),
            }
        }
    }

    /// Sends one request line **without reading the response** — the
    /// chaos harness's "lost ack": the daemon processes the request,
    /// but this client never hears the answer. Pair with a dedupe-keyed
    /// resubmit to prove idempotency.
    pub fn send(&mut self, fields: &[(&str, &str)]) -> io::Result<()> {
        let line = journal::encode_line(fields);
        let stream = self.reader.get_mut();
        writeln!(stream, "{line}")?;
        stream.flush()
    }

    /// Sends one request line and reads one response line, decoded.
    pub fn request(&mut self, fields: &[(&str, &str)]) -> io::Result<Vec<(String, String)>> {
        let line = journal::encode_line(fields);
        let stream = self.reader.get_mut();
        writeln!(stream, "{line}")?;
        stream.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        journal::decode_line(&response).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable response: {response:?}"),
            )
        })
    }

    /// `cmd=ping` — true when the daemon answers.
    pub fn ping(&mut self) -> io::Result<bool> {
        let resp = self.request(&[("cmd", "ping")])?;
        Ok(journal::field(&resp, "pong") == Some("1"))
    }

    /// Submits a job, returning the daemon's explicit verdict.
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<Admission> {
        let owned = spec.kv_fields();
        let mut fields: Vec<(&str, &str)> = vec![("cmd", "submit")];
        fields.extend(owned.iter().map(|(k, v)| (*k, v.as_str())));
        let resp = self.request(&fields)?;
        match journal::field(&resp, "result") {
            Some("accepted") => {
                let id = journal::field(&resp, "job_id")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad_response("accepted without job_id"))?;
                let queue_depth = journal::field(&resp, "queue_depth")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                Ok(Admission::Accepted { id, queue_depth })
            }
            Some("rejected") => Ok(Admission::Rejected {
                reason: journal::field(&resp, "reason")
                    .unwrap_or("unspecified")
                    .to_owned(),
            }),
            Some("duplicate") => {
                let id = journal::field(&resp, "job_id")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad_response("duplicate without job_id"))?;
                Ok(Admission::Duplicate { id })
            }
            _ => Err(bad_response(&render(&resp))),
        }
    }

    /// `cmd=status` for one job.
    pub fn status(&mut self, id: u64) -> io::Result<JobStatus> {
        let resp = self.request(&[("cmd", "status"), ("job_id", &id.to_string())])?;
        parse_status(&resp)
    }

    /// `cmd=wait` — blocks (server-side) until the job settles or the
    /// timeout elapses, returning the status either way.
    pub fn wait(&mut self, id: u64, timeout: Duration) -> io::Result<JobStatus> {
        let timeout_ms = timeout.as_millis().to_string();
        let resp = self.request(&[
            ("cmd", "wait"),
            ("job_id", &id.to_string()),
            ("timeout_ms", &timeout_ms),
        ])?;
        parse_status(&resp)
    }

    /// `cmd=cancel` — requests cooperative cancellation.
    pub fn cancel(&mut self, id: u64) -> io::Result<JobStatus> {
        let resp = self.request(&[("cmd", "cancel"), ("job_id", &id.to_string())])?;
        parse_status(&resp)
    }

    /// `cmd=health` — the coarse liveness fields.
    pub fn health(&mut self) -> io::Result<Vec<(String, String)>> {
        self.request(&[("cmd", "health")])
    }

    /// `cmd=stats` — the full ledger snapshot as decoded fields.
    pub fn stats(&mut self) -> io::Result<Vec<(String, String)>> {
        self.request(&[("cmd", "stats")])
    }

    /// `cmd=shutdown` — stops the daemon; the response arrives after
    /// the stop completes. A connection that dies after the request is
    /// sent also counts as success: a stopping `droidsimd` process may
    /// exit before its handler thread flushes the response line, and
    /// the daemon going away is exactly what was asked for.
    pub fn shutdown(&mut self, mode: ShutdownMode) -> io::Result<()> {
        let resp = match self.request(&[("cmd", "shutdown"), ("mode", mode.name())]) {
            Ok(resp) => resp,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::UnexpectedEof
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::BrokenPipe
                ) =>
            {
                return Ok(())
            }
            Err(e) => return Err(e),
        };
        if journal::field(&resp, "result") == Some("stopped") {
            Ok(())
        } else {
            Err(bad_response(&render(&resp)))
        }
    }
}

fn parse_status(resp: &[(String, String)]) -> io::Result<JobStatus> {
    if journal::field(resp, "ok") != Some("true") {
        return Err(bad_response(&render(resp)));
    }
    JobStatus::from_fields(resp).map_err(|e| bad_response(&e))
}

fn bad_response(detail: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("daemon: {detail}"))
}

fn render(fields: &[(String, String)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Whether an operation error means "the connection is gone, a fresh
/// one may succeed" (as opposed to a real protocol/daemon error).
fn is_connection_loss(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

/// A client that survives connection loss: every operation reconnects
/// and retries with capped jittered [`Backoff`] until it succeeds or
/// the per-operation deadline expires (see module docs for why submit
/// demands a `dedupe_key`).
#[derive(Debug)]
pub struct RetryingClient {
    socket: PathBuf,
    conn: Option<Client>,
    backoff: Backoff,
    deadline: Duration,
}

impl RetryingClient {
    /// A lazily-connecting resilient client for `socket_path` with a
    /// 30 s per-operation deadline. Construction never fails — the
    /// first operation connects (and retries).
    pub fn new(socket_path: impl Into<PathBuf>) -> RetryingClient {
        RetryingClient {
            socket: socket_path.into(),
            conn: None,
            backoff: Backoff::for_reconnect(0x9E37),
            deadline: Duration::from_secs(30),
        }
    }

    /// Sets the per-operation retry deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Replaces the backoff schedule (e.g. a seeded one, for
    /// deterministic chaos harnesses).
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Drops the live connection (if any) on the floor — the chaos
    /// harness's mid-burst connection kill. The next operation
    /// transparently reconnects.
    pub fn drop_connection(&mut self) {
        self.conn = None;
    }

    /// Sends a request on the live connection without reading the
    /// response, then kills the connection — the full "lost ack"
    /// scenario in one call. Connects first if needed.
    pub fn send_and_drop(&mut self, fields: &[(&str, &str)]) -> io::Result<()> {
        self.run(|c| c.send(fields))?;
        self.drop_connection();
        Ok(())
    }

    /// Runs `op`, reconnecting and retrying on connection loss until
    /// the deadline. Non-connection errors surface immediately.
    fn run<T>(&mut self, mut op: impl FnMut(&mut Client) -> io::Result<T>) -> io::Result<T> {
        let deadline = Instant::now() + self.deadline;
        loop {
            if self.conn.is_none() {
                match Client::connect(&self.socket) {
                    Ok(client) => {
                        self.conn = Some(client);
                        self.backoff.reset();
                    }
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(e);
                        }
                        std::thread::sleep(self.backoff.next_delay());
                        continue;
                    }
                }
            }
            let client = self.conn.as_mut().expect("connected above");
            match op(client) {
                Ok(value) => return Ok(value),
                Err(e) if is_connection_loss(e.kind()) => {
                    // The connection is dead either way; retrying on a
                    // fresh one is safe for every protocol op (submit
                    // is gated on a dedupe_key).
                    self.conn = None;
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(self.backoff.next_delay());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// `cmd=ping`, retried across reconnects.
    pub fn ping(&mut self) -> io::Result<bool> {
        self.run(Client::ping)
    }

    /// Idempotent submit. **Requires** a non-empty `dedupe_key`: a
    /// blind retry without one could execute the job twice, which is
    /// exactly the bug this client exists to make impossible.
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<Admission> {
        if spec.dedupe_key.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "RetryingClient::submit requires a dedupe_key \
                 (a retried submit without one may duplicate work)",
            ));
        }
        self.run(|c| c.submit(spec))
    }

    /// `cmd=status`, retried across reconnects.
    pub fn status(&mut self, id: u64) -> io::Result<JobStatus> {
        self.run(|c| c.status(id))
    }

    /// `cmd=wait`, retried across reconnects. `timeout` is the
    /// *server-side* wait; the retry deadline still bounds the whole
    /// operation.
    pub fn wait(&mut self, id: u64, timeout: Duration) -> io::Result<JobStatus> {
        self.run(|c| c.wait(id, timeout))
    }

    /// `cmd=cancel`, retried across reconnects (cancellation is
    /// naturally idempotent).
    pub fn cancel(&mut self, id: u64) -> io::Result<JobStatus> {
        self.run(|c| c.cancel(id))
    }

    /// `cmd=health`, retried across reconnects.
    pub fn health(&mut self) -> io::Result<Vec<(String, String)>> {
        self.run(Client::health)
    }

    /// `cmd=stats`, retried across reconnects.
    pub fn stats(&mut self) -> io::Result<Vec<(String, String)>> {
        self.run(Client::stats)
    }

    /// `cmd=shutdown`. Not retried: a connection that dies after the
    /// request already counts as success ([`Client::shutdown`]), and
    /// re-sending to a daemon that is not there would just wait out
    /// the deadline.
    pub fn shutdown(&mut self, mode: ShutdownMode) -> io::Result<()> {
        let result = match self.conn.as_mut() {
            Some(client) => client.shutdown(mode),
            None => Client::connect(&self.socket).and_then(|mut c| c.shutdown(mode)),
        };
        self.conn = None;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_within_bounds() {
        let base = Duration::from_millis(4);
        let cap = Duration::from_millis(64);
        let mut b = Backoff::new(base, cap, 42);
        let mut prev_ceiling = Duration::ZERO;
        for attempt in 0..12 {
            let ceiling = base.saturating_mul(1 << attempt.min(16)).min(cap);
            let delay = b.next_delay();
            assert!(
                delay <= ceiling,
                "attempt {attempt}: {delay:?} > {ceiling:?}"
            );
            assert!(
                delay >= ceiling.mul_f64(0.5),
                "attempt {attempt}: jitter floor is 50%"
            );
            assert!(ceiling >= prev_ceiling, "schedule is monotone");
            prev_ceiling = ceiling;
        }
        // Far down the schedule the ceiling is pinned at the cap.
        for _ in 0..20 {
            assert!(b.next_delay() <= cap);
        }
        b.reset();
        assert!(b.next_delay() <= base, "reset returns to the first step");
    }

    #[test]
    fn backoff_jitter_streams_differ_by_seed() {
        let mk = |seed| {
            let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(1), seed);
            (0..8).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(mk(1), mk(1), "same seed, same schedule");
        assert_ne!(mk(1), mk(2), "different seeds de-correlate");
    }

    #[test]
    fn retrying_submit_refuses_specs_without_a_dedupe_key() {
        let mut rc = RetryingClient::new("/nonexistent/droidsimd.sock")
            .with_deadline(Duration::from_millis(50));
        let spec = crate::spec::JobSpec::new(crate::spec::JobKind::Fig10);
        let err = rc.submit(&spec).expect_err("keyless submit must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // With a key it proceeds to (and fails at) the connection —
        // proving the gate is the key, not the transport.
        let keyed = spec.with_dedupe_key("k");
        let err = rc.submit(&keyed).expect_err("no daemon listening");
        assert_ne!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
